//! The scenario suite at tiny scale: every scenario must pass its
//! error/hang/drain SLOs (latency SLOs are smoke-skipped), and the
//! injected-failure hook must actually fail — otherwise the CI gate is
//! decorative.

use genalg_loadgen::{run_scenario, run_suite, LoadConfig, SCENARIOS};
use std::time::Duration;

fn tiny() -> LoadConfig {
    LoadConfig {
        seed: 42,
        clients: 3,
        ops_per_client: 12,
        smoke: true,
        timeout: Duration::from_secs(60),
        inject_slo_failure: false,
    }
}

#[test]
fn whole_suite_passes_at_tiny_scale() {
    let suite = run_suite(&tiny());
    assert_eq!(suite.scenarios.len(), SCENARIOS.len());
    for s in &suite.scenarios {
        assert!(s.passed(), "[{}] violations: {:?}", s.name, s.violations);
        assert!(s.ok > 0, "[{}] did no successful work", s.name);
    }
    suite.assert_slos();
}

#[test]
fn injected_slo_failure_fails_point_lookups() {
    let incidents = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/incidents");
    let started = std::time::SystemTime::now();

    let cfg = LoadConfig { inject_slo_failure: true, ..tiny() };
    let result = run_scenario("point_lookups", &cfg).unwrap();
    assert!(!result.passed(), "impossible p99 bound should have failed");
    assert!(
        result.violations.iter().any(|v| v.contains("exceeds SLO")),
        "expected a latency violation, got {:?}",
        result.violations
    );

    // The failure must leave a flight-recorder bundle behind: pick the
    // bundle this run wrote (mtime >= our start; names carry a scenario
    // hint) and check it carries the sections an on-call needs.
    let bundle = std::fs::read_dir(&incidents)
        .unwrap_or_else(|e| panic!("no incident dir at {}: {e}", incidents.display()))
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name().to_string_lossy().starts_with("incident-point_lookups-")
                && e.metadata().and_then(|m| m.modified()).map(|t| t >= started).unwrap_or(false)
        })
        .map(|e| e.path())
        .max()
        .expect("injected SLO failure wrote no incident bundle");
    let text = std::fs::read_to_string(&bundle).unwrap();
    for section in ["== stats ==", "== fingerprints ==", "== plan changes ==", "== history =="] {
        assert!(text.contains(section), "{} missing {section}", bundle.display());
    }
    assert!(text.contains("slo_violation"), "bundle should name its trigger");

    // And the plain failure dump CI uploads still exists alongside it.
    let dump = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/loadgen/failure-point_lookups.txt");
    assert!(dump.exists(), "missing {}", dump.display());
}

#[test]
fn unknown_scenario_is_none() {
    assert!(run_scenario("no_such_scenario", &tiny()).is_none());
}
