//! The scenario engine: wire-protocol workers, watchdog, phase-delta
//! snapshots, and SLO evaluation shared by every scenario.

use crate::{LoadConfig, ScenarioResult, Slo};
use genalg_obs::{Histogram, HistogramSnapshot, Snapshot, BUCKETS};
use genalg_server::{
    Lang, Server, ServerConfig, ServerError, ServerHandle, SessionKind, TcpClient,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use unidb::{Database, DbError, ResultSet};

/// How long the post-run drain probe waits for the queue to accept one
/// more statement before declaring it wedged.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Classification of one executed statement.
pub enum Class {
    /// Served.
    Ok(ResultSet),
    /// Shed at admission with `Busy` (the worker already backed off).
    Busy,
    /// First-committer-wins conflict — retryable by design.
    Conflict,
    /// Any other structured engine error (e.g. injected IO faults): the
    /// server is degrading correctly, not misbehaving.
    DbErr,
    /// Everything else — protocol damage, dead workers, transport errors.
    /// Always an SLO violation.
    Fatal,
}

/// Counters and client-side latency shared by every worker of a scenario.
#[derive(Default)]
pub struct Shared {
    pub ok: AtomicU64,
    pub busy: AtomicU64,
    pub conflict: AtomicU64,
    pub db_err: AtomicU64,
    pub unexpected: AtomicU64,
    /// Scenario-specific tally (committed txns, leaked txns, …).
    pub aux: AtomicU64,
    /// Client-observed wire latency.
    pub latency: Histogram,
    problems: Mutex<Vec<String>>,
}

impl Shared {
    /// Record an invariant failure observed inside a worker (workers never
    /// panic — the suite reports). Capped so a systematic failure doesn't
    /// produce megabytes of identical lines.
    pub fn note(&self, msg: String) {
        let mut problems = self.problems.lock().unwrap();
        if problems.len() < 8 {
            problems.push(msg);
        }
    }

    fn take_problems(&self) -> Vec<String> {
        std::mem::take(&mut self.problems.lock().unwrap())
    }
}

/// One worker's view: its own TCP connection, session, and seeded RNG.
/// The RNG drives *only* SQL generation (never backoff timing), so the
/// statement stream is a pure function of `(seed, scenario, worker)`.
pub struct Ctx {
    pub conn: TcpClient,
    pub session: u64,
    pub rng: StdRng,
    pub worker: usize,
    pub shared: Arc<Shared>,
}

impl Ctx {
    /// Open this worker's session (first thing every worker does).
    pub fn open(&mut self, kind: SessionKind) {
        match self.conn.open(kind) {
            Ok(s) => self.session = s,
            Err(e) => {
                self.shared.unexpected.fetch_add(1, Ordering::Relaxed);
                self.shared.note(format!("worker {}: open failed: {e}", self.worker));
            }
        }
    }

    /// Execute one statement on this worker's session, record its wire
    /// latency, classify the outcome, and back off briefly after `Busy`.
    pub fn exec(&mut self, sql: &str) -> Class {
        self.exec_on(self.session, sql)
    }

    /// Like [`Ctx::exec`] but on an explicit session (scenarios that pin
    /// several sessions per connection, e.g. abandoned-transaction churn).
    pub fn exec_on(&mut self, session: u64, sql: &str) -> Class {
        let start = Instant::now();
        let out = self.conn.query(session, Lang::Sql, sql);
        self.shared.latency.record(start.elapsed());
        match out {
            Ok(rs) => {
                self.shared.ok.fetch_add(1, Ordering::Relaxed);
                Class::Ok(rs)
            }
            Err(ServerError::Busy { retry_after_ms }) => {
                self.shared.busy.fetch_add(1, Ordering::Relaxed);
                // Deterministic backoff (no RNG draw): the worker index
                // staggers retries so shed workers don't stampede back in
                // lock-step.
                let ms = retry_after_ms.clamp(1, 5) + (self.worker as u64 % 3);
                std::thread::sleep(Duration::from_millis(ms));
                Class::Busy
            }
            Err(ServerError::Db(DbError::Conflict(_))) => {
                self.shared.conflict.fetch_add(1, Ordering::Relaxed);
                Class::Conflict
            }
            Err(ServerError::Db(_)) => {
                self.shared.db_err.fetch_add(1, Ordering::Relaxed);
                Class::DbErr
            }
            Err(other) => {
                self.shared.unexpected.fetch_add(1, Ordering::Relaxed);
                let head: String = sql.chars().take(60).collect();
                self.shared.note(format!("worker {}: `{head}` → {other}", self.worker));
                Class::Fatal
            }
        }
    }

    /// Execute and return the rows, tolerating `Busy` (with retries) but
    /// noting every other failure. `None` means the op never succeeded.
    pub fn exec_rows(&mut self, sql: &str) -> Option<ResultSet> {
        for _ in 0..20 {
            match self.exec(sql) {
                Class::Ok(rs) => return Some(rs),
                Class::Busy => continue,
                _ => return None,
            }
        }
        None
    }
}

/// Per-worker RNG stream: FNV-1a over the scenario name, mixed with the
/// master seed and a worker-indexed odd constant (splitmix-style spread).
pub(crate) fn derive_seed(master: u64, scenario: &str, worker: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in scenario.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    master ^ h ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// A scenario in flight: server, listener, baseline snapshot, shared
/// counters, and accumulated violations.
pub(crate) struct Run {
    pub name: &'static str,
    pub server: Server,
    pub handle: Option<ServerHandle>,
    pub baseline: Snapshot,
    pub shared: Arc<Shared>,
    pub violations: Vec<String>,
    pub slo: Slo,
    started: Instant,
    hung: bool,
}

impl Run {
    /// Boot a server for this scenario (programmatic config + `GENALG_*`
    /// environment overrides), bind an ephemeral port, and take the
    /// baseline snapshot the phase delta will subtract.
    pub fn start(name: &'static str, db: Arc<Database>, config: ServerConfig, slo: Slo) -> Run {
        let config = config.with_env_overrides();
        let server = Server::new(db, &config);
        let handle = server.listen("127.0.0.1:0").expect("bind ephemeral port");
        let baseline = server.service().snapshot();
        Run {
            name,
            server,
            handle: Some(handle),
            baseline,
            shared: Arc::new(Shared::default()),
            violations: Vec::new(),
            slo,
            started: Instant::now(),
            hung: false,
        }
    }

    /// Fan out `cfg.clients` wire workers running `f`, bounded by the
    /// watchdog. A worker that panics or outlives the deadline becomes an
    /// SLO violation (hung threads are leaked, never joined — the harness
    /// must survive a wedged server to report on it).
    pub fn drive<F>(&mut self, cfg: &LoadConfig, f: F)
    where
        F: Fn(usize, &mut Ctx) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let addr = self.handle.as_ref().expect("drive after finish").addr();
        let (done_tx, done_rx) = mpsc::channel::<bool>();
        let mut joins = Vec::new();
        for worker in 0..cfg.clients {
            let f = Arc::clone(&f);
            let shared = Arc::clone(&self.shared);
            let done_tx = done_tx.clone();
            let seed = derive_seed(cfg.seed, self.name, worker);
            let builder = std::thread::Builder::new().name(format!("loadgen-{worker}"));
            let join = builder
                .spawn(move || {
                    let clean = catch_unwind(AssertUnwindSafe(|| {
                        let conn = match TcpClient::connect(addr) {
                            Ok(c) => c,
                            Err(e) => {
                                shared.unexpected.fetch_add(1, Ordering::Relaxed);
                                shared.note(format!("worker {worker}: connect failed: {e}"));
                                return;
                            }
                        };
                        let mut ctx = Ctx {
                            conn,
                            session: 0,
                            rng: StdRng::seed_from_u64(seed),
                            worker,
                            shared: Arc::clone(&shared),
                        };
                        f(worker, &mut ctx);
                    }))
                    .is_ok();
                    let _ = done_tx.send(clean);
                })
                .expect("spawn worker");
            joins.push(join);
        }
        drop(done_tx);

        let deadline = Instant::now() + cfg.timeout;
        let mut finished = 0;
        while finished < cfg.clients {
            let left = deadline.saturating_duration_since(Instant::now());
            match done_rx.recv_timeout(left) {
                Ok(true) => finished += 1,
                Ok(false) => {
                    finished += 1;
                    self.violations.push("worker thread panicked (see test output)".into());
                }
                Err(_) => {
                    self.hung = true;
                    self.violations.push(format!(
                        "hang: only {finished}/{} workers finished within {:?}",
                        cfg.clients, cfg.timeout
                    ));
                    return; // leak the stuck threads; report must still go out
                }
            }
        }
        for join in joins {
            let _ = join.join();
        }

        // Liveness: after the storm the admission queue must still accept
        // and answer work — a drained pool, not a wedged one.
        let client = self.server.client();
        let probe = client.open(SessionKind::Public);
        let drain_deadline = Instant::now() + DRAIN_DEADLINE;
        loop {
            match client.query(probe, "SELECT 1 + 1") {
                Ok(_) => break,
                Err(ServerError::Busy { .. }) if Instant::now() < drain_deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    self.violations.push(format!("queue failed to drain: {e}"));
                    break;
                }
            }
        }
        client.close(probe);
    }

    /// Did the watchdog fire?
    pub fn hung(&self) -> bool {
        self.hung
    }

    /// The scenario's phase delta so far: everything that happened on the
    /// server since [`Run::start`].
    pub fn delta(&self) -> Snapshot {
        self.server.service().snapshot().delta_since(&self.baseline)
    }

    /// Evaluate SLOs against the final phase delta and close out.
    pub fn finish(mut self, cfg: &LoadConfig) -> ScenarioResult {
        let elapsed = self.started.elapsed();
        let delta = self.delta();

        let ok = self.shared.ok.load(Ordering::Relaxed);
        let busy = self.shared.busy.load(Ordering::Relaxed);
        let conflict = self.shared.conflict.load(Ordering::Relaxed);
        let db_err = self.shared.db_err.load(Ordering::Relaxed);
        let unexpected = self.shared.unexpected.load(Ordering::Relaxed);
        let ops = ok + busy + conflict + db_err + unexpected;

        let client = self.shared.latency.snapshot();
        let server_lat = merge(delta.hist("query_read_latency"), delta.hist("query_write_latency"));
        let queue = delta.hist("query_queue_wait").cloned().unwrap_or_else(zero_hist);

        self.violations.extend(self.shared.take_problems());
        if unexpected > 0 {
            self.violations.push(format!("{unexpected} unexpected (non-structured) errors"));
        }
        if delta.value("server_worker_panics").unwrap_or(0) > 0 {
            self.violations.push(format!(
                "{} worker panics under load",
                delta.value("server_worker_panics").unwrap_or(0)
            ));
        }
        let busy_rate = if ops == 0 { 0.0 } else { busy as f64 / ops as f64 };
        if busy_rate > self.slo.max_busy_rate {
            self.violations.push(format!(
                "busy-shed rate {busy_rate:.3} exceeds SLO {:.3}",
                self.slo.max_busy_rate
            ));
        }
        if let Some(bound) = self.slo.max_p99_us {
            if (!cfg.smoke || self.slo.force_latency) && server_lat.quantile_us(0.99) > bound {
                self.violations.push(format!(
                    "server p99 {}µs exceeds SLO {bound}µs",
                    server_lat.quantile_us(0.99)
                ));
            }
        }

        // Every SLO failure ships its own diagnosis: a full incident
        // bundle (stats, fingerprints, plan changes, metric history, slow
        // queries, trace tail) next to the failure dump CI uploads. Written
        // directly — not through the server's rate-limited recorder — so a
        // multi-scenario suite never suppresses a later scenario's bundle.
        if !self.violations.is_empty() {
            let reason = if self.hung { "watchdog" } else { "slo_violation" };
            let bundle = self.server.service().incident_bundle(reason);
            let _ = bundle.write_to(&incident_out_dir(), self.name);
        }

        if let Some(handle) = self.handle.take() {
            // Joins only the accept thread, so this is safe even when a
            // hung scenario left connection threads stuck.
            handle.stop();
        }

        let elapsed_ms = elapsed.as_millis().min(u128::from(u64::MAX)) as u64;
        ScenarioResult {
            name: self.name,
            ops,
            ok,
            busy,
            conflict,
            db_err,
            unexpected,
            elapsed_ms,
            throughput_ops_s: if elapsed_ms == 0 {
                0.0
            } else {
                ok as f64 * 1000.0 / elapsed_ms as f64
            },
            client_p50_us: client.quantile_us(0.5),
            client_p99_us: client.quantile_us(0.99),
            server_p50_us: server_lat.quantile_us(0.5),
            server_p99_us: server_lat.quantile_us(0.99),
            queue_p99_us: queue.quantile_us(0.99),
            violations: self.violations,
        }
    }
}

fn zero_hist() -> HistogramSnapshot {
    HistogramSnapshot { buckets: [0; BUCKETS], sum_us: 0, count: 0 }
}

/// Bucket-wise merge of two optional histogram snapshots (reads + writes
/// share a latency SLO).
fn merge(a: Option<&HistogramSnapshot>, b: Option<&HistogramSnapshot>) -> HistogramSnapshot {
    let mut out = zero_hist();
    for h in [a, b].into_iter().flatten() {
        for (i, bucket) in out.buckets.iter_mut().enumerate() {
            *bucket += h.buckets[i];
        }
        out.sum_us += h.sum_us;
        out.count += h.count;
    }
    out
}

/// Where the harness writes incident bundles: `GENALG_INCIDENT_DIR` if
/// set, else `target/incidents` at the workspace root (cwd-independent,
/// alongside the failure dumps CI already uploads).
pub(crate) fn incident_out_dir() -> std::path::PathBuf {
    match std::env::var("GENALG_INCIDENT_DIR") {
        Ok(d) if !d.trim().is_empty() => std::path::PathBuf::from(d.trim()),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/incidents"),
    }
}

/// On SLO failure, drop a repro bundle where CI uploads artifacts from.
pub(crate) fn write_failure_dump(cfg: &LoadConfig, result: &ScenarioResult) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/loadgen");
    let _ = std::fs::create_dir_all(&dir);
    let mut dump = format!(
        "scenario: {}\nseed: {}\nclients: {}\nops_per_client: {}\nsmoke: {}\n\
         repro: LOADGEN_SEED={} LOADGEN_CLIENTS={} LOADGEN_OPS={} cargo bench -p genalg-bench --bench load\n\n\
         ops={} ok={} busy={} conflict={} db_err={} unexpected={}\n\
         client p50/p99 = {}/{} µs, server p50/p99 = {}/{} µs, queue p99 = {} µs\n\nviolations:\n",
        result.name,
        cfg.seed,
        cfg.clients,
        cfg.ops_per_client,
        cfg.smoke,
        cfg.seed,
        cfg.clients,
        cfg.ops_per_client,
        result.ops,
        result.ok,
        result.busy,
        result.conflict,
        result.db_err,
        result.unexpected,
        result.client_p50_us,
        result.client_p99_us,
        result.server_p50_us,
        result.server_p99_us,
        result.queue_p99_us,
    );
    for v in &result.violations {
        dump.push_str("  - ");
        dump.push_str(v);
        dump.push('\n');
    }
    let _ = std::fs::write(dir.join(format!("failure-{}.txt", result.name)), dump);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_differ_per_worker_and_scenario_but_not_per_run() {
        let a = derive_seed(42, "point_lookups", 0);
        assert_eq!(a, derive_seed(42, "point_lookups", 0));
        assert_ne!(a, derive_seed(42, "point_lookups", 1));
        assert_ne!(a, derive_seed(42, "analytical_scan", 0));
        assert_ne!(a, derive_seed(43, "point_lookups", 0));
    }

    #[test]
    fn merge_adds_buckets_and_counts() {
        let mut a = zero_hist();
        a.buckets[3] = 2;
        a.sum_us = 20;
        a.count = 2;
        let mut b = zero_hist();
        b.buckets[3] = 1;
        b.buckets[7] = 4;
        b.sum_us = 500;
        b.count = 5;
        let m = merge(Some(&a), Some(&b));
        assert_eq!(m.buckets[3], 3);
        assert_eq!(m.buckets[7], 4);
        assert_eq!(m.count, 7);
        assert_eq!(m.sum_us, 520);
        assert_eq!(merge(None, None).count, 0);
    }
}
