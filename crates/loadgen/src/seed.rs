//! Deterministic dataset builders (qdiff-style): the same seed always
//! yields byte-identical SQL, so every scenario's starting state — and
//! therefore every worker's statement stream against it — reproduces
//! exactly. Seeding runs directly on the engine (it is setup, not
//! measured traffic; only scenario traffic goes over the wire).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use unidb::{Database, Role};

/// Rows per multi-row `INSERT` batch.
const BATCH: usize = 250;

/// The eight curated organisms of the demo warehouse.
pub const ORGANISMS: usize = 8;

/// Build the deterministic seeding script for `public.genes(id, name,
/// organism, len)`: `rows` rows, organisms assigned round-robin (so each
/// organism holds exactly `rows / ORGANISMS`-ish rows — refresh storms
/// rely on the exact per-organism count), lengths drawn from the seeded
/// RNG.
pub fn genes_script(seed: u64, rows: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0067_656e_6573);
    let mut script =
        String::from("CREATE TABLE public.genes (id INT, name TEXT, organism TEXT, len INT);\n");
    let mut at = 0;
    while at < rows {
        let n = BATCH.min(rows - at);
        script.push_str("INSERT INTO public.genes VALUES ");
        for i in 0..n {
            if i > 0 {
                script.push_str(", ");
            }
            let id = at + i;
            let organism = id % ORGANISMS;
            let len: i64 = rng.gen_range(100..10_000);
            script.push_str(&format!("({id}, 'g{id:07}', 'org{organism}', {len})"));
        }
        script.push_str(";\n");
        at += n;
    }
    script
}

/// The `VALUES` tuples for one organism's refresh wave: same shape as the
/// original load so a DELETE+reload leaves the table statistically (and
/// count-wise exactly) unchanged.
pub fn organism_rows(seed: u64, wave: u64, organism: usize, rows: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ wave.wrapping_mul(0x9e37) ^ organism as u64);
    let mut batches = Vec::new();
    let mut at = 0;
    while at < rows {
        let n = BATCH.min(rows - at);
        let mut stmt = String::from("INSERT INTO public.genes VALUES ");
        for i in 0..n {
            if i > 0 {
                stmt.push_str(", ");
            }
            // Organism and wave both feed the id so concurrent refreshers
            // on different organisms never mint the same id.
            let id = 1_000_000 + organism * 1_000_000 + wave as usize * rows + at + i;
            let len: i64 = rng.gen_range(100..10_000);
            stmt.push_str(&format!("({id}, 'g{id:07}', 'org{organism}', {len})"));
        }
        batches.push(stmt);
        at += n;
    }
    batches
}

/// Build the seeding script for `public.hot(k, v)`: `keys` rows with a
/// unique index on `k`. `initial_v` seeds every counter (transaction
/// scenarios start from zero so `sum(v)` equals the number of committed
/// increments).
pub fn hot_script(seed: u64, keys: usize, initial_v: Option<i64>) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0068_6f74);
    let mut script = String::from("CREATE TABLE public.hot (k INT, v INT);\n");
    let mut at = 0;
    while at < keys {
        let n = BATCH.min(keys - at);
        script.push_str("INSERT INTO public.hot VALUES ");
        for i in 0..n {
            if i > 0 {
                script.push_str(", ");
            }
            let v = initial_v.unwrap_or_else(|| rng.gen_range(0..1_000_000i64));
            script.push_str(&format!("({}, {v})", at + i));
        }
        script.push_str(";\n");
        at += n;
    }
    script.push_str("CREATE UNIQUE INDEX ON public.hot (k);\n");
    script
}

/// Fresh in-memory database loaded from a seeding script.
pub fn fresh_db(script: &str) -> Arc<Database> {
    let db = Arc::new(Database::in_memory());
    db.execute_script_as(script, &Role::Maintainer).expect("seed script");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_per_seed() {
        assert_eq!(genes_script(7, 600), genes_script(7, 600));
        assert_ne!(genes_script(7, 600), genes_script(8, 600));
        assert_eq!(hot_script(7, 40, None), hot_script(7, 40, None));
        assert_eq!(organism_rows(7, 3, 2, 500), organism_rows(7, 3, 2, 500));
    }

    #[test]
    fn genes_balance_exactly_across_organisms() {
        let db = fresh_db(&genes_script(1, 800));
        let rs = db
            .execute_as(
                "SELECT count(*) FROM public.genes WHERE organism = 'org3'",
                &unidb::Role::Maintainer,
            )
            .unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(100));
    }

    #[test]
    fn hot_table_has_unique_indexed_keys() {
        let db = fresh_db(&hot_script(1, 300, Some(0)));
        let rs = db
            .execute_as("SELECT count(*), sum(v) FROM public.hot", &unidb::Role::Maintainer)
            .unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(300));
        assert_eq!(rs.rows[0][1].as_int(), Some(0));
    }
}
