//! Rendering a [`SuiteResult`] as machine-readable JSON (the committed
//! `BENCH_load.json` trajectory) and as a human-readable summary table.
//! Hand-rolled like every other bench in the workspace — the offline
//! build has no serde.

use crate::{ScenarioResult, SuiteResult};

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn scenario_json(s: &ScenarioResult) -> String {
    let violations =
        s.violations.iter().map(|v| format!("\"{}\"", esc(v))).collect::<Vec<_>>().join(",");
    format!(
        "{{\"name\":\"{}\",\"passed\":{},\"ops\":{},\"ok\":{},\"busy\":{},\"conflict\":{},\
         \"db_err\":{},\"unexpected\":{},\"elapsed_ms\":{},\"throughput_ops_s\":{:.1},\
         \"busy_rate\":{:.4},\"client_p50_us\":{},\"client_p99_us\":{},\"server_p50_us\":{},\
         \"server_p99_us\":{},\"queue_p99_us\":{},\"violations\":[{}]}}",
        s.name,
        s.passed(),
        s.ops,
        s.ok,
        s.busy,
        s.conflict,
        s.db_err,
        s.unexpected,
        s.elapsed_ms,
        s.throughput_ops_s,
        s.busy_rate(),
        s.client_p50_us,
        s.client_p99_us,
        s.server_p50_us,
        s.server_p99_us,
        s.queue_p99_us,
        violations,
    )
}

/// The whole suite as one JSON document.
pub fn to_json(suite: &SuiteResult) -> String {
    let scenarios = suite.scenarios.iter().map(scenario_json).collect::<Vec<_>>().join(",");
    format!(
        "{{\"bench\":\"load\",\"seed\":{},\"smoke\":{},\"clients\":{},\"ops_per_client\":{},\
         \"passed\":{},\"scenarios\":[{}]}}",
        suite.seed,
        suite.smoke,
        suite.clients,
        suite.ops_per_client,
        suite.passed(),
        scenarios,
    )
}

/// A fixed-width summary table for terminals and CI logs.
pub fn table(suite: &SuiteResult) -> String {
    let mut out = format!(
        "load suite: seed={} clients={} ops/client={}{}\n\
         {:<18} {:>7} {:>7} {:>6} {:>8} {:>9} {:>11} {:>11}  result\n",
        suite.seed,
        suite.clients,
        suite.ops_per_client,
        if suite.smoke { " (smoke)" } else { "" },
        "scenario",
        "ops",
        "ok",
        "busy",
        "conflict",
        "ops/s",
        "srv p50 µs",
        "srv p99 µs",
    );
    for s in &suite.scenarios {
        out.push_str(&format!(
            "{:<18} {:>7} {:>7} {:>6} {:>8} {:>9.0} {:>11} {:>11}  {}\n",
            s.name,
            s.ops,
            s.ok,
            s.busy,
            s.conflict,
            s.throughput_ops_s,
            s.server_p50_us,
            s.server_p99_us,
            if s.passed() { "PASS" } else { "FAIL" },
        ));
        for v in &s.violations {
            out.push_str(&format!("    ! {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &'static str, violations: Vec<String>) -> ScenarioResult {
        ScenarioResult {
            name,
            ops: 100,
            ok: 90,
            busy: 8,
            conflict: 2,
            db_err: 0,
            unexpected: 0,
            elapsed_ms: 250,
            throughput_ops_s: 360.0,
            client_p50_us: 400,
            client_p99_us: 2_000,
            server_p50_us: 120,
            server_p99_us: 900,
            queue_p99_us: 80,
            violations,
        }
    }

    #[test]
    fn json_is_parseable_shape_and_escapes_quotes() {
        let suite = SuiteResult {
            seed: 7,
            smoke: true,
            clients: 4,
            ops_per_client: 60,
            scenarios: vec![result("a", vec![]), result("b", vec!["p99 \"too\" slow".into()])],
        };
        let json = to_json(&suite);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"bench\":\"load\""));
        assert!(json.contains("\"passed\":false"));
        assert!(json.contains("p99 \\\"too\\\" slow"));
        assert_eq!(json.matches("\"name\":").count(), 2);
    }

    #[test]
    fn table_marks_failures() {
        let suite = SuiteResult {
            seed: 7,
            smoke: false,
            clients: 8,
            ops_per_client: 300,
            scenarios: vec![result("a", vec!["broken".into()])],
        };
        let t = table(&suite);
        assert!(t.contains("FAIL"));
        assert!(t.contains("! broken"));
    }
}
