//! The scenario suite. Each scenario builds its own database and server
//! (tuned via `ServerConfig`, overridable with `GENALG_*` env vars),
//! drives it over the wire, and checks scenario-specific invariants on
//! top of the universal SLOs the driver asserts.

use crate::driver::{Class, Run};
use crate::{seed, LoadConfig, ScenarioResult, Slo};
use genalg_server::{ServerConfig, ServerError, SessionKind};
use rand::Rng;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unidb::{Database, FaultConfig, FaultVfs, Role};

fn slo(max_p99_us: Option<u64>, max_busy_rate: f64) -> Slo {
    Slo { max_p99_us, max_busy_rate, force_latency: false }
}

/// Indexed single-row reads at full concurrency: the latency floor. The
/// default pool (8 workers, 64 slots) should shed essentially nothing.
pub fn point_lookups(cfg: &LoadConfig) -> ScenarioResult {
    let keys = if cfg.smoke { 128 } else { 512 };
    let db = seed::fresh_db(&seed::hot_script(cfg.seed, keys, None));
    let mut slo = slo(Some(50_000), 0.01);
    if cfg.inject_slo_failure {
        // Demonstration hook: an impossible bound that any real run
        // violates, asserted even in smoke mode.
        slo.max_p99_us = Some(0);
        slo.force_latency = true;
    }
    let mut run = Run::start("point_lookups", db, ServerConfig::default(), slo);
    let ops = cfg.ops_per_client;
    run.drive(cfg, move |_, ctx| {
        ctx.open(SessionKind::Public);
        for _ in 0..ops {
            let k: usize = ctx.rng.gen_range(0..keys);
            if let Class::Ok(rs) = ctx.exec(&format!("SELECT v FROM public.hot WHERE k = {k}")) {
                if rs.rows.len() != 1 {
                    ctx.shared.note(format!("lookup k={k} returned {} rows", rs.rows.len()));
                }
            }
        }
    });
    run.finish(cfg)
}

/// Analytical scans and aggregates hammering the full table while the
/// result cache is repeatedly bypassed by fresh predicates.
pub fn analytical_scan(cfg: &LoadConfig) -> ScenarioResult {
    let rows = cfg.genes_rows();
    let db = seed::fresh_db(&seed::genes_script(cfg.seed, rows));
    let mut run =
        Run::start("analytical_scan", db, ServerConfig::default(), slo(Some(250_000), 0.05));
    let ops = cfg.ops_per_client;
    run.drive(cfg, move |_, ctx| {
        ctx.open(SessionKind::Public);
        for i in 0..ops {
            match i % 4 {
                0 => {
                    // Full-table integrity probe: the count never moves in
                    // this scenario.
                    if let Class::Ok(rs) = ctx.exec("SELECT count(*) FROM public.genes") {
                        if rs.rows[0][0].as_int() != Some(rows as i64) {
                            ctx.shared.note(format!(
                                "count(*) returned {:?}, want {rows}",
                                rs.rows[0][0]
                            ));
                        }
                    }
                }
                1 => {
                    if let Class::Ok(rs) = ctx.exec(
                        "SELECT organism, count(*), avg(len) FROM public.genes \
                         GROUP BY organism",
                    ) {
                        if rs.rows.len() != seed::ORGANISMS {
                            ctx.shared.note(format!(
                                "GROUP BY returned {} organisms, want {}",
                                rs.rows.len(),
                                seed::ORGANISMS
                            ));
                        }
                    }
                }
                2 => {
                    let cut: i64 = ctx.rng.gen_range(100..10_000);
                    ctx.exec(&format!("SELECT count(*) FROM public.genes WHERE len > {cut}"));
                }
                _ => {
                    let org: usize = ctx.rng.gen_range(0..seed::ORGANISMS);
                    ctx.exec(&format!(
                        "SELECT max(len), min(len) FROM public.genes WHERE organism = 'org{org}'"
                    ));
                }
            }
        }
    });
    run.finish(cfg)
}

/// BEGIN/UPDATE/COMMIT loops on a handful of hot rows: first-committer
/// wins, losers retry. The ledger check at the end is the point — every
/// committed cycle incremented exactly one counter exactly once, so
/// `sum(v)` must equal the number of commits (no lost updates, no
/// double-applies).
pub fn txn_conflicts(cfg: &LoadConfig) -> ScenarioResult {
    let hot_keys = 4usize;
    let db = seed::fresh_db(&seed::hot_script(cfg.seed, hot_keys, Some(0)));
    let mut run =
        Run::start("txn_conflicts", db, ServerConfig::default(), slo(Some(100_000), 0.20));
    let ops = cfg.ops_per_client;
    run.drive(cfg, move |_, ctx| {
        ctx.open(SessionKind::Maintainer);
        for _ in 0..ops {
            // One op = one commit attempt. Any failure mid-cycle rolls
            // back (unpinning the session) and moves on; conflicts are
            // counted and effectively retried by the next cycle.
            if !matches!(ctx.exec("BEGIN"), Class::Ok(_)) {
                continue;
            }
            let k: usize = ctx.rng.gen_range(0..hot_keys);
            if !matches!(
                ctx.exec(&format!("UPDATE public.hot SET v = v + 1 WHERE k = {k}")),
                Class::Ok(_)
            ) {
                ctx.exec("ROLLBACK");
                continue;
            }
            // COMMIT unpins the session win or lose; nothing to clean up
            // on a conflict.
            if matches!(ctx.exec("COMMIT"), Class::Ok(_)) {
                ctx.shared.aux.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    let commits = run.shared.aux.load(Ordering::Relaxed);
    let client = run.server.client();
    let s = client.open(SessionKind::Public);
    match client.query(s, "SELECT sum(v) FROM public.hot") {
        Ok(rs) => {
            let total = rs.rows[0][0].as_int().unwrap_or(-1);
            if total != commits as i64 {
                run.violations.push(format!(
                    "lost-update ledger broken: sum(v) = {total} but {commits} commits succeeded"
                ));
            }
        }
        Err(e) => run.violations.push(format!("ledger query failed: {e}")),
    }
    client.close(s);
    if commits == 0 {
        run.violations.push("no transaction ever committed".into());
    }
    let delta = run.delta();
    if run.shared.conflict.load(Ordering::Relaxed) > 0
        && delta.value("txn_conflicts").unwrap_or(0) == 0
    {
        run.violations.push("client saw conflicts the server never counted".into());
    }
    run.finish(cfg)
}

/// ETL refresh storms mid-traffic: two maintainers transactionally
/// DELETE and reload whole organisms while readers count the table.
/// Snapshot isolation means a reader must never observe a half-applied
/// refresh — the count is always exactly the full table.
pub fn etl_refresh_storm(cfg: &LoadConfig) -> ScenarioResult {
    let rows = cfg.genes_rows();
    let per_org = rows / seed::ORGANISMS;
    let db = seed::fresh_db(&seed::genes_script(cfg.seed, rows));
    let mut run =
        Run::start("etl_refresh_storm", db, ServerConfig::default(), slo(Some(250_000), 0.10));
    let ops = cfg.ops_per_client;
    let seed_val = cfg.seed;
    run.drive(cfg, move |worker, ctx| {
        if worker < 2 {
            // Refresher: each owns half the organisms, so two storms never
            // fight over the same rows.
            ctx.open(SessionKind::Maintainer);
            let waves = (ops / 8).max(2);
            for wave in 0..waves {
                let org = worker * (seed::ORGANISMS / 2) + wave % (seed::ORGANISMS / 2);
                if !matches!(ctx.exec("BEGIN"), Class::Ok(_)) {
                    continue;
                }
                let mut aborted = false;
                if !matches!(
                    ctx.exec(&format!("DELETE FROM public.genes WHERE organism = 'org{org}'")),
                    Class::Ok(_)
                ) {
                    aborted = true;
                }
                if !aborted {
                    for stmt in seed::organism_rows(seed_val, wave as u64, org, per_org) {
                        if !matches!(ctx.exec(&stmt), Class::Ok(_)) {
                            aborted = true;
                            break;
                        }
                    }
                }
                if aborted {
                    ctx.exec("ROLLBACK");
                } else if matches!(ctx.exec("COMMIT"), Class::Ok(_)) {
                    ctx.shared.aux.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            // Reader: the row count is invariant under refreshes — any
            // other answer means a torn snapshot.
            ctx.open(SessionKind::Public);
            for _ in 0..ops {
                if let Class::Ok(rs) = ctx.exec("SELECT count(*) FROM public.genes") {
                    if rs.rows[0][0].as_int() != Some(rows as i64) {
                        ctx.shared.note(format!(
                            "reader saw {:?} rows mid-refresh, want {rows}",
                            rs.rows[0][0]
                        ));
                    }
                }
            }
        }
    });

    if run.shared.aux.load(Ordering::Relaxed) == 0 {
        run.violations.push("no refresh wave ever committed".into());
    }
    let client = run.server.client();
    let s = client.open(SessionKind::Public);
    match client.query(s, "SELECT count(*) FROM public.genes") {
        Ok(rs) if rs.rows[0][0].as_int() == Some(rows as i64) => {}
        Ok(rs) => {
            run.violations.push(format!("final count {:?} after storm, want {rows}", rs.rows[0][0]))
        }
        Err(e) => run.violations.push(format!("final count query failed: {e}")),
    }
    client.close(s);
    run.finish(cfg)
}

/// Cache-hostile churn on a deliberately tiny pool: DDL/DML bump the
/// generation counters, the queue sheds constantly, and every worker
/// abandons one open transaction mid-run. The reaper must unpin all of
/// them from other sessions' traffic alone, and the transaction ledger
/// must balance afterwards.
pub fn cache_churn(cfg: &LoadConfig) -> ScenarioResult {
    let db = seed::fresh_db(&seed::genes_script(cfg.seed, if cfg.smoke { 500 } else { 2_000 }));
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 2,
        txn_timeout_ms: 150,
        ..ServerConfig::default()
    };
    // Shedding is the point here: allow almost everything to bounce, but
    // the error SLO (zero unexpected) and the hang SLO still hold.
    let mut run = Run::start("cache_churn", db, config, slo(None, 0.95));
    let ops = cfg.ops_per_client;
    run.drive(cfg, move |worker, ctx| {
        let maintainer = worker % 2 == 0;
        ctx.open(if maintainer { SessionKind::Maintainer } else { SessionKind::Public });
        for i in 0..ops {
            if maintainer && i == ops / 2 {
                // Abandon a transaction: open a throwaway session, BEGIN,
                // write, and never speak on it again. Only the global
                // reaper can unpin it.
                if let Ok(doomed) = ctx.conn.open(SessionKind::Maintainer) {
                    if matches!(ctx.exec_on(doomed, "BEGIN"), Class::Ok(_)) {
                        ctx.exec_on(
                            doomed,
                            &format!("INSERT INTO public.genes VALUES ({}, 'x', 'org0', 1)", {
                                9_000_000 + worker
                            }),
                        );
                        ctx.shared.aux.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if maintainer {
                match i % 4 {
                    0 => {
                        ctx.exec(&format!("CREATE TABLE public.churn_{worker}_{i} (x INT)"));
                    }
                    1 => {
                        ctx.exec(&format!(
                            "INSERT INTO public.genes VALUES ({}, 'c', 'org1', 2)",
                            8_000_000 + worker * 10_000 + i
                        ));
                    }
                    2 => {
                        ctx.exec(&format!("DROP TABLE public.churn_{worker}_{}", i - 2));
                    }
                    _ => {
                        let id: usize = ctx.rng.gen_range(0..100);
                        ctx.exec(&format!("UPDATE public.genes SET len = len + 1 WHERE id = {id}"));
                    }
                }
            } else {
                match i % 2 {
                    0 => {
                        ctx.exec("SELECT count(*) FROM public.genes");
                    }
                    _ => {
                        let id: usize = ctx.rng.gen_range(0..100);
                        ctx.exec(&format!("SELECT name FROM public.genes WHERE id = {id}"));
                    }
                }
            }
        }
    });

    // The abandoned transactions can only be unpinned by the global sweep
    // riding other sessions' traffic — so generate traffic and wait.
    let leaked = run.shared.aux.load(Ordering::Relaxed);
    if !run.hung() && leaked > 0 {
        let client = run.server.client();
        let s = client.open(SessionKind::Public);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let _ = client.query(s, "SELECT count(*) FROM public.genes");
            let reaped = run.delta().value("txn_reaped").unwrap_or(0);
            if reaped >= leaked {
                break;
            }
            if Instant::now() > deadline {
                run.violations.push(format!(
                    "reaper unpinned only {reaped}/{leaked} abandoned transactions in 10s"
                ));
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        client.close(s);
    }
    let delta = run.delta();
    let begun = delta.value("txn_begun").unwrap_or(0);
    let settled =
        delta.value("txn_committed").unwrap_or(0) + delta.value("txn_aborted").unwrap_or(0);
    if begun != settled {
        run.violations.push(format!("txn ledger unbalanced: {begun} begun vs {settled} settled"));
    }
    if delta.value("cache_plan_misses").unwrap_or(0) == 0 {
        run.violations.push("DDL churn never missed the plan cache".into());
    }
    run.finish(cfg)
}

/// Writes over a disk injecting transient faults: every failure must be
/// a structured engine error (never a dead worker or a hang), reads keep
/// flowing, and once the disk recovers the same server accepts writes.
pub fn fault_injection(cfg: &LoadConfig) -> ScenarioResult {
    let vfs = FaultVfs::new(FaultConfig::transient(cfg.seed ^ 0xfa17));
    vfs.disarm();
    let db = Database::open_with_vfs(Path::new("/loadgen-faults"), Arc::new(vfs.clone()))
        .expect("open with faults disarmed");
    db.recover().expect("recover with faults disarmed");
    db.execute_script_as(&seed::hot_script(cfg.seed, 64, None), &Role::Maintainer)
        .expect("seed with faults disarmed");
    let mut run =
        Run::start("fault_injection", Arc::new(db), ServerConfig::default(), slo(None, 0.05));
    vfs.arm();
    let ops = cfg.ops_per_client;
    run.drive(cfg, move |worker, ctx| {
        if worker < 2 {
            ctx.open(SessionKind::Maintainer);
            for i in 0..ops {
                // Io faults surface as structured Db errors — the
                // expected failure class, counted but never fatal.
                ctx.exec(&format!(
                    "INSERT INTO public.hot VALUES ({}, {i})",
                    1_000 + worker * 100_000 + i
                ));
            }
        } else {
            ctx.open(SessionKind::Public);
            for _ in 0..ops {
                let k: usize = ctx.rng.gen_range(0..64);
                ctx.exec(&format!("SELECT v FROM public.hot WHERE k = {k}"));
            }
        }
    });
    vfs.disarm();

    let delta = run.delta();
    if delta.value("server_io_errors").unwrap_or(0) == 0 {
        run.violations.push("fault injection never fired; scenario proved nothing".into());
    }
    // Recovery: with faults disarmed the same server must accept a write.
    if !run.hung() {
        let client = run.server.client();
        let s = client.open(SessionKind::Maintainer);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match client.query(s, "INSERT INTO public.hot VALUES (999999, 1)") {
                Ok(_) => break,
                Err(ServerError::Busy { .. }) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    run.violations.push(format!("disk never recovered after disarm: {e}"));
                    break;
                }
            }
        }
        client.close(s);
    }
    run.finish(cfg)
}
