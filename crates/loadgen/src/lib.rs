//! Sustained-load proving ground for the warehouse server.
//!
//! The paper's warehouse (§5) is a *service*: the real question is not
//! whether one statement is correct but whether the server holds its
//! service levels while researchers hammer it — point lookups racing
//! analytical scans, ETL refresh storms mid-traffic, transaction loops
//! retrying conflicts, DDL churn invalidating every cache, and a flaky
//! disk underneath. This crate is the traffic half of that question: a
//! deterministic, seeded workload generator that drives `genalg-server`
//! through the **real wire protocol** (TCP, length-prefixed frames) at
//! controlled concurrency, plus a scenario suite in which every scenario
//! declares an SLO and the runner asserts it.
//!
//! ## Scenarios
//!
//! | scenario | traffic | what it proves |
//! |---|---|---|
//! | `point_lookups` | indexed single-row reads | baseline latency floor |
//! | `analytical_scan` | GROUP BY / filtered aggregates | scans don't starve the pool |
//! | `txn_conflicts` | BEGIN/UPDATE/COMMIT on hot rows | conflicts retry, no lost updates |
//! | `etl_refresh_storm` | transactional DELETE+reload vs readers | readers never see half a refresh |
//! | `cache_churn` | DDL/DML churn + abandoned txns, tiny pool | shedding is safe, reaper unpins |
//! | `fault_injection` | writes over a faulty disk | faults degrade to errors, then recover |
//!
//! ## SLOs
//!
//! Every scenario asserts: **zero unexpected errors** (anything that is
//! not `Ok`, a structured `Db` error, or `Busy`), **no protocol-level
//! hangs** (a wall-clock watchdog bounds the whole scenario; the queue
//! must drain afterwards), a **max `Busy`-shed rate**, and (full mode
//! only) a **p99 latency bound** read from the server's own observability
//! histograms via phase-delta snapshots
//! ([`genalg_obs::Snapshot::delta_since`]). Violations are collected, not
//! panicked, so one bad scenario still yields a full report.
//!
//! Everything is reproducible from a single seed: per-worker RNG streams
//! are derived from `(seed, scenario, worker)`, so the SQL every worker
//! sends is identical run to run (timing, and therefore counts of
//! `Busy`/`Conflict`, is the only nondeterminism).
//!
//! Entry points: `cargo bench -p genalg-bench --bench load` (writes
//! `BENCH_load.json`), or [`run_suite`] / [`run_scenario`] directly.

mod driver;
pub mod report;
pub mod scenarios;
pub mod seed;

pub use driver::{Ctx, Shared};

use std::time::Duration;

/// Scenario names in suite order.
pub const SCENARIOS: &[&str] = &[
    "point_lookups",
    "analytical_scan",
    "txn_conflicts",
    "etl_refresh_storm",
    "cache_churn",
    "fault_injection",
];

/// Knobs for a suite run. Start from [`LoadConfig::default`] or
/// [`LoadConfig::from_env`]; the server under test additionally honours
/// the `GENALG_*` variables via `ServerConfig::with_env_overrides`.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Master seed; every worker's SQL stream derives from it.
    pub seed: u64,
    /// Concurrent wire connections per scenario.
    pub clients: usize,
    /// Operations each client performs (an op may be several statements,
    /// e.g. a whole BEGIN/UPDATE/COMMIT cycle).
    pub ops_per_client: usize,
    /// Smoke mode: smaller dataset, latency SLOs not asserted (error,
    /// shed-rate, and hang SLOs still are).
    pub smoke: bool,
    /// Wall-clock watchdog per scenario; exceeding it is a hang → SLO
    /// violation, never a stuck harness.
    pub timeout: Duration,
    /// Force an impossible latency SLO on `point_lookups` (even in smoke
    /// mode) so CI wiring can be demonstrated to fail. Set by
    /// `LOADGEN_INJECT_SLO_FAILURE=1`.
    pub inject_slo_failure: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 42,
            clients: 8,
            ops_per_client: 300,
            smoke: false,
            timeout: Duration::from_secs(120),
            inject_slo_failure: false,
        }
    }
}

impl LoadConfig {
    /// Build a config from the environment:
    ///
    /// | variable | effect |
    /// |---|---|
    /// | `LOADGEN_SMOKE=1` | smoke mode (4 clients × 60 ops, no latency SLOs) |
    /// | `LOADGEN_SEED` | master seed (default 42) |
    /// | `LOADGEN_CLIENTS` | connections per scenario |
    /// | `LOADGEN_OPS` | ops per client |
    /// | `LOADGEN_TIMEOUT_S` | per-scenario watchdog seconds |
    /// | `LOADGEN_INJECT_SLO_FAILURE=1` | demonstrate an SLO failure |
    pub fn from_env() -> Self {
        fn env<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
        }
        let smoke = env::<u8>("LOADGEN_SMOKE").unwrap_or(0) != 0;
        let mut cfg = LoadConfig { smoke, ..LoadConfig::default() };
        if smoke {
            cfg.clients = 4;
            cfg.ops_per_client = 60;
            cfg.timeout = Duration::from_secs(60);
        }
        if let Some(v) = env::<u64>("LOADGEN_SEED") {
            cfg.seed = v;
        }
        if let Some(v) = env::<usize>("LOADGEN_CLIENTS") {
            cfg.clients = v.max(1);
        }
        if let Some(v) = env::<usize>("LOADGEN_OPS") {
            cfg.ops_per_client = v.max(1);
        }
        if let Some(v) = env::<u64>("LOADGEN_TIMEOUT_S") {
            cfg.timeout = Duration::from_secs(v.max(1));
        }
        cfg.inject_slo_failure = env::<u8>("LOADGEN_INJECT_SLO_FAILURE").unwrap_or(0) != 0;
        cfg
    }

    /// Dataset scale: rows in `public.genes`.
    pub fn genes_rows(&self) -> usize {
        if self.smoke {
            2_000
        } else {
            20_000
        }
    }
}

/// The service levels one scenario declares. Error-rate and hang SLOs are
/// implicit and universal (always zero unexpected errors, always bounded
/// wall clock); these are the per-scenario knobs.
#[derive(Debug, Clone)]
pub struct Slo {
    /// Server-side p99 bound in µs (merged read+write latency histograms
    /// over the scenario's phase delta). `None` = not asserted.
    pub max_p99_us: Option<u64>,
    /// Max fraction of ops the admission queue may shed with `Busy`.
    pub max_busy_rate: f64,
    /// Assert the latency bound even in smoke mode (used by the injected
    /// failure demonstration).
    pub force_latency: bool,
}

/// Outcome of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    pub name: &'static str,
    /// Total ops attempted (ok + busy + conflict + db_err + unexpected).
    pub ops: u64,
    pub ok: u64,
    pub busy: u64,
    pub conflict: u64,
    pub db_err: u64,
    pub unexpected: u64,
    pub elapsed_ms: u64,
    /// Successful ops per second of wall clock.
    pub throughput_ops_s: f64,
    /// Client-observed latency (connect-to-reply) over the wire.
    pub client_p50_us: u64,
    pub client_p99_us: u64,
    /// Server-side statement latency from the obs histograms (phase delta).
    pub server_p50_us: u64,
    pub server_p99_us: u64,
    pub queue_p99_us: u64,
    /// Every SLO violation and invariant failure observed; empty = passed.
    pub violations: Vec<String>,
}

impl ScenarioResult {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn busy_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.busy as f64 / self.ops as f64
        }
    }
}

/// Outcome of the whole suite.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    pub seed: u64,
    pub smoke: bool,
    pub clients: usize,
    pub ops_per_client: usize,
    pub scenarios: Vec<ScenarioResult>,
}

impl SuiteResult {
    pub fn passed(&self) -> bool {
        self.scenarios.iter().all(|s| s.passed())
    }

    /// Panic with every violation if any SLO failed — the suite's gate.
    pub fn assert_slos(&self) {
        if self.passed() {
            return;
        }
        let mut msg = String::from("SLO violations:\n");
        for s in self.scenarios.iter().filter(|s| !s.passed()) {
            for v in &s.violations {
                msg.push_str(&format!("  [{}] {v}\n", s.name));
            }
        }
        panic!("{msg}");
    }
}

/// Run one scenario by name. Returns `None` for an unknown name.
pub fn run_scenario(name: &str, cfg: &LoadConfig) -> Option<ScenarioResult> {
    let result = match name {
        "point_lookups" => scenarios::point_lookups(cfg),
        "analytical_scan" => scenarios::analytical_scan(cfg),
        "txn_conflicts" => scenarios::txn_conflicts(cfg),
        "etl_refresh_storm" => scenarios::etl_refresh_storm(cfg),
        "cache_churn" => scenarios::cache_churn(cfg),
        "fault_injection" => scenarios::fault_injection(cfg),
        _ => return None,
    };
    if !result.passed() {
        driver::write_failure_dump(cfg, &result);
    }
    Some(result)
}

/// Run every scenario in [`SCENARIOS`] order and collect the outcomes.
/// Does **not** panic on violations — call [`SuiteResult::assert_slos`]
/// after persisting the report so artifacts survive a failure.
pub fn run_suite(cfg: &LoadConfig) -> SuiteResult {
    let mut scenarios = Vec::new();
    for name in SCENARIOS {
        scenarios.push(run_scenario(name, cfg).expect("built-in scenario name"));
    }
    SuiteResult {
        seed: cfg.seed,
        smoke: cfg.smoke,
        clients: cfg.clients,
        ops_per_client: cfg.ops_per_client,
        scenarios,
    }
}
