//! The database engine facade: sessions, DDL/DML execution, transactions,
//! durability, and the extension registration surface.

use crate::catalog::{Catalog, ColumnDef, EquiDepthHistogram, Role, TableDef};
use crate::datum::{DataType, Datum};
use crate::error::{DbError, DbResult};
use crate::exec::stats::OpStatsSnapshot;
use crate::exec::{execute_plan, execute_plan_with_stats, ScanProgress, ScanSpec, StorageAccess};
use crate::expr::compile::compile;
use crate::expr::eval::{eval, ColumnBinding, EvalContext};
use crate::expr::func::{AggregateFn, FunctionRegistry, ScalarFn};
use crate::index::btree::BTreeIndex;
use crate::index::udi::AccessMethod;
use crate::plan::planner::{plan_select, PlannerContext};
use crate::plan::PhysicalPlan;
use crate::sql::ast::{Expr, Stmt};
use crate::sql::parser::{parse, parse_many};
use crate::storage::buffer::BufferPool;
use crate::storage::colpage::{ColumnPage, PageZone, ZoneMaps};
use crate::storage::heap::{HeapFile, Rid};
use crate::storage::store::MemStore;
use crate::storage::vfs::{StdVfs, Vfs};
use crate::storage::wal::{read_log_prefix, WalRecord, WalWriter};
use crate::tuple::{decode_row, decode_row_cols_into, encode_row, Row};
use crate::txn::TxnManager;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (empty for DDL/DML).
    pub columns: Vec<String>,
    /// Result rows (empty for DDL/DML).
    pub rows: Vec<Row>,
    /// Rows affected by DML (0 for queries).
    pub affected: u64,
    /// EXPLAIN text, if this was an EXPLAIN.
    pub explain: Option<String>,
}

impl ResultSet {
    pub(crate) fn empty() -> Self {
        ResultSet { columns: Vec::new(), rows: Vec::new(), affected: 0, explain: None }
    }

    pub(crate) fn affected(n: u64) -> Self {
        ResultSet { affected: n, ..Self::empty() }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Single-value convenience accessor: row 0, column 0.
    pub fn scalar(&self) -> Option<&Datum> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// Write-ahead-log counters for the live log (see [`Database::wal_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub appends: u64,
    /// Successful fsync-backed sync operations.
    pub syncs: u64,
    /// Failed sync attempts (each retried later with the buffer intact).
    pub sync_failures: u64,
}

pub(crate) struct TableStorage {
    pub(crate) heap: HeapFile,
    pub(crate) btrees: HashMap<String, BTreeIndex>,
    pub(crate) udis: HashMap<String, Box<dyn AccessMethod>>,
    /// Commit timestamp of each live rid's current content. Absent means
    /// "ancient": committed before every snapshot still alive. Entries at
    /// or below the oldest active snapshot are pruned by
    /// [`Inner::gc_versions`].
    pub(crate) born: HashMap<Rid, u64>,
    /// Prior images of updated/deleted rows, kept while any snapshot that
    /// can still see them is active. A version is visible to snapshot `s`
    /// iff `born <= s < died`.
    pub(crate) old_versions: Vec<OldVersion>,
    /// Per-page zone maps (min/max/null-count per leading column),
    /// maintained on every row mutation: inserts widen the target page's
    /// zone incrementally, deletes and updates rebuild the touched pages
    /// from the heap so zones stay exact. WAL replay re-runs the same
    /// mutators, so recovery rebuilds them for free.
    pub(crate) zones: ZoneMaps,
    /// Lazily-built columnar images of cold heap pages, keyed by page
    /// number. A page is cached only when fully inline and not the
    /// append target; any write to the page evicts its entry.
    pub(crate) col_cache: Mutex<HashMap<u32, Arc<ColumnPage>>>,
}

/// A superseded row version retained for snapshot-isolation readers.
pub(crate) struct OldVersion {
    /// The heap rid this version lived at before it was superseded — an
    /// open transaction that buffered a write against that rid must not
    /// see the version again (its own overlay supersedes it).
    pub(crate) rid: Rid,
    pub(crate) row: Row,
    pub(crate) born: u64,
    pub(crate) died: u64,
}

impl TableStorage {
    fn new(buffer_capacity: usize) -> Self {
        TableStorage {
            heap: HeapFile::new(BufferPool::new(Box::new(MemStore::new()), buffer_capacity)),
            btrees: HashMap::new(),
            udis: HashMap::new(),
            born: HashMap::new(),
            old_versions: Vec::new(),
            zones: ZoneMaps::default(),
            col_cache: Mutex::new(HashMap::new()),
        }
    }
}

pub(crate) struct Inner {
    pub(crate) catalog: Catalog,
    pub(crate) tables: HashMap<u32, TableStorage>,
    pub(crate) funcs: FunctionRegistry,
    pub(crate) wal: Option<WalWriter>,
    dir: Option<PathBuf>,
    /// The file system all durability IO goes through ([`StdVfs`] in
    /// production, a fault-injecting one under test).
    vfs: Arc<dyn Vfs>,
    /// Checkpoint epoch: the snapshot and the live WAL each open with an
    /// [`WalRecord::Epoch`]; mismatch marks a stale pre-checkpoint log.
    epoch: u64,
    replaying: bool,
    buffer_capacity: usize,
    /// Per-table version stamp: the commit timestamp of the last statement
    /// or transaction that changed the table. Cache layers (e.g. the
    /// server's result cache) compare snapshots of these to decide whether
    /// a cached result is still current, and MVCC read views compare them
    /// against their snapshot to take the unversioned fast path on tables
    /// nothing committed to since the snapshot was pinned.
    pub(crate) table_gens: HashMap<u32, u64>,
    /// Catalog version, bumped on DDL. Prepared statements carry the value
    /// they were planned under and refuse to run once it moves.
    catalog_gen: u64,
    /// Worker threads per query (1 = serial). Morsel-driven scans and the
    /// executor's pipeline breakers fan out to this many scoped threads.
    pub(crate) parallelism: usize,
    /// Heap pages read by `scan_batches` since open — an observability
    /// counter (SHOW STATS, tests asserting LIMIT short-circuits). Counts
    /// only pages actually visited; zone-map-refuted pages land in
    /// [`Inner::scan_pages_skipped`] instead.
    pub(crate) scan_pages: AtomicU64,
    /// Heap pages zone maps refuted without reading, since open.
    pub(crate) scan_pages_skipped: AtomicU64,
    /// Statistics rebuilds triggered by delete-heavy churn, since open.
    pub(crate) stats_rebuilt: AtomicU64,
    /// Timestamp of the newest committed statement or transaction.
    /// Snapshots pin this value; mutations stamp `committed_ts + 1`.
    pub(crate) committed_ts: u64,
    /// True while at least one transaction snapshot is active, so row
    /// mutations must record `born` stamps and prior images. With no
    /// active snapshot the bookkeeping would be garbage-collected
    /// immediately, so it is skipped at the source.
    pub(crate) track_versions: bool,
    /// Set by row mutators; consumed by [`Inner::seal_statement`] to
    /// advance [`Inner::committed_ts`] once per mutating statement.
    pub(crate) pending_dirty: bool,
}

/// Default query parallelism: `UNIDB_PARALLELISM` if set (min 1), else the
/// machine's available parallelism capped at 8 (diminishing returns for
/// the morsel sizes this engine uses).
fn default_parallelism() -> usize {
    if let Ok(v) = std::env::var("UNIDB_PARALLELISM") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// A planned SELECT, reusable across executions without re-parsing or
/// re-planning. Produced by [`Database::prepare`]; invalidated by DDL.
#[derive(Debug, Clone)]
pub struct Prepared {
    plan: PhysicalPlan,
    columns: Vec<String>,
    table_ids: Vec<u32>,
    catalog_gen: u64,
    plan_hash: u64,
    est_rows: u64,
    stats_gen: u64,
}

impl Prepared {
    /// Output column names of the planned query.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Ids of every base table the plan reads (deduplicated).
    pub fn table_ids(&self) -> &[u32] {
        &self.table_ids
    }

    /// The catalog generation this plan was built under.
    pub fn catalog_generation(&self) -> u64 {
        self.catalog_gen
    }

    /// One-line summary of the plan's root operator (the first line of
    /// `EXPLAIN`) — what slow-query logs record instead of the whole tree.
    pub fn root_label(&self) -> String {
        self.plan.node_label()
    }

    /// The deepest line of the literal-elided plan, trimmed — the access
    /// path. Plan-flip audits record this instead of the root label
    /// because an index swapping in under an unchanged `Project` root is
    /// exactly the change worth naming; literals are elided so the label
    /// matches the hash's insensitivity to bound constants.
    pub fn access_label(&self) -> String {
        let shape = self.plan.shape();
        shape.lines().last().unwrap_or_default().trim_start().to_string()
    }

    /// Deterministic hash of the plan *shape* (the literal-elided
    /// `EXPLAIN` tree under [`crate::fxhash::FxHasher`]). Two
    /// preparations of the same statement fingerprint produce the same
    /// hash unless the planner chose a structurally different plan —
    /// differing bound constants alone never flip it, which is exactly
    /// the sensitivity plan-change auditing wants.
    pub fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    /// The planner's cardinality estimate for this plan's output, rounded.
    pub fn estimated_rows(&self) -> u64 {
        self.est_rows
    }

    /// The statistics generation (drift-rebuild counter) this plan was
    /// costed under. A plan flip with a moved generation points at a stats
    /// rebuild as the trigger.
    pub fn stats_generation(&self) -> u64 {
        self.stats_gen
    }

    /// Rough heap footprint of this prepared statement for cache byte
    /// accounting: the plan's rendered size plus column/table metadata.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.plan.explain().len()
            + self.columns.iter().map(|c| c.len()).sum::<usize>()
            + self.table_ids.len() * std::mem::size_of::<u32>()
    }
}

/// The Unifying Database engine. Cheap to share (`Arc` internally is not
/// needed; the handle itself is `Send + Sync` via the internal lock).
///
/// Reads run concurrently: SELECT/EXPLAIN take a shared (read) lock on the
/// engine, so any number of sessions can scan and join at once — page-level
/// synchronization happens inside each table's buffer pool. DML and DDL take
/// the exclusive (write) lock.
pub struct Database {
    pub(crate) inner: RwLock<Inner>,
    /// Transaction manager: ids, snapshots, write-sets, counters. Lives
    /// outside the engine lock so transactions on different sessions run
    /// their statements concurrently.
    pub(crate) txns: TxnManager,
    /// The ambient transaction driven by textual `BEGIN`/`COMMIT`/`ROLLBACK`
    /// through [`Database::execute`] — script-style transactions that are
    /// not pinned to an explicit [`crate::txn::Transaction`] handle.
    pub(crate) ambient: Mutex<Option<u64>>,
}

impl Database {
    /// A volatile in-memory database.
    pub fn in_memory() -> Self {
        Database {
            inner: RwLock::new(Inner {
                catalog: Catalog::new(),
                tables: HashMap::new(),
                funcs: FunctionRegistry::with_builtins(),
                wal: None,
                dir: None,
                vfs: Arc::new(StdVfs),
                epoch: 0,
                replaying: false,
                buffer_capacity: 256,
                table_gens: HashMap::new(),
                catalog_gen: 0,
                parallelism: default_parallelism(),
                scan_pages: AtomicU64::new(0),
                scan_pages_skipped: AtomicU64::new(0),
                stats_rebuilt: AtomicU64::new(0),
                committed_ts: 0,
                track_versions: false,
                pending_dirty: false,
            }),
            txns: TxnManager::new(),
            ambient: Mutex::new(None),
        }
    }

    /// Open (or create) a durable database in `dir`. Recovery loads the
    /// snapshot (if any) and replays the write-ahead log.
    ///
    /// Opaque types and external functions are code, not data: callers must
    /// re-register them (in the same order, for stable type ids) before the
    /// first statement touches them — exactly like loading an extension
    /// module in a conventional DBMS. Registration is allowed before
    /// `open`-time replay by doing it through [`Database::in_memory`]-style
    /// handles; in practice the adapter registers immediately after open,
    /// before replay rows reference the types, which `open` guarantees by
    /// deferring replay to [`Database::recover`].
    pub fn open(dir: &Path) -> DbResult<Self> {
        Database::open_with_vfs(dir, Arc::new(StdVfs))
    }

    /// [`Database::open`] over an explicit file system — the entry point
    /// the fault-injection harness uses to run the whole engine against a
    /// [`crate::storage::vfs::FaultVfs`].
    pub fn open_with_vfs(dir: &Path, vfs: Arc<dyn Vfs>) -> DbResult<Self> {
        vfs.create_dir_all(dir)?;
        let db = Database::in_memory();
        {
            let mut inner = db.inner.write();
            inner.dir = Some(dir.to_path_buf());
            inner.vfs = vfs;
        }
        Ok(db)
    }

    /// Run recovery: load the snapshot, replay the WAL, then arm the WAL
    /// writer. Call after registering extensions.
    ///
    /// Replay is prefix-consistent and idempotent: the WAL's valid prefix
    /// (torn tails are dropped by frame CRCs) is applied on top of the
    /// snapshot; explicit transactions apply only up to their commit
    /// record, so a crash mid-transaction leaves them invisible; and a WAL
    /// whose epoch header predates the snapshot's (a crash between
    /// snapshot rename and log truncation) is discarded instead of being
    /// double-applied.
    pub fn recover(&self) -> DbResult<()> {
        let mut inner = self.inner.write();
        let Some(dir) = inner.dir.clone() else {
            return Err(DbError::Unsupported("recover() on an in-memory database".into()));
        };
        let vfs = Arc::clone(&inner.vfs);
        inner.replaying = true;
        let (snapshot_records, _) = read_log_prefix(vfs.as_ref(), &dir.join("snapshot.db"))?;
        let snap_epoch = leading_epoch(&snapshot_records);
        inner.replay_records(snapshot_records)?;
        let wal_path = dir.join("wal.db");
        let (wal_records, valid_len) = read_log_prefix(vfs.as_ref(), &wal_path)?;
        let stale_wal = !wal_records.is_empty() && leading_epoch(&wal_records) != snap_epoch;
        let fresh_wal = wal_records.is_empty();
        if !stale_wal {
            inner.replay_records(wal_records)?;
        }
        inner.replaying = false;
        inner.pending_dirty = false;
        inner.epoch = snap_epoch;
        let mut wal =
            WalWriter::open(vfs.as_ref(), &wal_path, if stale_wal { 0 } else { valid_len })?;
        if stale_wal {
            wal.truncate()?;
        }
        if stale_wal || fresh_wal {
            // Stamp the epoch the log continues from, so the next recovery
            // can tell it apart from a stale pre-checkpoint log.
            wal.append(&WalRecord::Epoch(snap_epoch));
            wal.sync()?;
        }
        inner.wal = Some(wal);
        Ok(())
    }

    /// Write a snapshot and truncate the WAL.
    ///
    /// Crash safety: the snapshot is built in a temp file, fsynced, then
    /// renamed over `snapshot.db` with a bumped epoch header. Only after
    /// the rename is the WAL truncated and re-stamped. A crash anywhere in
    /// between leaves either (old snapshot + full WAL) or (new snapshot +
    /// stale WAL, skipped at recovery via the epoch) — never double apply.
    pub fn checkpoint(&self) -> DbResult<()> {
        let mut inner = self.inner.write();
        let Some(dir) = inner.dir.clone() else {
            return Err(DbError::Unsupported("checkpoint() on an in-memory database".into()));
        };
        let vfs = Arc::clone(&inner.vfs);
        let next_epoch = inner.epoch + 1;
        let tmp = dir.join("snapshot.tmp");
        {
            let mut w = WalWriter::create(vfs.as_ref(), &tmp)?;
            w.append(&WalRecord::Epoch(next_epoch));
            for rec in inner.snapshot_records()? {
                w.append(&rec);
            }
            w.sync()?;
        }
        vfs.rename(&tmp, &dir.join("snapshot.db"))?;
        // The snapshot now governs; commit the epoch even if the WAL
        // cleanup below fails (the stale log will be skipped at recovery).
        inner.epoch = next_epoch;
        if let Some(wal) = inner.wal.as_mut() {
            wal.truncate()?;
            wal.append(&WalRecord::Epoch(next_epoch));
            wal.sync()?;
        }
        Ok(())
    }

    /// Execute one statement as the default user.
    pub fn execute(&self, sql: &str) -> DbResult<ResultSet> {
        self.execute_as(sql, &Role::User("user".into()))
    }

    /// Execute one statement with an explicit role.
    ///
    /// SELECT and EXPLAIN run under the shared read lock (concurrently with
    /// other readers); auto-committed DML and DDL take the exclusive write
    /// lock. `BEGIN` opens the ambient transaction: until `COMMIT` or
    /// `ROLLBACK`, statements buffer their writes in a snapshot-isolated
    /// write-set and run under the read lock only.
    pub fn execute_as(&self, sql: &str, role: &Role) -> DbResult<ResultSet> {
        let stmt = parse(sql)?;
        self.dispatch_stmt(stmt, role)
    }

    /// Route one parsed statement: transaction control to the ambient
    /// transaction, statements inside an open ambient transaction to its
    /// write-set, everything else to the auto-commit path.
    pub(crate) fn dispatch_stmt(&self, stmt: Stmt, role: &Role) -> DbResult<ResultSet> {
        match stmt {
            Stmt::Begin => {
                let mut ambient = self.ambient.lock();
                if ambient.is_some() {
                    return Err(DbError::Txn("nested transactions are not supported".into()));
                }
                *ambient = Some(self.txn_begin());
                Ok(ResultSet::empty())
            }
            Stmt::Commit => {
                let id = self
                    .ambient
                    .lock()
                    .take()
                    .ok_or_else(|| DbError::Txn("COMMIT without BEGIN".into()))?;
                self.txn_commit(id)?;
                Ok(ResultSet::empty())
            }
            Stmt::Rollback => {
                let id = self
                    .ambient
                    .lock()
                    .take()
                    .ok_or_else(|| DbError::Txn("ROLLBACK without BEGIN".into()))?;
                self.txn_rollback(id)?;
                Ok(ResultSet::empty())
            }
            other => {
                let ambient = *self.ambient.lock();
                if let Some(id) = ambient {
                    return self.txn_dispatch(id, other, role);
                }
                if matches!(other, Stmt::Select(_) | Stmt::Explain { .. }) {
                    let inner = self.inner.read();
                    inner.run_read(other, role)
                } else {
                    let mut inner = self.inner.write();
                    inner.track_versions = self.txns.active() > 0;
                    let result = inner.run_stmt(other, role);
                    inner.seal_statement();
                    let actives = self.txns.active_snapshots();
                    let current = inner.committed_ts;
                    let pruned = inner.gc_versions(&actives, current);
                    self.txns.versions_pruned.fetch_add(pruned, Ordering::Relaxed);
                    result
                }
            }
        }
    }

    /// Parse and plan a SELECT once for repeated execution. The prepared
    /// plan pins the current catalog generation; DDL invalidates it.
    pub fn prepare(&self, sql: &str) -> DbResult<Prepared> {
        self.prepare_as(sql, &Role::User("user".into()))
    }

    /// [`Database::prepare`] with an explicit role (the role determines the
    /// default space used to resolve unqualified table names).
    pub fn prepare_as(&self, sql: &str, role: &Role) -> DbResult<Prepared> {
        let stmt = parse(sql)?;
        let Stmt::Select(s) = stmt else {
            return Err(DbError::Unsupported("only SELECT can be prepared".into()));
        };
        let inner = self.inner.read();
        let (plan, columns) = plan_select(&*inner, role.default_space(), &s)?;
        let table_ids = plan.table_ids();
        let plan_hash = {
            use std::hash::{Hash, Hasher};
            let mut h = crate::fxhash::FxHasher::default();
            plan.shape().hash(&mut h);
            h.finish()
        };
        let est_rows = crate::plan::planner::estimate_rows(&plan, &*inner).round().max(0.0) as u64;
        let stats_gen = inner.stats_rebuilt.load(Ordering::Relaxed);
        Ok(Prepared {
            plan,
            columns,
            table_ids,
            catalog_gen: inner.catalog_gen,
            plan_hash,
            est_rows,
            stats_gen,
        })
    }

    /// Execute a previously prepared SELECT under the shared read lock.
    ///
    /// Fails with [`DbError::Stale`] if DDL has moved the catalog generation
    /// since [`Database::prepare`]; callers should re-prepare.
    pub fn execute_prepared(&self, prepared: &Prepared) -> DbResult<ResultSet> {
        let inner = self.inner.read();
        if inner.catalog_gen != prepared.catalog_gen {
            return Err(DbError::Stale(format!(
                "prepared against catalog generation {}, now at {}",
                prepared.catalog_gen, inner.catalog_gen
            )));
        }
        let rows = execute_plan(&*inner, &inner.funcs, &prepared.plan, inner.parallelism)?;
        Ok(ResultSet { columns: prepared.columns.clone(), rows, affected: 0, explain: None })
    }

    /// Current catalog generation (bumped by every DDL statement).
    pub fn catalog_generation(&self) -> u64 {
        self.inner.read().catalog_gen
    }

    /// Version counters for the given tables, in input order. A table that
    /// has never been written (or does not exist) reports 0. Comparing a
    /// snapshot of these against a later call tells a cache whether any of
    /// the underlying tables changed.
    pub fn table_versions(&self, table_ids: &[u32]) -> Vec<u64> {
        let inner = self.inner.read();
        table_ids.iter().map(|id| inner.table_gens.get(id).copied().unwrap_or(0)).collect()
    }

    /// Set the per-query worker thread count (clamped to at least 1).
    /// 1 disables all intra-query parallelism.
    pub fn set_parallelism(&self, n: usize) {
        self.inner.write().parallelism = n.max(1);
    }

    /// Current per-query worker thread count.
    pub fn parallelism(&self) -> usize {
        self.inner.read().parallelism
    }

    /// Total heap pages read by sequential scans since open. The delta
    /// across a query shows how much of the heap it actually touched
    /// (e.g. a short-circuiting LIMIT reads far fewer than a full scan).
    pub fn scan_pages_read(&self) -> u64 {
        self.inner.read().scan_pages.load(Ordering::Relaxed)
    }

    /// Total heap pages zone maps refuted (skipped without reading) since
    /// open. The pruning counterpart of [`Database::scan_pages_read`].
    pub fn scan_pages_skipped(&self) -> u64 {
        self.inner.read().scan_pages_skipped.load(Ordering::Relaxed)
    }

    /// Statistics rebuilds triggered by delete-heavy churn since open.
    pub fn stats_rebuilt(&self) -> u64 {
        self.inner.read().stats_rebuilt.load(Ordering::Relaxed)
    }

    /// Debug/test hook: check every maintained page zone of `table`
    /// against a fresh rebuild from the heap. Returns `false` on the
    /// first divergence — maintained zones are required to be *exact*
    /// (not merely conservative), which is what makes pruning decisions
    /// reproducible across WAL replay.
    pub fn verify_zone_maps(&self, table: &str) -> DbResult<bool> {
        let inner = self.inner.read();
        let id = inner.catalog.find_table(table)?.id;
        let storage = inner
            .tables
            .get(&id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        for page_no in 0..storage.heap.num_pages() {
            let mut rows: Vec<Row> = Vec::new();
            storage.heap.page_visit_rows(page_no, &mut |bytes| {
                rows.push(decode_row(bytes)?);
                Ok(())
            })?;
            let fresh = PageZone::rebuild(rows.iter());
            let ok = match storage.zones.page(page_no) {
                Some(zone) => *zone == fresh,
                // No zone recorded is fine only while no row starts here.
                None => fresh.rows == 0,
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Debug/test hook: a fingerprint of `table`'s catalog statistics
    /// (sketches, samples, null counts, churn counters). Two databases
    /// that applied the same logical history — e.g. a clean run and a
    /// crash-recovered replay — must agree.
    pub fn stats_fingerprint(&self, table: &str) -> DbResult<u64> {
        let inner = self.inner.read();
        let id = inner.catalog.find_table(table)?.id;
        Ok(inner.catalog.stats_fingerprint(id))
    }

    /// Execute a SELECT while attributing per-operator runtime counters —
    /// the programmatic face of `EXPLAIN ANALYZE`, returning the result
    /// rows *and* the annotated stats tree. The qdiff harness uses this to
    /// cross-check `rows_out` and `pages_read` against the actual results.
    pub fn explain_analyze(&self, sql: &str) -> DbResult<(ResultSet, OpStatsSnapshot)> {
        self.explain_analyze_as(sql, &Role::User("user".into()))
    }

    /// [`Database::explain_analyze`] with an explicit role.
    pub fn explain_analyze_as(
        &self,
        sql: &str,
        role: &Role,
    ) -> DbResult<(ResultSet, OpStatsSnapshot)> {
        let Stmt::Select(s) = parse(sql)? else {
            return Err(DbError::Unsupported("explain_analyze takes a SELECT".into()));
        };
        let inner = self.inner.read();
        let (plan, columns) = plan_select(&*inner, role.default_space(), &s)?;
        let (rows, stats) =
            execute_plan_with_stats(&*inner, &inner.funcs, &plan, inner.parallelism)?;
        Ok((ResultSet { columns, rows, affected: 0, explain: None }, stats))
    }

    /// Plan a SELECT and return `(estimated_rows, upper_bound_rows)`
    /// without executing it. The estimate uses the planner's
    /// histogram-backed selectivity model; the bound is a hard ceiling
    /// on what executing the same plan against the current committed
    /// state can emit, so `observed <= bound` is a checkable invariant
    /// (qdiff's estimate-vs-observed cross-check relies on it).
    pub fn plan_estimate(&self, sql: &str) -> DbResult<(f64, f64)> {
        let Stmt::Select(s) = parse(sql)? else {
            return Err(DbError::Unsupported("plan_estimate takes a SELECT".into()));
        };
        let inner = self.inner.read();
        let role = Role::User("user".into());
        let (plan, _) = plan_select(&*inner, role.default_space(), &s)?;
        let est = crate::plan::planner::estimate_rows(&plan, &*inner);
        let bound = crate::plan::planner::upper_bound_rows(&plan, &*inner);
        Ok((est, bound))
    }

    /// Write-ahead-log counters since open; all zero for an in-memory
    /// database (which has no WAL).
    pub fn wal_stats(&self) -> WalStats {
        let inner = self.inner.read();
        inner.wal.as_ref().map_or_else(WalStats::default, |w| WalStats {
            appends: w.records_written(),
            syncs: w.syncs(),
            sync_failures: w.sync_failures(),
        })
    }

    /// Aggregated buffer-pool counters `(hits, misses, evictions)` across
    /// every table's pool.
    pub fn pool_stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.read();
        let mut total = (0, 0, 0);
        for t in inner.tables.values() {
            let (h, m, e) = t.heap.pool_stats();
            total.0 += h;
            total.1 += m;
            total.2 += e;
        }
        total
    }

    /// Execute a semicolon-separated script, returning each statement's result.
    pub fn execute_script(&self, sql: &str) -> DbResult<Vec<ResultSet>> {
        self.execute_script_as(sql, &Role::User("user".into()))
    }

    /// Execute a script with an explicit role. Each statement dispatches
    /// independently, so scripts can open and commit transactions.
    pub fn execute_script_as(&self, sql: &str, role: &Role) -> DbResult<Vec<ResultSet>> {
        let stmts = parse_many(sql)?;
        stmts.into_iter().map(|s| self.dispatch_stmt(s, role)).collect()
    }

    /// Register an opaque UDT (§6.2); returns its type id.
    pub fn register_opaque_type(
        &self,
        name: &str,
        display: Option<crate::catalog::DisplayHook>,
    ) -> DbResult<u32> {
        let mut inner = self.inner.write();
        inner.bump_catalog();
        inner.catalog.register_opaque_type(name, display)
    }

    /// Register an external scalar function (§6.3).
    pub fn register_scalar(&self, name: &str, f: ScalarFn) -> DbResult<()> {
        self.inner.write().funcs.register_scalar(name, f)
    }

    /// Register a user-defined aggregate (C14).
    pub fn register_aggregate(&self, name: &str, f: AggregateFn) -> DbResult<()> {
        self.inner.write().funcs.register_aggregate(name, f)
    }

    /// Attach a user-defined index access method to `table.column` (§6.5),
    /// backfilling it from existing rows.
    pub fn register_access_method(
        &self,
        table: &str,
        column: &str,
        mut method: Box<dyn AccessMethod>,
    ) -> DbResult<()> {
        let mut inner = self.inner.write();
        let def = inner.catalog.find_table(table)?;
        let table_id = def.id;
        let col_idx = def
            .column_index(column)
            .ok_or(DbError::NotFound { kind: "column", name: column.into() })?;
        let column = column.to_ascii_lowercase();
        let storage = inner
            .tables
            .get_mut(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        for (rid, bytes) in storage.heap.scan()? {
            let row = decode_row(&bytes)?;
            method.on_insert(rid, &row[col_idx]);
        }
        storage.udis.insert(column, method);
        Ok(())
    }

    /// Render a result set as an aligned text table, using registered
    /// opaque-type display hooks.
    pub fn render(&self, rs: &ResultSet) -> String {
        let inner = self.inner.read();
        let mut cells: Vec<Vec<String>> = vec![rs.columns.clone()];
        for row in &rs.rows {
            cells.push(
                row.iter()
                    .map(|d| match d {
                        Datum::Opaque(ty, bytes) => inner
                            .catalog
                            .opaque_type_by_id(*ty)
                            .and_then(|t| t.display.as_ref().map(|f| f(bytes)))
                            .unwrap_or_else(|| d.to_string()),
                        other => other.to_string(),
                    })
                    .collect(),
            );
        }
        let width = rs.columns.len();
        let mut widths = vec![0usize; width];
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        for (ri, row) in cells.iter().enumerate() {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(c);
                out.extend(std::iter::repeat_n(' ', widths[i].saturating_sub(c.chars().count())));
            }
            out.push('\n');
            if ri == 0 {
                out.push_str(
                    &"-".repeat(widths.iter().sum::<usize>() + 3 * width.saturating_sub(1)),
                );
                out.push('\n');
            }
        }
        out
    }

    /// Qualified names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().catalog.tables().iter().map(|t| t.qualified_name()).collect()
    }

    /// Live row count of a table.
    pub fn row_count(&self, table: &str) -> DbResult<u64> {
        let inner = self.inner.read();
        let def = inner.catalog.find_table(table)?;
        Ok(inner.tables.get(&def.id).map_or(0, |t| t.heap.len()))
    }
}

// ---------------------------------------------------------------------------
// Inner: statement execution
// ---------------------------------------------------------------------------

impl Inner {
    /// Read-only statements (SELECT / EXPLAIN). Takes `&self` so callers can
    /// run it under the shared read lock, concurrently with other readers.
    fn run_read(&self, stmt: Stmt, role: &Role) -> DbResult<ResultSet> {
        match stmt {
            Stmt::Select(s) => {
                let plan_span = genalg_obs::tracer().span("unidb.plan");
                let (plan, columns) = plan_select(self, role.default_space(), &s)?;
                drop(plan_span);
                let rows = execute_plan(self, &self.funcs, &plan, self.parallelism)?;
                Ok(ResultSet { columns, rows, affected: 0, explain: None })
            }
            Stmt::Explain { stmt: inner_stmt, analyze } => match *inner_stmt {
                Stmt::Select(s) => {
                    let (plan, _) = plan_select(self, role.default_space(), &s)?;
                    if analyze {
                        // ANALYZE executes the query (discarding rows) and
                        // renders the plan annotated with live counters.
                        let (_, stats) =
                            execute_plan_with_stats(self, &self.funcs, &plan, self.parallelism)?;
                        Ok(ResultSet { explain: Some(stats.render()), ..ResultSet::empty() })
                    } else {
                        Ok(ResultSet { explain: Some(plan.explain()), ..ResultSet::empty() })
                    }
                }
                _ if analyze => {
                    Err(DbError::Unsupported("EXPLAIN ANALYZE supports only SELECT".into()))
                }
                other => {
                    Ok(ResultSet { explain: Some(format!("{other:?}")), ..ResultSet::empty() })
                }
            },
            _ => Err(DbError::Internal("run_read called on a write statement".into())),
        }
    }

    fn run_stmt(&mut self, stmt: Stmt, role: &Role) -> DbResult<ResultSet> {
        match stmt {
            Stmt::Select(_) | Stmt::Explain { .. } => self.run_read(stmt, role),
            Stmt::CreateTable { table, columns } => self.create_table(&table, &columns, role),
            Stmt::DropTable { table } => self.drop_table(&table, role),
            Stmt::CreateIndex { table, column, unique } => {
                self.create_index(&table, &column, unique, role)
            }
            Stmt::CreateSpace { name } => {
                let owner = match role {
                    Role::Maintainer => "maintainer".to_string(),
                    Role::User(u) => u.clone(),
                };
                self.catalog.create_space(&name, &owner)?;
                self.bump_catalog();
                self.log(WalRecord::CreateSpace { name, owner })?;
                self.maybe_sync()?;
                Ok(ResultSet::empty())
            }
            Stmt::Insert { table, columns, rows } => self.insert(&table, columns, rows, role),
            Stmt::Update { table, assignments, filter } => {
                self.update(&table, assignments, filter, role)
            }
            Stmt::Delete { table, filter } => self.delete(&table, filter, role),
            // Transaction control never reaches the auto-commit executor:
            // `Database::dispatch_stmt` routes it to the ambient transaction.
            Stmt::Begin | Stmt::Commit | Stmt::Rollback => Err(DbError::Internal(
                "transaction control must go through Database::execute".into(),
            )),
        }
    }

    // -- version counters ----------------------------------------------------

    /// Commit timestamp the statement or transaction currently applying
    /// its writes will commit under (0 during replay, where every row is
    /// ancient by definition).
    fn pending_ts(&self) -> u64 {
        if self.replaying {
            0
        } else {
            self.committed_ts + 1
        }
    }

    /// Record that `table_id`'s contents changed, stamping the table with
    /// the pending commit timestamp. Monotonic; an extra bump only costs
    /// caches a spurious miss, never a stale hit.
    fn bump_table(&mut self, table_id: u32) {
        let ts = self.pending_ts();
        let gen = self.table_gens.entry(table_id).or_insert(0);
        *gen = (*gen).max(ts);
        self.pending_dirty = true;
    }

    /// Advance the commit timestamp if the finished statement mutated any
    /// row. Called once per auto-commit statement; explicit transactions
    /// advance it in their commit path instead.
    pub(crate) fn seal_statement(&mut self) {
        if self.pending_dirty {
            self.committed_ts += 1;
            self.pending_dirty = false;
        }
    }

    /// Drop version bookkeeping no active snapshot can still see,
    /// returning how many prior images were pruned. `actives` is the
    /// sorted snapshot list of open transactions; a prior image is kept
    /// iff some active snapshot falls inside its `[born, died)`
    /// visibility window. No *future* snapshot can need a pruned version
    /// either: new snapshots pin `committed_ts`, and every `died` stamp
    /// is at or below it.
    ///
    /// Testing each version against the window — rather than against a
    /// single low-water mark — is what keeps chains bounded under a
    /// long-lived reader: churn versions born *after* the oldest snapshot
    /// are invisible to it and get pruned, where `died > min` would have
    /// retained them for the snapshot's whole lifetime.
    pub(crate) fn gc_versions(&mut self, actives: &[u64], current: u64) -> u64 {
        let min = actives.first().copied().unwrap_or(current);
        let mut pruned = 0u64;
        for t in self.tables.values_mut() {
            if !t.old_versions.is_empty() {
                let before = t.old_versions.len();
                t.old_versions.retain(|v| {
                    let i = actives.partition_point(|&s| s < v.born);
                    actives.get(i).is_some_and(|&s| s < v.died)
                });
                pruned += (before - t.old_versions.len()) as u64;
            }
            if !t.born.is_empty() {
                t.born.retain(|_, ts| *ts > min);
            }
        }
        pruned
    }

    /// Record that the catalog changed (tables, indexes, spaces, types).
    fn bump_catalog(&mut self) {
        self.catalog_gen += 1;
    }

    // -- DDL -----------------------------------------------------------------

    fn create_table(
        &mut self,
        table: &str,
        columns: &[(String, String, bool)],
        role: &Role,
    ) -> DbResult<ResultSet> {
        let (space, name) = self.split_table_name(table, role);
        if let Role::User(u) = role {
            self.catalog.ensure_user_space(u);
        }
        if !self.catalog.can_write(role, &space) {
            return Err(DbError::AccessDenied(format!("cannot create tables in space {space:?}")));
        }
        let mut defs = Vec::with_capacity(columns.len());
        for (cname, tyname, nullable) in columns {
            defs.push(ColumnDef {
                name: cname.to_ascii_lowercase(),
                ty: self.catalog.parse_type(tyname)?,
                nullable: *nullable,
            });
        }
        let id = self.catalog.create_table(&space, &name, defs.clone())?.id;
        self.tables.insert(id, TableStorage::new(self.buffer_capacity));
        self.bump_catalog();
        self.log(WalRecord::CreateTable {
            space: space.clone(),
            name: name.clone(),
            columns: defs.into_iter().map(|c| (c.name, c.ty, c.nullable)).collect(),
        })?;
        self.maybe_sync()?;
        Ok(ResultSet::empty())
    }

    fn drop_table(&mut self, table: &str, role: &Role) -> DbResult<ResultSet> {
        let def = self.catalog.resolve_table(role.default_space(), table)?;
        let (space, name, id) = (def.space.clone(), def.name.clone(), def.id);
        if !self.catalog.can_write(role, &space) {
            return Err(DbError::AccessDenied(format!("cannot drop tables in space {space:?}")));
        }
        self.catalog.drop_table(&space, &name)?;
        self.tables.remove(&id);
        self.table_gens.remove(&id);
        self.bump_catalog();
        self.log(WalRecord::DropTable { space, name })?;
        self.maybe_sync()?;
        Ok(ResultSet::empty())
    }

    fn create_index(
        &mut self,
        table: &str,
        column: &str,
        unique: bool,
        role: &Role,
    ) -> DbResult<ResultSet> {
        let def = self.catalog.resolve_table(role.default_space(), table)?;
        let table_id = def.id;
        let qualified = def.qualified_name();
        if !self.catalog.can_write(role, &def.space.clone()) {
            return Err(DbError::AccessDenied(format!("cannot index tables in {qualified:?}")));
        }
        let col_idx = def
            .column_index(column)
            .ok_or(DbError::NotFound { kind: "column", name: column.into() })?;
        let column = column.to_ascii_lowercase();
        let storage = self
            .tables
            .get_mut(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        if storage.btrees.contains_key(&column) {
            return Err(DbError::AlreadyExists { kind: "index", name: column });
        }
        let mut index = BTreeIndex::new(unique);
        for (rid, bytes) in storage.heap.scan()? {
            let row = decode_row(&bytes)?;
            index.insert(row[col_idx].clone(), rid)?;
        }
        storage.btrees.insert(column.clone(), index);
        self.bump_catalog();
        self.log(WalRecord::CreateIndex { table: qualified, column, unique })?;
        self.maybe_sync()?;
        Ok(ResultSet::empty())
    }

    // -- DML -----------------------------------------------------------------

    fn insert(
        &mut self,
        table: &str,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
        role: &Role,
    ) -> DbResult<ResultSet> {
        let def = self.catalog.resolve_table(role.default_space(), table)?.clone();
        if !self.catalog.can_write(role, &def.space) {
            return Err(DbError::AccessDenied(format!(
                "space {:?} is read-only for this role",
                def.space
            )));
        }
        // Map the provided columns to table positions.
        let positions: Vec<usize> = match &columns {
            None => (0..def.columns.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| {
                    def.column_index(c).ok_or(DbError::NotFound { kind: "column", name: c.clone() })
                })
                .collect::<DbResult<_>>()?,
        };
        let funcs = self.funcs.clone();
        let mut n = 0u64;
        for value_exprs in rows {
            if value_exprs.len() != positions.len() {
                return Err(DbError::Constraint(format!(
                    "INSERT supplies {} values for {} columns",
                    value_exprs.len(),
                    positions.len()
                )));
            }
            let mut row: Row = vec![Datum::Null; def.columns.len()];
            let ctx = EvalContext { bindings: &[], row: &[], funcs: &funcs };
            for (expr, &pos) in value_exprs.iter().zip(&positions) {
                row[pos] = eval(expr, &ctx)?;
            }
            let row = check_row(&def, row)?;
            self.insert_row(def.id, row)?;
            n += 1;
        }
        self.maybe_sync()?;
        Ok(ResultSet::affected(n))
    }

    fn update(
        &mut self,
        table: &str,
        assignments: Vec<(String, Expr)>,
        filter: Option<Expr>,
        role: &Role,
    ) -> DbResult<ResultSet> {
        let def = self.catalog.resolve_table(role.default_space(), table)?.clone();
        if !self.catalog.can_write(role, &def.space) {
            return Err(DbError::AccessDenied(format!(
                "space {:?} is read-only for this role",
                def.space
            )));
        }
        let targets: Vec<(usize, Expr)> = assignments
            .into_iter()
            .map(|(c, e)| {
                def.column_index(&c)
                    .map(|i| (i, e))
                    .ok_or(DbError::NotFound { kind: "column", name: c })
            })
            .collect::<DbResult<_>>()?;
        let bindings: Vec<ColumnBinding> =
            def.columns.iter().map(|c| ColumnBinding::new(&def.name, &c.name)).collect();
        let funcs = self.funcs.clone();
        let matching = self.matching_rows(&def, &bindings, filter.as_ref(), &funcs)?;
        let mut n = 0u64;
        for (rid, row) in matching {
            let ctx = EvalContext { bindings: &bindings, row: &row, funcs: &funcs };
            let mut new_row = row.clone();
            for (pos, expr) in &targets {
                new_row[*pos] = eval(expr, &ctx)?;
            }
            let new_row = check_row(&def, new_row)?;
            self.update_row(def.id, rid, &row, new_row)?;
            n += 1;
        }
        self.maybe_sync()?;
        Ok(ResultSet::affected(n))
    }

    fn delete(&mut self, table: &str, filter: Option<Expr>, role: &Role) -> DbResult<ResultSet> {
        let def = self.catalog.resolve_table(role.default_space(), table)?.clone();
        if !self.catalog.can_write(role, &def.space) {
            return Err(DbError::AccessDenied(format!(
                "space {:?} is read-only for this role",
                def.space
            )));
        }
        let bindings: Vec<ColumnBinding> =
            def.columns.iter().map(|c| ColumnBinding::new(&def.name, &c.name)).collect();
        let funcs = self.funcs.clone();
        let matching = self.matching_rows(&def, &bindings, filter.as_ref(), &funcs)?;
        let mut n = 0u64;
        for (rid, row) in matching {
            self.delete_row(def.id, rid, &row)?;
            n += 1;
        }
        self.maybe_sync()?;
        Ok(ResultSet::affected(n))
    }

    fn matching_rows(
        &mut self,
        def: &TableDef,
        bindings: &[ColumnBinding],
        filter: Option<&Expr>,
        funcs: &FunctionRegistry,
    ) -> DbResult<Vec<(Rid, Row)>> {
        let compiled = filter.map(|pred| compile(pred, bindings, funcs)).transpose()?;
        let storage = self
            .tables
            .get_mut(&def.id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        let mut out = Vec::new();
        for (rid, bytes) in storage.heap.scan()? {
            let row = decode_row(&bytes)?;
            let keep = match &compiled {
                None => true,
                Some(pred) => pred.accepts(&row)?,
            };
            if keep {
                out.push((rid, row));
            }
        }
        Ok(out)
    }

    // -- row-level mutation with index + WAL maintenance -----------------------

    pub(crate) fn insert_row(&mut self, table_id: u32, row: Row) -> DbResult<Rid> {
        let ts = self.pending_ts();
        let track = self.track_versions && !self.replaying;
        let def = self
            .catalog
            .table_by_id(table_id)
            .ok_or_else(|| DbError::Internal("unknown table id".into()))?
            .clone();
        let storage = self
            .tables
            .get_mut(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        // Unique checks first so a violation cannot leave partial state.
        for (col, idx) in &storage.btrees {
            if idx.is_unique() {
                let pos = def.column_index(col).expect("index column exists");
                if !idx.get(&row[pos]).is_empty() {
                    return Err(DbError::Constraint(format!(
                        "duplicate key {} for unique index on {col}",
                        row[pos]
                    )));
                }
            }
        }
        let rid = storage.heap.insert(&encode_row(&row))?;
        // Widen the target page's zone map and evict any stale columnar
        // image. Runs during WAL replay too, so recovery rebuilds zones
        // from the replayed inserts.
        storage.zones.observe_insert(rid.page, &row);
        storage.col_cache.get_mut().remove(&rid.page);
        // Feed the per-column statistics (NDV sketches, null counts,
        // histogram samples). Runs during WAL replay too — the catalog
        // (and its statistics) is in-memory, so recovery rebuilds them
        // from the replayed inserts.
        self.catalog.observe_row(table_id, &row);
        if track {
            storage.born.insert(rid, ts);
        }
        for (col, idx) in storage.btrees.iter_mut() {
            let pos = def.column_index(col).expect("index column exists");
            idx.insert(row[pos].clone(), rid)?;
        }
        for (col, udi) in storage.udis.iter_mut() {
            let pos = def.column_index(col).expect("indexed column exists");
            udi.on_insert(rid, &row[pos]);
        }
        self.bump_table(table_id);
        self.log(WalRecord::Insert { table: def.qualified_name(), row })?;
        Ok(rid)
    }

    pub(crate) fn delete_row(&mut self, table_id: u32, rid: Rid, row: &Row) -> DbResult<()> {
        let ts = self.pending_ts();
        let track = self.track_versions && !self.replaying;
        let def = self
            .catalog
            .table_by_id(table_id)
            .ok_or_else(|| DbError::Internal("unknown table id".into()))?
            .clone();
        let storage = self
            .tables
            .get_mut(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        storage.heap.delete(rid)?;
        if track {
            let born = storage.born.remove(&rid).unwrap_or(0);
            storage.old_versions.push(OldVersion { rid, row: row.clone(), born, died: ts });
        } else {
            storage.born.remove(&rid);
        }
        for (col, idx) in storage.btrees.iter_mut() {
            let pos = def.column_index(col).expect("index column exists");
            idx.remove(&row[pos], rid);
        }
        for (col, udi) in storage.udis.iter_mut() {
            let pos = def.column_index(col).expect("indexed column exists");
            udi.on_delete(rid, &row[pos]);
        }
        rebuild_page_zone(storage, rid.page)?;
        self.bump_table(table_id);
        // Delete-heavy churn decays the table's statistics (the sketches
        // and samples only ever accumulate); past a threshold, rebuild
        // them from the live rows. Runs during WAL replay too, so a
        // recovered database lands on the same statistics.
        if self.catalog.observe_delete(table_id) {
            self.rebuild_table_stats(table_id)?;
        }
        self.log(WalRecord::Delete { table: def.qualified_name(), row: row.clone() })?;
        Ok(())
    }

    pub(crate) fn update_row(
        &mut self,
        table_id: u32,
        rid: Rid,
        old_row: &Row,
        new_row: Row,
    ) -> DbResult<Rid> {
        let ts = self.pending_ts();
        let track = self.track_versions && !self.replaying;
        let def = self
            .catalog
            .table_by_id(table_id)
            .ok_or_else(|| DbError::Internal("unknown table id".into()))?
            .clone();
        let storage = self
            .tables
            .get_mut(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        // Unique checks on changed keys.
        for (col, idx) in &storage.btrees {
            if idx.is_unique() {
                let pos = def.column_index(col).expect("index column exists");
                if old_row[pos] != new_row[pos] && !idx.get(&new_row[pos]).is_empty() {
                    return Err(DbError::Constraint(format!(
                        "duplicate key {} for unique index on {col}",
                        new_row[pos]
                    )));
                }
            }
        }
        let new_rid = storage.heap.update(rid, &encode_row(&new_row))?;
        self.catalog.observe_row(table_id, &new_row);
        if track {
            let born = storage.born.remove(&rid).unwrap_or(0);
            storage.old_versions.push(OldVersion { rid, row: old_row.clone(), born, died: ts });
            storage.born.insert(new_rid, ts);
        } else if rid != new_rid {
            storage.born.remove(&rid);
        }
        for (col, idx) in storage.btrees.iter_mut() {
            let pos = def.column_index(col).expect("index column exists");
            idx.remove(&old_row[pos], rid);
            idx.insert(new_row[pos].clone(), new_rid)?;
        }
        for (col, udi) in storage.udis.iter_mut() {
            let pos = def.column_index(col).expect("indexed column exists");
            udi.on_delete(rid, &old_row[pos]);
            udi.on_insert(new_rid, &new_row[pos]);
        }
        rebuild_page_zone(storage, rid.page)?;
        if new_rid.page != rid.page {
            rebuild_page_zone(storage, new_rid.page)?;
        }
        self.bump_table(table_id);
        self.log(WalRecord::Update {
            table: def.qualified_name(),
            old_row: old_row.clone(),
            new_row,
        })?;
        Ok(new_rid)
    }

    pub(crate) fn fetch_row(&mut self, table_id: u32, rid: Rid) -> DbResult<Option<Row>> {
        let storage = self
            .tables
            .get_mut(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        match storage.heap.get(rid)? {
            Some(bytes) => Ok(Some(decode_row(&bytes)?)),
            None => Ok(None),
        }
    }

    // -- WAL ---------------------------------------------------------------------

    pub(crate) fn log(&mut self, rec: WalRecord) -> DbResult<()> {
        if self.replaying {
            return Ok(());
        }
        if let Some(wal) = self.wal.as_mut() {
            wal.append(&rec);
        }
        Ok(())
    }

    /// Sync the WAL at an auto-commit statement boundary. Explicit
    /// transactions never reach this: their writes buffer in the write-set
    /// and hit the WAL (framed, with one sync) at commit.
    fn maybe_sync(&mut self) -> DbResult<()> {
        if let Some(wal) = self.wal.as_mut() {
            wal.sync()?;
        }
        Ok(())
    }

    /// Replay a record stream with transaction framing: records between
    /// [`WalRecord::TxnBegin`] and [`WalRecord::TxnCommit`] are buffered
    /// and applied atomically at the commit; a stream ending inside an
    /// uncommitted transaction drops it (crash mid-transaction).
    fn replay_records(&mut self, records: Vec<WalRecord>) -> DbResult<()> {
        let mut open_txn: Option<Vec<WalRecord>> = None;
        for rec in records {
            match rec {
                WalRecord::TxnBegin => {
                    // A dangling earlier transaction (no commit record)
                    // cannot precede later records in a well-formed log,
                    // but drop it defensively rather than merge.
                    open_txn = Some(Vec::new());
                }
                WalRecord::TxnCommit => {
                    if let Some(buffered) = open_txn.take() {
                        for r in buffered {
                            self.apply_wal_record(r)?;
                        }
                    }
                }
                other => match open_txn.as_mut() {
                    Some(buffered) => buffered.push(other),
                    None => self.apply_wal_record(other)?,
                },
            }
        }
        // `open_txn` still Some here means the log ended mid-transaction:
        // the records stay unapplied, i.e. uncommitted work is invisible.
        Ok(())
    }

    fn apply_wal_record(&mut self, rec: WalRecord) -> DbResult<()> {
        match rec {
            WalRecord::CreateSpace { name, owner } => {
                self.catalog.create_space(&name, &owner)?;
                self.bump_catalog();
                Ok(())
            }
            WalRecord::CreateTable { space, name, columns } => {
                let defs = columns
                    .into_iter()
                    .map(|(n, ty, nullable)| ColumnDef { name: n, ty, nullable })
                    .collect();
                let id = self.catalog.create_table(&space, &name, defs)?.id;
                self.tables.insert(id, TableStorage::new(self.buffer_capacity));
                self.bump_catalog();
                Ok(())
            }
            WalRecord::DropTable { space, name } => {
                let def = self.catalog.drop_table(&space, &name)?;
                self.tables.remove(&def.id);
                self.table_gens.remove(&def.id);
                self.bump_catalog();
                Ok(())
            }
            WalRecord::CreateIndex { table, column, unique } => {
                self.create_index(&table, &column, unique, &Role::Maintainer).map(|_| ())
            }
            WalRecord::Insert { table, row } => {
                let id = self.catalog.resolve_table("public", &table)?.id;
                self.insert_row(id, row).map(|_| ())
            }
            WalRecord::Delete { table, row } => {
                let id = self.catalog.resolve_table("public", &table)?.id;
                let rid = self.find_row(id, &row)?;
                if let Some(rid) = rid {
                    self.delete_row(id, rid, &row)?;
                }
                Ok(())
            }
            WalRecord::Update { table, old_row, new_row } => {
                let id = self.catalog.resolve_table("public", &table)?.id;
                if let Some(rid) = self.find_row(id, &old_row)? {
                    self.update_row(id, rid, &old_row, new_row)?;
                }
                Ok(())
            }
            WalRecord::Checkpoint | WalRecord::Epoch(_) => Ok(()),
            // Framing records are consumed by `replay_records`; reaching
            // here (e.g. via a raw record stream) they are no-ops.
            WalRecord::TxnBegin | WalRecord::TxnCommit => Ok(()),
        }
    }

    fn find_row(&mut self, table_id: u32, row: &Row) -> DbResult<Option<Rid>> {
        let storage = self
            .tables
            .get_mut(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        for (rid, bytes) in storage.heap.scan()? {
            if decode_row(&bytes)? == *row {
                return Ok(Some(rid));
            }
        }
        Ok(None)
    }

    fn snapshot_records(&mut self) -> DbResult<Vec<WalRecord>> {
        let mut recs = Vec::new();
        // Spaces (public pre-exists).
        let catalog = &self.catalog;
        let tables: Vec<TableDef> = catalog.tables().into_iter().cloned().collect();
        let mut spaces_seen = std::collections::HashSet::new();
        for t in &tables {
            if t.space != "public" && spaces_seen.insert(t.space.clone()) {
                let owner = catalog
                    .space(&t.space)
                    .and_then(|s| s.owner.clone())
                    .unwrap_or_else(|| t.space.clone());
                recs.push(WalRecord::CreateSpace { name: t.space.clone(), owner });
            }
        }
        for t in &tables {
            recs.push(WalRecord::CreateTable {
                space: t.space.clone(),
                name: t.name.clone(),
                columns: t.columns.iter().map(|c| (c.name.clone(), c.ty, c.nullable)).collect(),
            });
        }
        for t in &tables {
            let storage = self
                .tables
                .get_mut(&t.id)
                .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
            let btree_meta: Vec<(String, bool)> =
                storage.btrees.iter().map(|(c, i)| (c.clone(), i.is_unique())).collect();
            for (column, unique) in btree_meta {
                recs.push(WalRecord::CreateIndex { table: t.qualified_name(), column, unique });
            }
            for (_, bytes) in storage.heap.scan()? {
                recs.push(WalRecord::Insert {
                    table: t.qualified_name(),
                    row: decode_row(&bytes)?,
                });
            }
        }
        recs.push(WalRecord::Checkpoint);
        Ok(recs)
    }

    fn split_table_name(&self, table: &str, role: &Role) -> (String, String) {
        match table.split_once('.') {
            Some((s, t)) => (s.to_ascii_lowercase(), t.to_ascii_lowercase()),
            None => (role.default_space().to_ascii_lowercase(), table.to_ascii_lowercase()),
        }
    }
}

/// Epoch named by a log's leading [`WalRecord::Epoch`] (0 when absent, for
/// logs predating checkpoint epochs).
fn leading_epoch(records: &[WalRecord]) -> u64 {
    match records.first() {
        Some(WalRecord::Epoch(e)) => *e,
        _ => 0,
    }
}

/// Validate and coerce a row against the table definition.
pub(crate) fn check_row(def: &TableDef, mut row: Row) -> DbResult<Row> {
    for (i, col) in def.columns.iter().enumerate() {
        let d = &row[i];
        if d.is_null() {
            if !col.nullable {
                return Err(DbError::Constraint(format!("column {:?} is NOT NULL", col.name)));
            }
            continue;
        }
        if !d.assignable_to(col.ty) {
            return Err(DbError::TypeMismatch(format!(
                "column {:?} has type {}, value {d} does not fit",
                col.name, col.ty
            )));
        }
        // Widen INT literals stored into FLOAT columns so index keys and
        // comparisons see one representation.
        if col.ty == DataType::Float {
            if let Datum::Int(v) = d {
                row[i] = Datum::Float(*v as f64);
            }
        }
    }
    Ok(row)
}

// ---------------------------------------------------------------------------
// Planner + executor wiring
// ---------------------------------------------------------------------------

impl PlannerContext for Inner {
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn funcs(&self) -> &FunctionRegistry {
        &self.funcs
    }

    fn btree_columns(&self, table_id: u32) -> Vec<(String, usize)> {
        self.tables.get(&table_id).map_or_else(Vec::new, |t| {
            t.btrees.iter().map(|(c, i)| (c.clone(), i.distinct_keys())).collect()
        })
    }

    fn row_count(&self, table_id: u32) -> u64 {
        self.tables.get(&table_id).map_or(0, |t| t.heap.len())
    }

    fn column_ndv(&self, table_id: u32, column: &str) -> Option<u64> {
        let pos = self.catalog.table_by_id(table_id)?.column_index(column)?;
        self.catalog.column_ndv(table_id, pos)
    }

    fn column_histogram(&self, table_id: u32, column: &str) -> Option<EquiDepthHistogram> {
        let pos = self.catalog.table_by_id(table_id)?.column_index(column)?;
        self.catalog.column_histogram(table_id, pos)
    }

    fn column_null_frac(&self, table_id: u32, column: &str) -> Option<f64> {
        let pos = self.catalog.table_by_id(table_id)?.column_index(column)?;
        self.catalog.column_null_frac(table_id, pos)
    }

    fn udi_selectivity(
        &self,
        table_id: u32,
        column: &str,
        func: &str,
        args: &[Datum],
    ) -> Option<f64> {
        let udi = self.tables.get(&table_id)?.udis.get(column)?;
        if !udi.supports(func) {
            return None;
        }
        Some(udi.selectivity(func, args).unwrap_or(0.1))
    }
}

/// Rebuild one page's zone map from the heap and drop its cached
/// columnar image. Called after deletes and updates, whose effect on
/// min/max cannot be applied incrementally.
fn rebuild_page_zone(storage: &mut TableStorage, page_no: u32) -> DbResult<()> {
    let mut rows: Vec<Row> = Vec::new();
    storage.heap.page_visit_rows(page_no, &mut |bytes| {
        rows.push(decode_row(bytes)?);
        Ok(())
    })?;
    storage.zones.set_page(page_no, PageZone::rebuild(rows.iter()));
    storage.col_cache.get_mut().remove(&page_no);
    Ok(())
}

impl Inner {
    /// Discard and recompute `table_id`'s catalog statistics from the
    /// live heap rows, in heap-scan order (deterministic, so WAL replay
    /// reproduces the same sketches/samples).
    fn rebuild_table_stats(&mut self, table_id: u32) -> DbResult<()> {
        let storage = self
            .tables
            .get_mut(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        let mut rows: Vec<Row> = Vec::new();
        for (_, bytes) in storage.heap.scan()? {
            rows.push(decode_row(&bytes)?);
        }
        self.catalog.reset_stats(table_id);
        for row in &rows {
            self.catalog.observe_row(table_id, row);
        }
        self.stats_rebuilt.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The cached (or freshly built) columnar image of a heap page, or
    /// `None` when the page is not a candidate: the append-target tail
    /// page is still changing, and pages with overflow stubs hold rows
    /// the column segments could not represent inline.
    fn column_image(
        &self,
        storage: &TableStorage,
        page_no: u32,
        total: u32,
    ) -> DbResult<Option<Arc<ColumnPage>>> {
        if page_no + 1 >= total {
            return Ok(None);
        }
        if let Some(cp) = storage.col_cache.lock().get(&page_no) {
            return Ok(Some(Arc::clone(cp)));
        }
        if !storage.heap.page_all_inline(page_no)? {
            return Ok(None);
        }
        let mut rows: Vec<Row> = Vec::new();
        storage.heap.page_visit_rows(page_no, &mut |bytes| {
            rows.push(decode_row(bytes)?);
            Ok(())
        })?;
        let Some(cp) = ColumnPage::build(&rows) else { return Ok(None) };
        let cp = Arc::new(cp);
        storage.col_cache.lock().insert(page_no, Arc::clone(&cp));
        Ok(Some(cp))
    }
}

impl StorageAccess for Inner {
    fn scan_batches(
        &self,
        table_id: u32,
        first_page: u32,
        max_pages: u32,
        spec: &ScanSpec,
        on_row: &mut dyn FnMut(&[Datum]) -> DbResult<()>,
    ) -> DbResult<ScanProgress> {
        let storage = self
            .tables
            .get(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        let total = storage.heap.num_pages();
        if first_page >= total {
            return Ok(ScanProgress {
                next_page: None,
                pages_read: 0,
                pages_skipped: 0,
                segments_decoded: 0,
            });
        }
        let end = first_page.saturating_add(max_pages).min(total);
        let (mut skipped, mut segments, mut visited) = (0u32, 0u64, 0u64);
        let mut scratch: Row = Vec::new();
        // The columnar image only beats direct row decode when the mask
        // skips *interior* columns: segment decode then avoids walking the
        // skipped columns' bytes entirely, where the row codec must parse
        // past them. A dense scan (no mask, or every prefix column
        // referenced — trailing columns are free to skip in row form too)
        // decodes rows in place with no intermediate column vectors. The
        // choice is a pure function of the spec, so `segments_decoded`
        // (same formula both paths) stays deterministic.
        let sparse = spec.mask.as_deref().is_some_and(|m| m.iter().any(|b| !*b));
        for page_no in first_page..end {
            // Zone-map pruning. Only reached when the caller supplied
            // bounds, i.e. the whole filter is error-free; an
            // unconditional scan visits every page.
            if !spec.bounds.is_empty() {
                if let Some(zone) = storage.zones.page(page_no) {
                    if zone.refutes(&spec.bounds) {
                        skipped += 1;
                        continue;
                    }
                }
            }
            visited += 1;
            if sparse {
                if let Some(cp) = self.column_image(storage, page_no, total)? {
                    segments +=
                        cp.emit_rows(spec.prefix, spec.mask.as_deref(), &mut *on_row)? as u64;
                    continue;
                }
            }
            // Row path: decode only the referenced columns. The per-page
            // segment count uses the same formula as the columnar path —
            // referenced columns within the page's row arity, counted
            // once per non-empty page — so the counter is identical
            // whichever representation served the page.
            let (mut rows_on_page, mut referenced) = (0u64, 0u64);
            storage.heap.page_visit_rows(page_no, &mut |bytes| {
                decode_row_cols_into(&mut scratch, bytes, spec.prefix, spec.mask.as_deref())?;
                if rows_on_page == 0 {
                    referenced = match spec.mask.as_deref() {
                        Some(m) => m.iter().take(scratch.len()).filter(|b| **b).count() as u64,
                        None => scratch.len() as u64,
                    };
                }
                rows_on_page += 1;
                on_row(&scratch)
            })?;
            if rows_on_page > 0 {
                segments += referenced;
            }
        }
        self.scan_pages.fetch_add(visited, Ordering::Relaxed);
        self.scan_pages_skipped.fetch_add(u64::from(skipped), Ordering::Relaxed);
        Ok(ScanProgress {
            next_page: if end < total { Some(end) } else { None },
            pages_read: end - first_page,
            pages_skipped: skipped,
            segments_decoded: segments,
        })
    }

    fn fetch_rids(&self, table_id: u32, rids: &[Rid]) -> DbResult<Vec<Row>> {
        let storage = self
            .tables
            .get(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        let mut out = Vec::with_capacity(rids.len());
        for &rid in rids {
            if let Some(bytes) = storage.heap.get(rid)? {
                out.push(decode_row(&bytes)?);
            }
        }
        Ok(out)
    }

    fn btree_eq(&self, table_id: u32, column: &str, key: &Datum) -> DbResult<Vec<Rid>> {
        let storage = self
            .tables
            .get(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        let idx = storage
            .btrees
            .get(column)
            .ok_or_else(|| DbError::Internal(format!("no B-tree on {column}")))?;
        Ok(idx.get(key))
    }

    fn btree_range(
        &self,
        table_id: u32,
        column: &str,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
    ) -> DbResult<Vec<Rid>> {
        let storage = self
            .tables
            .get(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        let idx = storage
            .btrees
            .get(column)
            .ok_or_else(|| DbError::Internal(format!("no B-tree on {column}")))?;
        Ok(idx.range(lo, hi).into_iter().map(|(_, rid)| rid).collect())
    }

    fn udi_probe(
        &self,
        table_id: u32,
        column: &str,
        func: &str,
        args: &[Datum],
    ) -> DbResult<Vec<Rid>> {
        let storage = self
            .tables
            .get(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
        let udi = storage
            .udis
            .get(column)
            .ok_or_else(|| DbError::Internal(format!("no access method on {column}")))?;
        udi.probe(func, args)
            .ok_or_else(|| DbError::Internal(format!("{} cannot answer {func}", udi.name())))
    }
}
