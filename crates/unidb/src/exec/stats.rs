//! Per-operator runtime counters for `EXPLAIN ANALYZE`.
//!
//! A stats tree mirrors the [`PhysicalPlan`] shape one node per operator.
//! Counters are `AtomicU64` so morsel workers can attribute work (e.g.
//! pages read) without synchronization beyond the adds themselves; every
//! add is a plain sum, so totals are deterministic regardless of thread
//! interleaving — `rows_out` and `pages_read` are byte-identical at any
//! parallelism for plans that drain their input (the qdiff harness pins
//! this at parallelism 1 vs 4).
//!
//! `time_us` and `batches` are *not* parallelism-stable by design: a
//! serial scan emits one morsel per batch while a parallel scan emits one
//! wave of `par` morsels per batch. [`OpStatsSnapshot::render_counters`]
//! therefore exposes only the stable subset, and the golden tests compare
//! that rendering.

use crate::plan::PhysicalPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live counters for one operator while a plan executes.
#[derive(Debug)]
pub struct OpStats {
    /// The operator's `EXPLAIN` label ([`PhysicalPlan::node_label`]).
    pub label: String,
    /// True for heap-scanning operators (`SeqScan`), whose rendering
    /// includes `pages_read`.
    pub is_scan: bool,
    /// True for radix-partitioned operators (`HashJoin`, `Aggregate`),
    /// whose rendering includes `partitions`.
    pub has_partitions: bool,
    /// True for build/probe operators (`HashJoin`), whose rendering
    /// includes `build_rows`.
    pub has_build: bool,
    /// Rows emitted by this operator.
    pub rows_out: AtomicU64,
    /// Batches emitted.
    pub batches: AtomicU64,
    /// Inclusive wall time spent inside `next_batch` (children included).
    pub time_us: AtomicU64,
    /// Heap pages read (scans only).
    pub pages_read: AtomicU64,
    /// Pages the zone map refuted before reading (scans only). A pure
    /// function of the stored data and the predicate, so it belongs to
    /// the deterministic rendering.
    pub pages_skipped: AtomicU64,
    /// Column segments decoded across visited pages (scans only).
    /// Counted identically on the row and columnar paths — referenced
    /// columns × non-empty pages visited — so it too is
    /// parallelism-stable.
    pub segments_decoded: AtomicU64,
    /// Radix partition count (partitioned operators only). A pure
    /// function of the data — build-side row count for joins, a fixed
    /// fan-out for aggregation — never of the parallelism level, so it
    /// belongs to the deterministic rendering.
    pub partitions: AtomicU64,
    /// Rows materialized on the build side (hash joins only).
    pub build_rows: AtomicU64,
    /// Child operators, in plan order.
    pub children: Vec<Arc<OpStats>>,
}

impl OpStats {
    /// A point-in-time copy of the whole tree.
    pub fn snapshot(&self) -> OpStatsSnapshot {
        OpStatsSnapshot {
            label: self.label.clone(),
            is_scan: self.is_scan,
            has_partitions: self.has_partitions,
            has_build: self.has_build,
            rows_out: self.rows_out.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            time_us: self.time_us.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
            segments_decoded: self.segments_decoded.load(Ordering::Relaxed),
            partitions: self.partitions.load(Ordering::Relaxed),
            build_rows: self.build_rows.load(Ordering::Relaxed),
            children: self.children.iter().map(|c| c.snapshot()).collect(),
        }
    }
}

/// Build the zeroed stats tree mirroring `plan`.
pub fn stats_tree(plan: &PhysicalPlan) -> Arc<OpStats> {
    Arc::new(OpStats {
        label: plan.node_label(),
        is_scan: matches!(plan, PhysicalPlan::SeqScan { .. }),
        has_partitions: matches!(
            plan,
            PhysicalPlan::HashJoin { .. } | PhysicalPlan::Aggregate { .. }
        ),
        has_build: matches!(plan, PhysicalPlan::HashJoin { .. }),
        rows_out: AtomicU64::new(0),
        batches: AtomicU64::new(0),
        time_us: AtomicU64::new(0),
        pages_read: AtomicU64::new(0),
        pages_skipped: AtomicU64::new(0),
        segments_decoded: AtomicU64::new(0),
        partitions: AtomicU64::new(0),
        build_rows: AtomicU64::new(0),
        children: plan.children().into_iter().map(stats_tree).collect(),
    })
}

/// Plain-integer copy of an [`OpStats`] tree after execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStatsSnapshot {
    /// The operator's `EXPLAIN` label.
    pub label: String,
    /// True for heap-scanning operators.
    pub is_scan: bool,
    /// True for radix-partitioned operators.
    pub has_partitions: bool,
    /// True for build/probe operators.
    pub has_build: bool,
    /// Rows emitted by this operator.
    pub rows_out: u64,
    /// Batches emitted.
    pub batches: u64,
    /// Inclusive wall time inside `next_batch`, microseconds.
    pub time_us: u64,
    /// Heap pages read (scans only).
    pub pages_read: u64,
    /// Pages the zone map refuted before reading (scans only).
    pub pages_skipped: u64,
    /// Column segments decoded across visited pages (scans only).
    pub segments_decoded: u64,
    /// Radix partition count (partitioned operators only).
    pub partitions: u64,
    /// Rows materialized on the build side (hash joins only).
    pub build_rows: u64,
    /// Child operators, in plan order.
    pub children: Vec<OpStatsSnapshot>,
}

impl OpStatsSnapshot {
    /// The annotated plan tree `EXPLAIN ANALYZE` prints: every counter,
    /// including the timing ones that vary run to run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, true);
        out
    }

    /// The deterministic subset (`rows_out`, plus `pages_read` on scans
    /// and `partitions`/`build_rows` on partitioned operators): identical
    /// across runs and across parallelism levels for plans that drain
    /// their input. Golden tests compare this rendering.
    pub fn render_counters(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, false);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, timing: bool) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.label);
        out.push_str(&format!(" (rows_out={}", self.rows_out));
        if self.has_partitions {
            out.push_str(&format!(" partitions={}", self.partitions));
        }
        if self.has_build {
            out.push_str(&format!(" build_rows={}", self.build_rows));
        }
        if timing {
            out.push_str(&format!(" batches={} time_us={}", self.batches, self.time_us));
        }
        if self.is_scan {
            out.push_str(&format!(
                " pages_read={} pages_skipped={} segments_decoded={}",
                self.pages_read, self.pages_skipped, self.segments_decoded
            ));
        }
        out.push(')');
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1, timing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_mirrors_plan_shape() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Distinct { input: Box::new(PhysicalPlan::Nothing) }),
            n: Some(3),
            offset: 0,
        };
        let stats = stats_tree(&plan);
        assert_eq!(stats.label, "Limit 3");
        assert_eq!(stats.children.len(), 1);
        assert_eq!(stats.children[0].label, "Distinct");
        assert_eq!(stats.children[0].children[0].label, "Nothing");
        assert!(!stats.is_scan);
    }

    #[test]
    fn renderings_differ_only_in_timing_fields() {
        let stats = stats_tree(&PhysicalPlan::Nothing);
        stats.rows_out.store(5, Ordering::Relaxed);
        stats.batches.store(2, Ordering::Relaxed);
        stats.time_us.store(99, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.render(), "Nothing (rows_out=5 batches=2 time_us=99)\n");
        assert_eq!(snap.render_counters(), "Nothing (rows_out=5)\n");
    }

    #[test]
    fn scan_counters_render_pruning_fields() {
        let stats = OpStats {
            label: "SeqScan t".into(),
            is_scan: true,
            has_partitions: false,
            has_build: false,
            rows_out: AtomicU64::new(12),
            batches: AtomicU64::new(1),
            time_us: AtomicU64::new(8),
            pages_read: AtomicU64::new(10),
            pages_skipped: AtomicU64::new(7),
            segments_decoded: AtomicU64::new(6),
            partitions: AtomicU64::new(0),
            build_rows: AtomicU64::new(0),
            children: Vec::new(),
        };
        let snap = stats.snapshot();
        assert_eq!(
            snap.render_counters(),
            "SeqScan t (rows_out=12 pages_read=10 pages_skipped=7 segments_decoded=6)\n"
        );
        assert_eq!(
            snap.render(),
            "SeqScan t (rows_out=12 batches=1 time_us=8 pages_read=10 pages_skipped=7 segments_decoded=6)\n"
        );
    }

    #[test]
    fn partition_counters_appear_in_both_renderings() {
        let stats = OpStats {
            label: "HashJoin a = b build=right".into(),
            is_scan: false,
            has_partitions: true,
            has_build: true,
            rows_out: AtomicU64::new(7),
            batches: AtomicU64::new(1),
            time_us: AtomicU64::new(3),
            pages_read: AtomicU64::new(0),
            pages_skipped: AtomicU64::new(0),
            segments_decoded: AtomicU64::new(0),
            partitions: AtomicU64::new(4),
            build_rows: AtomicU64::new(100),
            children: Vec::new(),
        };
        let snap = stats.snapshot();
        assert_eq!(
            snap.render_counters(),
            "HashJoin a = b build=right (rows_out=7 partitions=4 build_rows=100)\n"
        );
        assert_eq!(
            snap.render(),
            "HashJoin a = b build=right (rows_out=7 partitions=4 build_rows=100 batches=1 time_us=3)\n"
        );
    }
}
