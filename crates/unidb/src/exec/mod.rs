//! Plan execution.
//!
//! Operators consume and produce materialized row batches. For an
//! analytical warehouse at this scale, batch materialization keeps the
//! engine simple and the per-row overhead low; scans still stream from the
//! heap page by page underneath.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::expr::eval::{eval, ColumnBinding, EvalContext};
use crate::expr::func::FunctionRegistry;
use crate::plan::{AggCall, PhysicalPlan};
use crate::sql::ast::{Expr, JoinKind};
use crate::storage::heap::Rid;
use crate::tuple::Row;
use std::collections::HashMap;
use std::ops::Bound;

/// The storage operations the executor needs; implemented by the engine.
pub trait StorageAccess {
    /// Every live row of a table.
    fn scan_table(&self, table_id: u32) -> DbResult<Vec<Row>>;
    /// Fetch specific rows (missing rids are skipped).
    fn fetch_rids(&self, table_id: u32, rids: &[Rid]) -> DbResult<Vec<Row>>;
    /// Rids with `column == key` from the B-tree index.
    fn btree_eq(&self, table_id: u32, column: &str, key: &Datum) -> DbResult<Vec<Rid>>;
    /// Rids with `column` in the given range.
    fn btree_range(
        &self,
        table_id: u32,
        column: &str,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
    ) -> DbResult<Vec<Rid>>;
    /// Candidate rids from a user-defined index probe.
    fn udi_probe(
        &self,
        table_id: u32,
        column: &str,
        func: &str,
        args: &[Datum],
    ) -> DbResult<Vec<Rid>>;
}

/// Execute a plan to completion.
pub fn execute_plan(
    storage: &dyn StorageAccess,
    funcs: &FunctionRegistry,
    plan: &PhysicalPlan,
) -> DbResult<Vec<Row>> {
    let bindings = plan.bindings();
    match plan {
        PhysicalPlan::Nothing => Ok(vec![Vec::new()]),
        PhysicalPlan::SeqScan { table_id, residual, columns, .. } => {
            let rows = storage.scan_table(*table_id)?;
            apply_residual(rows, residual.as_ref(), columns, funcs)
        }
        PhysicalPlan::IndexEqScan { table_id, column, key, residual, columns, .. } => {
            let rids = storage.btree_eq(*table_id, column, key)?;
            let rows = storage.fetch_rids(*table_id, &rids)?;
            apply_residual(rows, residual.as_ref(), columns, funcs)
        }
        PhysicalPlan::IndexRangeScan { table_id, column, lo, hi, residual, columns, .. } => {
            let rids =
                storage.btree_range(*table_id, column, as_ref_bound(lo), as_ref_bound(hi))?;
            let rows = storage.fetch_rids(*table_id, &rids)?;
            apply_residual(rows, residual.as_ref(), columns, funcs)
        }
        PhysicalPlan::UdiScan { table_id, column, func, args, residual, columns, .. } => {
            let rids = storage.udi_probe(*table_id, column, func, args)?;
            let rows = storage.fetch_rids(*table_id, &rids)?;
            apply_residual(rows, residual.as_ref(), columns, funcs)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let in_bindings = input.bindings();
            let rows = execute_plan(storage, funcs, input)?;
            apply_residual(rows, Some(predicate), &in_bindings, funcs)
        }
        PhysicalPlan::NestedLoopJoin { left, right, kind, on } => {
            nested_loop_join(storage, funcs, left, right, *kind, on.as_ref())
        }
        PhysicalPlan::HashJoin { left, right, left_key, right_key } => {
            hash_join(storage, funcs, left, right, left_key, right_key)
        }
        PhysicalPlan::Aggregate { input, group_by, calls } => {
            aggregate(storage, funcs, input, group_by, calls)
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let in_bindings = input.bindings();
            let rows = execute_plan(storage, funcs, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let ctx = EvalContext { bindings: &in_bindings, row: &row, funcs };
                let mut projected = Vec::with_capacity(exprs.len());
                for e in exprs {
                    projected.push(eval(e, &ctx)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        PhysicalPlan::Sort { input, keys } => {
            let in_bindings = input.bindings();
            let rows = execute_plan(storage, funcs, input)?;
            // Precompute sort keys, then stable sort.
            let mut keyed: Vec<(Vec<Datum>, Row)> = Vec::with_capacity(rows.len());
            for row in rows {
                let ctx = EvalContext { bindings: &in_bindings, row: &row, funcs };
                let mut kvec = Vec::with_capacity(keys.len());
                for (e, _) in keys {
                    kvec.push(eval(e, &ctx)?);
                }
                keyed.push((kvec, row));
            }
            // `sort_by` is stable, so ties on every key preserve input
            // order — multi-key sorts and LIMIT windows are deterministic.
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, asc)) in keys.iter().enumerate() {
                    let ord = order_by_cmp(&ka[i], &kb[i]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        PhysicalPlan::Distinct { input } => {
            let rows = execute_plan(storage, funcs, input)?;
            let mut seen = std::collections::HashSet::new();
            Ok(rows.into_iter().filter(|r| seen.insert(r.clone())).collect())
        }
        PhysicalPlan::Limit { input, n, offset } => {
            let mut rows = execute_plan(storage, funcs, input)?;
            let skip = (*offset as usize).min(rows.len());
            rows.drain(..skip);
            if let Some(n) = n {
                rows.truncate(*n as usize);
            }
            Ok(rows)
        }
    }
    .inspect(|rows| {
        debug_assert!(rows.iter().all(|r| r.len() == bindings.len() || bindings.is_empty()));
    })
}

/// ORDER BY comparator: NULLs sort LAST under ASC (and therefore FIRST
/// under DESC, which is just the reversal), matching PostgreSQL's
/// defaults. This is deliberately different from [`Datum::total_cmp`],
/// whose NULL-first total order is a storage-level concern (B-tree key
/// order), not a query-semantics one.
pub fn order_by_cmp(a: &Datum, b: &Datum) -> std::cmp::Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.total_cmp(b),
    }
}

fn as_ref_bound(b: &Bound<Datum>) -> Bound<&Datum> {
    match b {
        Bound::Included(d) => Bound::Included(d),
        Bound::Excluded(d) => Bound::Excluded(d),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn apply_residual(
    rows: Vec<Row>,
    residual: Option<&Expr>,
    bindings: &[ColumnBinding],
    funcs: &FunctionRegistry,
) -> DbResult<Vec<Row>> {
    let Some(pred) = residual else { return Ok(rows) };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let ctx = EvalContext { bindings, row: &row, funcs };
        if eval(pred, &ctx)? == Datum::Bool(true) {
            out.push(row);
        }
    }
    Ok(out)
}

fn nested_loop_join(
    storage: &dyn StorageAccess,
    funcs: &FunctionRegistry,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    kind: JoinKind,
    on: Option<&Expr>,
) -> DbResult<Vec<Row>> {
    let left_rows = execute_plan(storage, funcs, left)?;
    let right_rows = execute_plan(storage, funcs, right)?;
    let mut bindings = left.bindings();
    let right_bindings = right.bindings();
    bindings.extend(right_bindings.clone());
    let right_width = right_bindings.len();

    let mut out = Vec::new();
    for l in &left_rows {
        let mut matched = false;
        for r in &right_rows {
            let mut combined = l.clone();
            combined.extend(r.iter().cloned());
            let keep = match on {
                None => true,
                Some(pred) => {
                    let ctx = EvalContext { bindings: &bindings, row: &combined, funcs };
                    eval(pred, &ctx)? == Datum::Bool(true)
                }
            };
            if keep {
                matched = true;
                out.push(combined);
            }
        }
        if kind == JoinKind::Left && !matched {
            let mut padded = l.clone();
            padded.extend(std::iter::repeat_n(Datum::Null, right_width));
            out.push(padded);
        }
    }
    Ok(out)
}

fn hash_join(
    storage: &dyn StorageAccess,
    funcs: &FunctionRegistry,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    left_key: &Expr,
    right_key: &Expr,
) -> DbResult<Vec<Row>> {
    let left_rows = execute_plan(storage, funcs, left)?;
    let right_rows = execute_plan(storage, funcs, right)?;
    let left_bindings = left.bindings();
    let right_bindings = right.bindings();

    // Build on the right side.
    let mut table: HashMap<Datum, Vec<usize>> = HashMap::new();
    for (i, r) in right_rows.iter().enumerate() {
        let ctx = EvalContext { bindings: &right_bindings, row: r, funcs };
        let k = eval(right_key, &ctx)?;
        if !k.is_null() {
            table.entry(k).or_default().push(i);
        }
    }

    let mut out = Vec::new();
    for l in &left_rows {
        let ctx = EvalContext { bindings: &left_bindings, row: l, funcs };
        let k = eval(left_key, &ctx)?;
        if k.is_null() {
            continue;
        }
        if let Some(matches) = table.get(&k) {
            for &i in matches {
                let mut combined = l.clone();
                combined.extend(right_rows[i].iter().cloned());
                out.push(combined);
            }
        }
    }
    Ok(out)
}

fn aggregate(
    storage: &dyn StorageAccess,
    funcs: &FunctionRegistry,
    input: &PhysicalPlan,
    group_by: &[Expr],
    calls: &[AggCall],
) -> DbResult<Vec<Row>> {
    let in_bindings = input.bindings();
    let rows = execute_plan(storage, funcs, input)?;

    struct Group {
        key: Vec<Datum>,
        accs: Vec<Box<dyn crate::expr::func::Accumulator>>,
        distinct_seen: Vec<std::collections::HashSet<Datum>>,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut lookup: HashMap<Vec<Datum>, usize> = HashMap::new();

    let make_group = |key: Vec<Datum>| -> DbResult<Group> {
        let mut accs = Vec::with_capacity(calls.len());
        for c in calls {
            let factory = funcs
                .aggregate(&c.func)
                .ok_or(DbError::NotFound { kind: "aggregate", name: c.func.clone() })?;
            accs.push(factory());
        }
        Ok(Group { key, accs, distinct_seen: vec![std::collections::HashSet::new(); calls.len()] })
    };

    for row in &rows {
        let ctx = EvalContext { bindings: &in_bindings, row, funcs };
        let mut key = Vec::with_capacity(group_by.len());
        for g in group_by {
            key.push(eval(g, &ctx)?);
        }
        let gi = match lookup.get(&key) {
            Some(&i) => i,
            None => {
                let g = make_group(key.clone())?;
                groups.push(g);
                lookup.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        let group = &mut groups[gi];
        for (ci, call) in calls.iter().enumerate() {
            let value = match &call.arg {
                None => Datum::Int(1), // count(*): a non-null marker per row
                Some(e) => eval(e, &ctx)?,
            };
            if call.distinct && (value.is_null() || !group.distinct_seen[ci].insert(value.clone()))
            {
                continue;
            }
            group.accs[ci].update(&value).map_err(|e| match e {
                DbError::TypeMismatch(m) => DbError::TypeMismatch(format!("{}(): {m}", call.func)),
                other => other,
            })?;
        }
    }

    // A global aggregate over zero rows still produces one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.push(make_group(Vec::new())?);
    }

    let mut out = Vec::with_capacity(groups.len());
    for g in groups {
        let mut row = g.key;
        for acc in &g.accs {
            row.push(acc.finish());
        }
        out.push(row);
    }
    Ok(out)
}
