//! Plan execution: a pull-based, batched, morsel-parallel engine.
//!
//! Every operator implements `BatchIter` and pulls ~[`BATCH_ROWS`]-row
//! batches from its input, so Scan→Filter→Project pipelines stream without
//! materializing intermediate `Vec<Row>`s and `LIMIT` stops pulling as
//! soon as its window is full (unless a fallible expression downstream
//! means early exit could change which queries error — then it drains).
//! Pipeline breakers (Sort, TopN, Aggregate, the join build sides) still
//! buffer what they must, and nothing more: `Sort+LIMIT` arrives here
//! pre-fused into [`PhysicalPlan::TopN`], whose bounded heap never holds
//! more than `offset + n` rows.
//!
//! All expressions are lowered to [`CompiledExpr`] when the operator tree
//! is built — before the first row flows — so per-row evaluation does no
//! name resolution, and unknown/ambiguous column errors surface at plan
//! time.
//!
//! With `parallelism > 1`, SeqScan fans page-range morsels out over scoped
//! std threads (filter and projection run inside the morsel when fused),
//! and the pipeline breakers evaluate their keys across row chunks the
//! same way. Workers write results back in morsel order, so the output —
//! including tie order everywhere — is byte-identical to a serial run; the
//! qdiff sweep pins this by running the same seeds at parallelism 1 and 4.

pub mod stats;

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::expr::compile::{compile, infallible, CompiledExpr};
use crate::expr::func::FunctionRegistry;
use crate::fxhash::{hash_one, FxBuildHasher, FxHashMap};
use crate::plan::{AggCall, PhysicalPlan};
use crate::sql::ast::{Expr, JoinKind};
use crate::storage::colpage::ColBound;
use crate::storage::heap::Rid;
use crate::tuple::Row;
use stats::{stats_tree, OpStats, OpStatsSnapshot};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::ops::Bound;
use std::sync::Arc;

/// Target rows per batch pulled through the operator tree.
pub const BATCH_ROWS: usize = 1024;
/// Heap pages per scan morsel (the unit of scan parallelism).
const MORSEL_PAGES: u32 = 32;
/// Below this many rows a pipeline breaker evaluates serially: scoped
/// thread spawns would cost more than they save.
const PAR_MIN_ROWS: usize = 4096;

/// The storage operations the executor needs; implemented by the engine.
/// `Sync` because morsel workers share one handle across scoped threads —
/// the same way concurrent reader sessions already share the engine under
/// its read lock.
pub trait StorageAccess: Sync {
    /// Stream the decoded rows of up to `max_pages` heap pages starting at
    /// `first_page` into `on_row`, returning the page to continue from and
    /// how many pages the range covered. Page ranges past the end visit
    /// nothing, so parallel morsels can race ahead safely. The [`ScanSpec`]
    /// says which columns the caller reads (so trailing or masked-out
    /// columns aren't even deserialized) and carries the predicate bounds a
    /// page-level zone map may refute without reading the page. Rows are
    /// borrowed from a reused decode scratch — `on_row` must copy anything
    /// it keeps.
    fn scan_batches(
        &self,
        table_id: u32,
        first_page: u32,
        max_pages: u32,
        spec: &ScanSpec,
        on_row: &mut dyn FnMut(&[Datum]) -> DbResult<()>,
    ) -> DbResult<ScanProgress>;
    /// Fetch specific rows (missing rids are skipped).
    fn fetch_rids(&self, table_id: u32, rids: &[Rid]) -> DbResult<Vec<Row>>;
    /// Rids with `column == key` from the B-tree index.
    fn btree_eq(&self, table_id: u32, column: &str, key: &Datum) -> DbResult<Vec<Rid>>;
    /// Rids with `column` in the given range.
    fn btree_range(
        &self,
        table_id: u32,
        column: &str,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
    ) -> DbResult<Vec<Rid>>;
    /// Candidate rids from a user-defined index probe.
    fn udi_probe(
        &self,
        table_id: u32,
        column: &str,
        func: &str,
        args: &[Datum],
    ) -> DbResult<Vec<Rid>>;
}

/// What a scan reads of each row, built once per scan iterator from the
/// compiled fused expressions.
#[derive(Debug, Clone, Default)]
pub struct ScanSpec {
    /// Columns `0..prefix` are decoded (`usize::MAX` for all): the highest
    /// position the fused expressions read, plus one.
    pub prefix: usize,
    /// Within the prefix, which columns are actually referenced. `None`
    /// means all of them; with a mask, unreferenced positions are skipped
    /// during decode and surface as `Datum::Null` placeholders.
    pub mask: Option<Vec<bool>>,
    /// Per-column bounds extracted from the fused filter for zone-map
    /// pruning. Empty unless the *whole* filter is error-free: skipping a
    /// page must never skip an evaluation error the engine mandates.
    pub bounds: Vec<ColBound>,
}

/// The outcome of one [`StorageAccess::scan_batches`] call.
/// Zone-map bounds for a fused scan filter. Pruning is only sound when
/// the *whole* filter is guaranteed error-free: a skipped page must not
/// swallow a runtime error (division by zero, type mismatch) the engine
/// is required to raise, so any filter that can error yields no bounds.
fn scan_bounds(filter: &Option<CompiledExpr>) -> Vec<ColBound> {
    match filter {
        Some(f) if f.error_free() => f.zone_bounds(),
        _ => Vec::new(),
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanProgress {
    /// Page to continue from; `None` once the heap is exhausted.
    pub next_page: Option<u32>,
    /// Pages the call's range covered (0 for a range past the end),
    /// *including* zone-refuted pages — the legacy meaning of "pages this
    /// scan examined".
    pub pages_read: u32,
    /// Pages within the range the zone map refuted without reading.
    pub pages_skipped: u32,
    /// Column segments decoded: referenced columns × pages with at least
    /// one live row, identical on the row and columnar decode paths.
    pub segments_decoded: u64,
}

/// Execute a plan to completion, collecting every emitted batch.
pub fn execute_plan(
    storage: &dyn StorageAccess,
    funcs: &FunctionRegistry,
    plan: &PhysicalPlan,
    parallelism: usize,
) -> DbResult<Vec<Row>> {
    let mut query_span = genalg_obs::tracer().span("exec.query");
    let mut it = build_iter(storage, funcs, plan, parallelism.max(1), None, query_span.id())?;
    let mut out = Vec::new();
    while let Some(batch) = it.next_batch()? {
        out.extend(batch);
    }
    drop(it);
    query_span.field("rows", out.len());
    Ok(out)
}

/// Execute a plan to completion while attributing per-operator runtime
/// counters (`EXPLAIN ANALYZE`). Returns the rows plus the annotated
/// stats tree mirroring the plan.
pub fn execute_plan_with_stats(
    storage: &dyn StorageAccess,
    funcs: &FunctionRegistry,
    plan: &PhysicalPlan,
    parallelism: usize,
) -> DbResult<(Vec<Row>, OpStatsSnapshot)> {
    let mut query_span = genalg_obs::tracer().span("exec.query");
    let root = stats_tree(plan);
    let mut it =
        build_iter(storage, funcs, plan, parallelism.max(1), Some(&root), query_span.id())?;
    let mut out = Vec::new();
    while let Some(batch) = it.next_batch()? {
        out.extend(batch);
    }
    drop(it);
    query_span.field("rows", out.len());
    Ok((out, root.snapshot()))
}

/// A pull-based operator. `next_batch` returns `Ok(None)` when exhausted;
/// an `Ok(Some(batch))` may be empty (e.g. a filter rejected a whole
/// input batch) — callers keep pulling until `None`.
trait BatchIter {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>>;
}

type BoxIter<'a> = Box<dyn BatchIter + 'a>;

/// Lower a plan into its operator tree, compiling every expression. All
/// name-resolution errors surface here, before any row is read.
///
/// When `stats` is given (`EXPLAIN ANALYZE`), each operator is wrapped in
/// a [`StatIter`] attributing rows/batches/time to the matching node of
/// the stats tree, and scans additionally record `pages_read`.
///
/// When the process tracer is enabled, each operator is also wrapped in a
/// [`SpanIter`] that records one `exec.operator` span (under the query's
/// `span_parent`) when the operator is dropped. The gate is one relaxed
/// load per operator at *build* time — nothing on the per-batch path.
fn build_iter<'a>(
    storage: &'a dyn StorageAccess,
    funcs: &'a FunctionRegistry,
    plan: &PhysicalPlan,
    par: usize,
    stats: Option<&Arc<OpStats>>,
    span_parent: u64,
) -> DbResult<BoxIter<'a>> {
    let child = |i: usize| stats.map(|s| &s.children[i]);
    let it: BoxIter<'a> = match plan {
        PhysicalPlan::Nothing => Box::new(NothingIter { done: false }),
        PhysicalPlan::SeqScan { table_id, residual, columns, .. } => {
            let filter = compile_opt(residual.as_ref(), columns, funcs)?;
            let spec = ScanSpec { prefix: usize::MAX, mask: None, bounds: scan_bounds(&filter) };
            Box::new(SeqScanIter {
                storage,
                table_id: *table_id,
                filter,
                project: None,
                spec,
                next_page: Some(0),
                par,
                stats: stats.map(Arc::clone),
            })
        }
        // Project directly over SeqScan fuses into the scan morsel, so
        // filter + projection run inside the parallel workers — and only
        // the column prefix the fused expressions actually read is decoded.
        PhysicalPlan::Project { input, exprs, .. }
            if matches!(**input, PhysicalPlan::SeqScan { .. }) =>
        {
            let PhysicalPlan::SeqScan { table_id, residual, columns, .. } = &**input else {
                unreachable!()
            };
            let filter = compile_opt(residual.as_ref(), columns, funcs)?;
            let project = compile_all(exprs, columns, funcs)?;
            let prefix = project
                .iter()
                .chain(filter.iter())
                .filter_map(CompiledExpr::max_column)
                .max()
                .map_or(0, |m| m + 1);
            let mut referenced = std::collections::BTreeSet::new();
            for e in project.iter().chain(filter.iter()) {
                e.collect_columns(&mut referenced);
            }
            let mut mask = vec![false; prefix];
            for c in referenced {
                if c < prefix {
                    mask[c] = true;
                }
            }
            // An all-true mask is just a prefix decode; drop it so the scan
            // takes the branch-free dense loop. `segments_decoded` counts
            // min(prefix, arity) either way, so counters don't move.
            let mask = if mask.iter().all(|b| *b) { None } else { Some(mask) };
            let spec = ScanSpec { prefix, mask, bounds: scan_bounds(&filter) };
            // The fused operator reports through both plan nodes: the scan
            // child gets pages_read (inside SeqScanIter) plus rows/time via
            // its own StatIter; the Project gets the same via the outer
            // wrap below. Their row counts are identical by construction.
            let scan: BoxIter<'a> = Box::new(SeqScanIter {
                storage,
                table_id: *table_id,
                filter,
                project: Some(project),
                spec,
                next_page: Some(0),
                par,
                stats: child(0).map(Arc::clone),
            });
            match child(0) {
                Some(s) => Box::new(StatIter { input: scan, stats: Arc::clone(s) }),
                None => scan,
            }
        }
        PhysicalPlan::IndexEqScan { table_id, column, key, residual, columns, .. } => {
            Box::new(RidScanIter {
                storage,
                table_id: *table_id,
                rids: storage.btree_eq(*table_id, column, key)?,
                pos: 0,
                filter: compile_opt(residual.as_ref(), columns, funcs)?,
            })
        }
        PhysicalPlan::IndexRangeScan { table_id, column, lo, hi, residual, columns, .. } => {
            Box::new(RidScanIter {
                storage,
                table_id: *table_id,
                rids: storage.btree_range(*table_id, column, as_ref_bound(lo), as_ref_bound(hi))?,
                pos: 0,
                filter: compile_opt(residual.as_ref(), columns, funcs)?,
            })
        }
        PhysicalPlan::UdiScan { table_id, column, func, args, residual, columns, .. } => {
            Box::new(RidScanIter {
                storage,
                table_id: *table_id,
                rids: storage.udi_probe(*table_id, column, func, args)?,
                pos: 0,
                filter: compile_opt(residual.as_ref(), columns, funcs)?,
            })
        }
        PhysicalPlan::Filter { input, predicate } => {
            let pred = compile(predicate, &input.bindings(), funcs)?;
            Box::new(FilterIter {
                input: build_iter(storage, funcs, input, par, child(0), span_parent)?,
                pred,
            })
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let exprs = compile_all(exprs, &input.bindings(), funcs)?;
            Box::new(ProjectIter {
                input: build_iter(storage, funcs, input, par, child(0), span_parent)?,
                exprs,
            })
        }
        PhysicalPlan::NestedLoopJoin { left, right, kind, on } => {
            let mut bindings = left.bindings();
            let right_width = right.bindings().len();
            bindings.extend(right.bindings());
            Box::new(NlJoinIter {
                left: build_iter(storage, funcs, left, par, child(0), span_parent)?,
                right: Some(build_iter(storage, funcs, right, par, child(1), span_parent)?),
                right_rows: Vec::new(),
                kind: *kind,
                on: compile_opt(on.as_ref(), &bindings, funcs)?,
                right_width,
            })
        }
        PhysicalPlan::HashJoin { left, right, left_key, right_key, build_left, kind } => {
            // Children are built (and compiled) in plan order so build-time
            // side effects — index probes, name-resolution errors — happen
            // in the same order whichever side the executor builds on, and
            // child(0)/child(1) stay attached to the plan's left/right
            // inputs regardless.
            let left_it = build_iter(storage, funcs, left, par, child(0), span_parent)?;
            let right_it = build_iter(storage, funcs, right, par, child(1), span_parent)?;
            let left_k = compile(left_key, &left.bindings(), funcs)?;
            let right_k = compile(right_key, &right.bindings(), funcs)?;
            let (build_it, build_k, build_plan, probe_it, probe_k) = if *build_left {
                (left_it, left_k, left, right_it, right_k)
            } else {
                (right_it, right_k, right, left_it, left_k)
            };
            Box::new(HashJoinIter {
                probe: probe_it,
                build: Some(build_it),
                build_rows: Vec::new(),
                parts: Vec::new(),
                mask: 0,
                probe_key: probe_k,
                build_key: build_k,
                build_is_left: *build_left,
                left_outer: *kind == JoinKind::Left,
                build_width: build_plan.bindings().len(),
                par,
                stats: stats.map(Arc::clone),
            })
        }
        PhysicalPlan::Aggregate { input, group_by, calls } => {
            let in_bindings = input.bindings();
            Box::new(AggregateIter {
                input: Some(build_iter(storage, funcs, input, par, child(0), span_parent)?),
                group_by: compile_all(group_by, &in_bindings, funcs)?,
                args: calls
                    .iter()
                    .map(|c| compile_opt(c.arg.as_ref(), &in_bindings, funcs))
                    .collect::<DbResult<Vec<_>>>()?,
                calls: calls.to_vec(),
                funcs,
                par,
                stats: stats.map(Arc::clone),
            })
        }
        PhysicalPlan::Sort { input, keys } => Box::new(SortIter {
            input: Some(build_iter(storage, funcs, input, par, child(0), span_parent)?),
            keys: compile_keys(keys, &input.bindings(), funcs)?,
            dirs: keys.iter().map(|(_, asc)| *asc).collect(),
            par,
        }),
        PhysicalPlan::TopN { input, keys, n, offset } => Box::new(TopNIter {
            input: Some(build_iter(storage, funcs, input, par, child(0), span_parent)?),
            keys: compile_keys(keys, &input.bindings(), funcs)?,
            dirs: Arc::new(keys.iter().map(|(_, asc)| *asc).collect()),
            n: *n,
            offset: *offset,
        }),
        PhysicalPlan::Distinct { input } => Box::new(DistinctIter {
            input: build_iter(storage, funcs, input, par, child(0), span_parent)?,
            seen: HashSet::new(),
        }),
        PhysicalPlan::Limit { input, n, offset } => Box::new(LimitIter {
            // When any expression under this operator can error, an early
            // exit could skip the evaluation that would have raised it and
            // change the query's outcome — drain the input instead.
            eager: plan_fallible(input),
            input: build_iter(storage, funcs, input, par, child(0), span_parent)?,
            n: *n,
            offset: *offset,
            emitted: 0,
            done: false,
        }),
    };
    let it = match stats {
        Some(s) => Box::new(StatIter { input: it, stats: Arc::clone(s) }),
        None => it,
    };
    let tracer = genalg_obs::tracer();
    Ok(if tracer.enabled() {
        Box::new(SpanIter {
            input: it,
            tracer,
            parent: span_parent,
            label: plan.node_label(),
            rows: 0,
            batches: 0,
            time_us: 0,
        })
    } else {
        it
    })
}

fn compile_opt(
    expr: Option<&Expr>,
    bindings: &[crate::expr::eval::ColumnBinding],
    funcs: &FunctionRegistry,
) -> DbResult<Option<CompiledExpr>> {
    expr.map(|e| compile(e, bindings, funcs)).transpose()
}

fn compile_all(
    exprs: &[Expr],
    bindings: &[crate::expr::eval::ColumnBinding],
    funcs: &FunctionRegistry,
) -> DbResult<Vec<CompiledExpr>> {
    exprs.iter().map(|e| compile(e, bindings, funcs)).collect()
}

fn compile_keys(
    keys: &[(Expr, bool)],
    bindings: &[crate::expr::eval::ColumnBinding],
    funcs: &FunctionRegistry,
) -> DbResult<Vec<CompiledExpr>> {
    keys.iter().map(|(e, _)| compile(e, bindings, funcs)).collect()
}

/// Could executing this subtree raise an expression-evaluation error?
/// Conservative (see [`infallible`]); `LIMIT` uses it to decide whether
/// short-circuiting is observationally safe.
fn plan_fallible(plan: &PhysicalPlan) -> bool {
    let exprs_ok = |exprs: &[&Expr]| exprs.iter().all(|e| infallible(e));
    match plan {
        PhysicalPlan::Nothing => false,
        PhysicalPlan::SeqScan { residual, .. }
        | PhysicalPlan::IndexEqScan { residual, .. }
        | PhysicalPlan::IndexRangeScan { residual, .. }
        | PhysicalPlan::UdiScan { residual, .. } => !exprs_ok(&residual.iter().collect::<Vec<_>>()),
        PhysicalPlan::Filter { input, predicate } => !infallible(predicate) || plan_fallible(input),
        PhysicalPlan::NestedLoopJoin { left, right, on, .. } => {
            !exprs_ok(&on.iter().collect::<Vec<_>>()) || plan_fallible(left) || plan_fallible(right)
        }
        PhysicalPlan::HashJoin { left, right, left_key, right_key, .. } => {
            !infallible(left_key)
                || !infallible(right_key)
                || plan_fallible(left)
                || plan_fallible(right)
        }
        // Accumulators themselves can reject values (sum over TEXT), so an
        // aggregate is always treated as fallible.
        PhysicalPlan::Aggregate { .. } => true,
        PhysicalPlan::Project { input, exprs, .. } => {
            !exprs.iter().all(infallible) || plan_fallible(input)
        }
        PhysicalPlan::Sort { input, keys } | PhysicalPlan::TopN { input, keys, .. } => {
            !keys.iter().all(|(e, _)| infallible(e)) || plan_fallible(input)
        }
        PhysicalPlan::Distinct { input } | PhysicalPlan::Limit { input, .. } => {
            plan_fallible(input)
        }
    }
}

/// ORDER BY comparator: NULLs sort LAST under ASC (and therefore FIRST
/// under DESC, which is just the reversal), matching PostgreSQL's
/// defaults. This is deliberately different from [`Datum::total_cmp`],
/// whose NULL-first total order is a storage-level concern (B-tree key
/// order), not a query-semantics one.
pub fn order_by_cmp(a: &Datum, b: &Datum) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(b),
    }
}

fn cmp_key_vecs(a: &[Datum], b: &[Datum], dirs: &[bool]) -> Ordering {
    for (i, asc) in dirs.iter().enumerate() {
        let ord = order_by_cmp(&a[i], &b[i]);
        let ord = if *asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn as_ref_bound(b: &Bound<Datum>) -> Bound<&Datum> {
    match b {
        Bound::Included(d) => Bound::Included(d),
        Bound::Excluded(d) => Bound::Excluded(d),
        Bound::Unbounded => Bound::Unbounded,
    }
}

// ---------------------------------------------------------------------------
// Parallel helpers
// ---------------------------------------------------------------------------

/// Map `f` over `rows`, fanning out over up to `par` scoped threads when
/// the input is large enough to pay for them. Results come back in row
/// order; the returned error (if any) is the one the earliest-ordered row
/// produced, matching a serial run.
fn par_map<R: Send>(
    rows: &[Row],
    par: usize,
    f: impl Fn(&Row) -> DbResult<R> + Sync,
) -> DbResult<Vec<R>> {
    if par <= 1 || rows.len() < PAR_MIN_ROWS {
        return rows.iter().map(f).collect();
    }
    let chunk = rows.len().div_ceil(par);
    let mut results: Vec<DbResult<Vec<R>>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = rows
            .chunks(chunk)
            .map(|c| s.spawn(|| c.iter().map(&f).collect::<DbResult<Vec<R>>>()))
            .collect();
        results = handles.into_iter().map(join_worker).collect();
    });
    let mut flat = Vec::with_capacity(rows.len());
    for r in results {
        flat.extend(r?);
    }
    Ok(flat)
}

/// Propagate worker panics onto the pulling thread so a panic stays a
/// panic (the qdiff harness treats panics as divergences; swallowing one
/// into an error would mask it).
fn join_worker<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match h.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// `EXPLAIN ANALYZE` wrapper: forwards `next_batch` while attributing
/// rows, batches, and inclusive wall time to one stats node. Only present
/// in the operator tree when a stats tree was requested, so ordinary
/// execution pays nothing for it.
struct StatIter<'a> {
    input: BoxIter<'a>,
    stats: Arc<OpStats>,
}

impl BatchIter for StatIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        use std::sync::atomic::Ordering as AtomicOrdering;
        let start = std::time::Instant::now();
        let result = self.input.next_batch();
        let elapsed = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.stats.time_us.fetch_add(elapsed, AtomicOrdering::Relaxed);
        if let Ok(Some(batch)) = &result {
            self.stats.batches.fetch_add(1, AtomicOrdering::Relaxed);
            self.stats.rows_out.fetch_add(batch.len() as u64, AtomicOrdering::Relaxed);
        }
        result
    }
}

/// Tracing wrapper: accumulates rows/batches/inclusive time in plain
/// fields (no atomics — each operator is pulled single-threaded) and
/// records one `exec.operator` span when the operator is dropped at the
/// end of the query. Only present when the tracer was enabled at build
/// time, so the per-batch cost is zero when tracing is off.
struct SpanIter<'a> {
    input: BoxIter<'a>,
    tracer: &'static genalg_obs::Tracer,
    parent: u64,
    label: String,
    rows: u64,
    batches: u64,
    time_us: u64,
}

impl BatchIter for SpanIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        let start = std::time::Instant::now();
        let result = self.input.next_batch();
        self.time_us += start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        if let Ok(Some(batch)) = &result {
            self.batches += 1;
            self.rows += batch.len() as u64;
        }
        result
    }
}

impl Drop for SpanIter<'_> {
    fn drop(&mut self) {
        let mut span = self.tracer.span_with_parent("exec.operator", self.parent);
        span.field("op", self.label.as_str());
        span.field("rows_out", self.rows);
        span.field("batches", self.batches);
        span.field("time_us", self.time_us);
    }
}

// ---------------------------------------------------------------------------
// Leaf operators
// ---------------------------------------------------------------------------

struct NothingIter {
    done: bool,
}

impl BatchIter for NothingIter {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(vec![Vec::new()]))
    }
}

/// Streaming heap scan with optional fused filter and projection. Each
/// `next_batch` reads one morsel (serial) or one wave of `par` morsels on
/// scoped threads, reassembled in morsel order so the row order is
/// identical to a serial scan.
struct SeqScanIter<'a> {
    storage: &'a dyn StorageAccess,
    table_id: u32,
    filter: Option<CompiledExpr>,
    project: Option<Vec<CompiledExpr>>,
    /// What to decode (column prefix/mask) and which pages the zone maps
    /// may refute (predicate bounds). The mask is only ever narrower than
    /// the schema when projection is fused into the scan, so downstream
    /// operators always see full rows.
    spec: ScanSpec,
    next_page: Option<u32>,
    par: usize,
    /// `EXPLAIN ANALYZE` node to attribute `pages_read`, `pages_skipped`
    /// and `segments_decoded` to. Per-morsel counts are summed on the
    /// pulling thread after the wave joins, so the totals are
    /// deterministic at any parallelism.
    stats: Option<Arc<OpStats>>,
}

impl SeqScanIter<'_> {
    fn run_morsel(&self, first_page: u32) -> DbResult<(Vec<Row>, ScanProgress)> {
        // Filter and projection run directly on the scan's borrowed decode
        // scratch; only surviving (projected) rows are materialized.
        let mut out = Vec::new();
        let progress = self.storage.scan_batches(
            self.table_id,
            first_page,
            MORSEL_PAGES,
            &self.spec,
            &mut |row| {
                if let Some(f) = &self.filter {
                    if !f.accepts(row)? {
                        return Ok(());
                    }
                }
                match &self.project {
                    Some(exprs) => {
                        let mut projected = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            projected.push(e.eval(row)?);
                        }
                        out.push(projected);
                    }
                    None => out.push(row.to_vec()),
                }
                Ok(())
            },
        )?;
        Ok((out, progress))
    }

    fn record_progress(&self, pages: u64, skipped: u64, segments: u64) {
        if let Some(stats) = &self.stats {
            stats.pages_read.fetch_add(pages, std::sync::atomic::Ordering::Relaxed);
            stats.pages_skipped.fetch_add(skipped, std::sync::atomic::Ordering::Relaxed);
            stats.segments_decoded.fetch_add(segments, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl BatchIter for SeqScanIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        let Some(start) = self.next_page else { return Ok(None) };
        if self.par <= 1 {
            let (rows, progress) = self.run_morsel(start)?;
            self.record_progress(
                u64::from(progress.pages_read),
                u64::from(progress.pages_skipped),
                progress.segments_decoded,
            );
            self.next_page = progress.next_page;
            return Ok(Some(rows));
        }
        // One wave: morsel i covers pages [start + i*M, start + (i+1)*M).
        // The last morsel's continuation is the wave's continuation.
        let mut results: Vec<DbResult<(Vec<Row>, ScanProgress)>> = Vec::new();
        let this: &SeqScanIter<'_> = self;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..this.par as u32)
                .map(|i| {
                    let first = start.saturating_add(i * MORSEL_PAGES);
                    s.spawn(move || this.run_morsel(first))
                })
                .collect();
            results = handles.into_iter().map(join_worker).collect();
        });
        let mut batch = Vec::new();
        let mut wave_next = None;
        let (mut wave_pages, mut wave_skipped, mut wave_segments) = (0u64, 0u64, 0u64);
        for r in results {
            let (rows, progress) = r?;
            batch.extend(rows);
            wave_pages += u64::from(progress.pages_read);
            wave_skipped += u64::from(progress.pages_skipped);
            wave_segments += progress.segments_decoded;
            wave_next = progress.next_page;
        }
        self.record_progress(wave_pages, wave_skipped, wave_segments);
        self.next_page = wave_next;
        Ok(Some(batch))
    }
}

/// Index / UDI scans: the rid list is materialized by the probe, rows are
/// fetched in [`BATCH_ROWS`] chunks.
struct RidScanIter<'a> {
    storage: &'a dyn StorageAccess,
    table_id: u32,
    rids: Vec<Rid>,
    pos: usize,
    filter: Option<CompiledExpr>,
}

impl BatchIter for RidScanIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        if self.pos >= self.rids.len() {
            return Ok(None);
        }
        let end = (self.pos + BATCH_ROWS).min(self.rids.len());
        let rows = self.storage.fetch_rids(self.table_id, &self.rids[self.pos..end])?;
        self.pos = end;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            if let Some(f) = &self.filter {
                if !f.accepts(&row)? {
                    continue;
                }
            }
            out.push(row);
        }
        Ok(Some(out))
    }
}

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

struct FilterIter<'a> {
    input: BoxIter<'a>,
    pred: CompiledExpr,
}

impl BatchIter for FilterIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        let Some(batch) = self.input.next_batch()? else { return Ok(None) };
        let mut out = Vec::with_capacity(batch.len());
        for row in batch {
            if self.pred.accepts(&row)? {
                out.push(row);
            }
        }
        Ok(Some(out))
    }
}

struct ProjectIter<'a> {
    input: BoxIter<'a>,
    exprs: Vec<CompiledExpr>,
}

impl BatchIter for ProjectIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        let Some(batch) = self.input.next_batch()? else { return Ok(None) };
        let mut out = Vec::with_capacity(batch.len());
        for row in batch {
            let mut projected = Vec::with_capacity(self.exprs.len());
            for e in &self.exprs {
                projected.push(e.eval(&row)?);
            }
            out.push(projected);
        }
        Ok(Some(out))
    }
}

/// Each incoming row is kept exactly once: the seen-set owns the only
/// retained copy, duplicates are dropped without ever being cloned, and
/// the emitted row is the original moving on downstream.
struct DistinctIter<'a> {
    input: BoxIter<'a>,
    seen: HashSet<Row>,
}

impl BatchIter for DistinctIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        let Some(batch) = self.input.next_batch()? else { return Ok(None) };
        let mut out = Vec::new();
        for row in batch {
            if !self.seen.contains(&row) {
                self.seen.insert(row.clone());
                out.push(row);
            }
        }
        Ok(Some(out))
    }
}

struct LimitIter<'a> {
    input: BoxIter<'a>,
    n: Option<u64>,
    offset: u64,
    emitted: u64,
    eager: bool,
    done: bool,
}

impl BatchIter for LimitIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        let Some(mut batch) = self.input.next_batch()? else {
            self.done = true;
            return Ok(None);
        };
        if self.offset > 0 {
            let skip = (self.offset).min(batch.len() as u64);
            batch.drain(..skip as usize);
            self.offset -= skip;
        }
        if let Some(n) = self.n {
            let remaining = n - self.emitted;
            if (batch.len() as u64) > remaining {
                batch.truncate(remaining as usize);
            }
            self.emitted += batch.len() as u64;
            if self.emitted >= n {
                self.done = true;
                if self.eager {
                    // Keep evaluating the input for its error effects.
                    while self.input.next_batch()?.is_some() {}
                }
            }
        }
        Ok(Some(batch))
    }
}

// ---------------------------------------------------------------------------
// Pipeline breakers
// ---------------------------------------------------------------------------

fn drain(mut it: BoxIter<'_>) -> DbResult<Vec<Row>> {
    let mut rows = Vec::new();
    while let Some(batch) = it.next_batch()? {
        rows.extend(batch);
    }
    Ok(rows)
}

struct SortIter<'a> {
    input: Option<BoxIter<'a>>,
    keys: Vec<CompiledExpr>,
    dirs: Vec<bool>,
    par: usize,
}

impl BatchIter for SortIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        let Some(input) = self.input.take() else { return Ok(None) };
        let rows = drain(input)?;
        let keyed = par_map(&rows, self.par, |row| {
            self.keys.iter().map(|k| k.eval(row)).collect::<DbResult<Vec<_>>>()
        })?;
        let mut order: Vec<usize> = (0..rows.len()).collect();
        // Stable, so ties on every key preserve input order — multi-key
        // sorts and LIMIT windows are deterministic.
        order.sort_by(|&a, &b| cmp_key_vecs(&keyed[a], &keyed[b], &self.dirs));
        let mut slots: Vec<Option<Row>> = rows.into_iter().map(Some).collect();
        Ok(Some(order.iter().map(|&i| slots[i].take().expect("each slot once")).collect()))
    }
}

/// Bounded Top-N: a max-heap (in sort order) of the best `offset + n`
/// rows seen so far. A sequence number per row makes the heap order a
/// total order that exactly reproduces stable-sort-then-limit, so results
/// are deterministic under any parallelism.
struct TopNIter<'a> {
    input: Option<BoxIter<'a>>,
    keys: Vec<CompiledExpr>,
    dirs: Arc<Vec<bool>>,
    n: u64,
    offset: u64,
}

struct TopEntry {
    key: Vec<Datum>,
    seq: u64,
    row: Row,
    dirs: Arc<Vec<bool>>,
}

impl PartialEq for TopEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for TopEntry {}
impl PartialOrd for TopEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TopEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_key_vecs(&self.key, &other.key, &self.dirs).then(self.seq.cmp(&other.seq))
    }
}

impl BatchIter for TopNIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        let Some(mut input) = self.input.take() else { return Ok(None) };
        let keep = usize::try_from(self.offset.saturating_add(self.n)).unwrap_or(usize::MAX);
        let mut heap: std::collections::BinaryHeap<TopEntry> =
            std::collections::BinaryHeap::with_capacity(keep.min(BATCH_ROWS) + 1);
        let mut seq = 0u64;
        while let Some(batch) = input.next_batch()? {
            for row in batch {
                // Key evaluation happens for every input row — exactly as
                // the unfused Sort would — so error behavior is unchanged.
                let key =
                    self.keys.iter().map(|k| k.eval(&row)).collect::<DbResult<Vec<Datum>>>()?;
                if keep == 0 {
                    continue;
                }
                if heap.len() == keep {
                    // Cheap reject: worse than the current worst kept row.
                    let worst = heap.peek().expect("non-empty at capacity");
                    if cmp_key_vecs(&key, &worst.key, &self.dirs).then(seq.cmp(&worst.seq)).is_ge()
                    {
                        seq += 1;
                        continue;
                    }
                }
                heap.push(TopEntry { key, seq, row, dirs: Arc::clone(&self.dirs) });
                seq += 1;
                if heap.len() > keep {
                    heap.pop();
                }
            }
        }
        let mut entries = heap.into_sorted_vec();
        let skip = (self.offset as usize).min(entries.len());
        Ok(Some(entries.drain(skip..).map(|e| e.row).collect()))
    }
}

struct NlJoinIter<'a> {
    left: BoxIter<'a>,
    right: Option<BoxIter<'a>>,
    right_rows: Vec<Row>,
    kind: JoinKind,
    on: Option<CompiledExpr>,
    right_width: usize,
}

impl BatchIter for NlJoinIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        if let Some(right) = self.right.take() {
            self.right_rows = drain(right)?;
        }
        let Some(batch) = self.left.next_batch()? else { return Ok(None) };
        let mut out = Vec::new();
        for l in &batch {
            let mut matched = false;
            for r in &self.right_rows {
                let mut combined = l.clone();
                combined.extend(r.iter().cloned());
                let keep = match &self.on {
                    None => true,
                    Some(pred) => pred.accepts(&combined)?,
                };
                if keep {
                    matched = true;
                    out.push(combined);
                }
            }
            if self.kind == JoinKind::Left && !matched {
                let mut padded = l.clone();
                padded.extend(std::iter::repeat_n(Datum::Null, self.right_width));
                out.push(padded);
            }
        }
        Ok(Some(out))
    }
}

/// Radix partition count for a hash-join build side of `rows` rows: one
/// partition per ~4k rows keeps each partition's table cache-sized, as a
/// power of two so `hash & mask` selects it. A pure function of the data
/// (never of the parallelism level), because `EXPLAIN ANALYZE` renders it
/// in the deterministic counter subset.
fn join_partitions(rows: usize) -> usize {
    (rows / 4096).next_power_of_two().clamp(1, 256)
}

/// Build one partition's table from its bucketed `(key, build-row index)`
/// pairs. Indices arrive in build order, so match lists — and therefore
/// emitted row order — are identical however partitions are built.
fn build_partition(bucket: Vec<(Datum, u32)>) -> FxHashMap<Datum, Vec<u32>> {
    let mut table: FxHashMap<Datum, Vec<u32>> =
        FxHashMap::with_capacity_and_hasher(bucket.len(), FxBuildHasher);
    for (key, i) in bucket {
        table.entry(key).or_default().push(i);
    }
    table
}

/// Hash join, radix-partitioned: the build side (chosen by the planner's
/// statistics — `build=left|right` in `EXPLAIN`) is drained once, its
/// keys evaluated across morsel threads, and its rows bucketed by key
/// hash into cache-sized partitions, each with its own private table —
/// partitions are independent, so parallel table builds share nothing.
/// Probe batches then stream through; each probe key hashes to exactly
/// one partition whose table stays cache-resident.
///
/// Emitted rows are always in `left ++ right` column order regardless of
/// which side was built. For LEFT joins the build side is always the
/// right (padded) side; unmatched probe rows — including rows whose key
/// is NULL, which never joins anything — are padded with NULLs.
struct HashJoinIter<'a> {
    probe: BoxIter<'a>,
    build: Option<BoxIter<'a>>,
    build_rows: Vec<Row>,
    parts: Vec<FxHashMap<Datum, Vec<u32>>>,
    mask: u64,
    probe_key: CompiledExpr,
    build_key: CompiledExpr,
    /// The build side is the plan's *left* input: emit build ++ probe.
    build_is_left: bool,
    /// LEFT OUTER join (probe side preserved, build side padded).
    left_outer: bool,
    build_width: usize,
    par: usize,
    /// `EXPLAIN ANALYZE` node for `partitions` / `build_rows`.
    stats: Option<Arc<OpStats>>,
}

impl HashJoinIter<'_> {
    fn build_table(&mut self, build: BoxIter<'_>) -> DbResult<()> {
        self.build_rows = drain(build)?;
        let keys = par_map(&self.build_rows, self.par, |r| self.build_key.eval(r))?;
        let npart = join_partitions(self.build_rows.len());
        self.mask = npart as u64 - 1;
        let mut buckets: Vec<Vec<(Datum, u32)>> = vec![Vec::new(); npart];
        for (i, k) in keys.into_iter().enumerate() {
            // NULL keys never join; they are dropped at bucket time.
            if !k.is_null() {
                buckets[(hash_one(&k) & self.mask) as usize].push((k, i as u32));
            }
        }
        if self.par > 1 && npart > 1 && self.build_rows.len() >= PAR_MIN_ROWS {
            let chunk = npart.div_ceil(self.par);
            let mut groups: Vec<Vec<Vec<(Datum, u32)>>> = Vec::new();
            while !buckets.is_empty() {
                let take = chunk.min(buckets.len());
                groups.push(buckets.drain(..take).collect());
            }
            std::thread::scope(|s| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|g| {
                        s.spawn(move || g.into_iter().map(build_partition).collect::<Vec<_>>())
                    })
                    .collect();
                for h in handles {
                    self.parts.extend(join_worker(h));
                }
            });
        } else {
            self.parts = buckets.into_iter().map(build_partition).collect();
        }
        if let Some(stats) = &self.stats {
            use std::sync::atomic::Ordering as AtomicOrdering;
            stats.partitions.store(npart as u64, AtomicOrdering::Relaxed);
            stats.build_rows.store(self.build_rows.len() as u64, AtomicOrdering::Relaxed);
        }
        Ok(())
    }
}

impl BatchIter for HashJoinIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        if let Some(build) = self.build.take() {
            self.build_table(build)?;
        }
        let Some(batch) = self.probe.next_batch()? else { return Ok(None) };
        let keys = par_map(&batch, self.par, |r| self.probe_key.eval(r))?;
        let mut out = Vec::new();
        for (p, k) in batch.iter().zip(&keys) {
            let matches = if k.is_null() {
                None // NULL never equals anything, including NULL (3VL).
            } else {
                self.parts[(hash_one(k) & self.mask) as usize].get(k)
            };
            match matches {
                Some(idxs) => {
                    for &i in idxs {
                        let b = &self.build_rows[i as usize];
                        let (l, r) = if self.build_is_left {
                            (b.as_slice(), &p[..])
                        } else {
                            (&p[..], b.as_slice())
                        };
                        let mut combined = Vec::with_capacity(l.len() + r.len());
                        combined.extend_from_slice(l);
                        combined.extend_from_slice(r);
                        out.push(combined);
                    }
                }
                // LEFT join: the probe row survives with the build side
                // padded — also the path a NULL probe key takes.
                None if self.left_outer => {
                    let mut padded = Vec::with_capacity(p.len() + self.build_width);
                    padded.extend_from_slice(p);
                    padded.extend(std::iter::repeat_n(Datum::Null, self.build_width));
                    out.push(padded);
                }
                None => {}
            }
        }
        Ok(Some(out))
    }
}

/// Radix fan-out for partitioned aggregation. Aggregation streams its
/// input, so the partition count can't be sized from a known row count
/// the way the join build side is — a fixed fan-out keeps the
/// `EXPLAIN ANALYZE` counter a constant of the operator, independent of
/// both data size and parallelism.
const AGG_PARTITIONS: usize = 16;

struct AggregateIter<'a> {
    input: Option<BoxIter<'a>>,
    group_by: Vec<CompiledExpr>,
    /// Compiled argument per call; `None` is `count(*)`.
    args: Vec<Option<CompiledExpr>>,
    calls: Vec<AggCall>,
    funcs: &'a FunctionRegistry,
    par: usize,
    /// `EXPLAIN ANALYZE` node for `partitions`.
    stats: Option<Arc<OpStats>>,
}

impl BatchIter for AggregateIter<'_> {
    fn next_batch(&mut self) -> DbResult<Option<Vec<Row>>> {
        let Some(mut input) = self.input.take() else { return Ok(None) };

        struct Group {
            key: Vec<Datum>,
            accs: Vec<Box<dyn crate::expr::func::Accumulator>>,
            distinct_seen: Vec<HashSet<Datum>>,
            /// Global input sequence of the row that created the group;
            /// emission sorts on it, reproducing single-table insertion
            /// order exactly at any parallelism.
            first_seen: u64,
        }

        /// An evaluated input row: group key, aggregate arguments, and the
        /// global sequence number that pins emission order.
        type KeyedRow = (Vec<Datum>, Vec<Datum>, u64);

        /// One radix partition: a private table over its share of the key
        /// space. Keys are looked up by slice before being cloned, so the
        /// common case (existing group) allocates nothing.
        #[derive(Default)]
        struct AggPart {
            lookup: FxHashMap<Vec<Datum>, u32>,
            groups: Vec<Group>,
        }

        let calls = self.calls.as_slice();
        let funcs = self.funcs;
        let make_group = move |key: Vec<Datum>, first_seen: u64| -> DbResult<Group> {
            let mut accs = Vec::with_capacity(calls.len());
            for c in calls {
                let factory = funcs
                    .aggregate(&c.func)
                    .ok_or(DbError::NotFound { kind: "aggregate", name: c.func.clone() })?;
                accs.push(factory());
            }
            Ok(Group { key, accs, distinct_seen: vec![HashSet::new(); calls.len()], first_seen })
        };

        fn apply(call: &AggCall, group: &mut Group, ci: usize, value: Datum) -> DbResult<()> {
            if call.distinct && (value.is_null() || !group.distinct_seen[ci].insert(value.clone()))
            {
                return Ok(());
            }
            group.accs[ci].update(&value).map_err(|e| match e {
                DbError::TypeMismatch(m) => DbError::TypeMismatch(format!("{}(): {m}", call.func)),
                other => other,
            })
        }

        /// Fold one partition's bucketed rows into its table. Rows arrive
        /// in global sequence order; an error is tagged with the failing
        /// row's sequence so the caller can report the earliest one — the
        /// same error a serial fold would have raised.
        fn fold_part(
            part: &mut AggPart,
            rows: Vec<KeyedRow>,
            calls: &[AggCall],
            make_group: &impl Fn(Vec<Datum>, u64) -> DbResult<Group>,
        ) -> Result<(), (u64, DbError)> {
            for (key, vals, seq) in rows {
                let gi = match part.lookup.get(key.as_slice()) {
                    Some(&i) => i as usize,
                    None => {
                        part.groups.push(make_group(key.clone(), seq).map_err(|e| (seq, e))?);
                        part.lookup.insert(key, (part.groups.len() - 1) as u32);
                        part.groups.len() - 1
                    }
                };
                let group = &mut part.groups[gi];
                for (ci, (call, value)) in calls.iter().zip(vals).enumerate() {
                    apply(call, group, ci, value).map_err(|e| (seq, e))?;
                }
            }
            Ok(())
        }

        let mask = AGG_PARTITIONS as u64 - 1;
        let mut parts: Vec<AggPart> = (0..AGG_PARTITIONS).map(|_| AggPart::default()).collect();
        let mut seq = 0u64;
        let mut key_scratch: Vec<Datum> = Vec::with_capacity(self.group_by.len());
        // The fold into the accumulators is sequential per partition —
        // [`crate::expr::func::Accumulator`] is an open extension trait
        // with no merge operation — but partitions are disjoint by key,
        // so big batches fan both expression evaluation and the partition
        // folds out across worker threads. Streaming batch by batch means
        // the input is never fully materialized here.
        while let Some(batch) = input.next_batch()? {
            if self.par > 1 && batch.len() >= PAR_MIN_ROWS {
                let evaluated: Vec<(Vec<Datum>, Vec<Datum>)> = par_map(&batch, self.par, |row| {
                    let key = self
                        .group_by
                        .iter()
                        .map(|g| g.eval(row))
                        .collect::<DbResult<Vec<Datum>>>()?;
                    let mut vals = Vec::with_capacity(self.args.len());
                    for a in &self.args {
                        vals.push(match a {
                            None => Datum::Int(1), // count(*): a non-null marker per row
                            Some(e) => e.eval(row)?,
                        });
                    }
                    Ok((key, vals))
                })?;
                drop(batch);
                let mut buckets: Vec<Vec<KeyedRow>> =
                    (0..AGG_PARTITIONS).map(|_| Vec::new()).collect();
                for (key, vals) in evaluated {
                    buckets[(hash_one(key.as_slice()) & mask) as usize].push((key, vals, seq));
                    seq += 1;
                }
                let mut work: Vec<(&mut AggPart, Vec<KeyedRow>)> =
                    parts.iter_mut().zip(buckets).collect();
                let chunk = work.len().div_ceil(self.par);
                let mut failures: Vec<(u64, DbError)> = Vec::new();
                std::thread::scope(|s| {
                    let handles: Vec<_> = work
                        .chunks_mut(chunk)
                        .map(|group| {
                            s.spawn(move || {
                                for (part, rows) in group.iter_mut() {
                                    fold_part(part, std::mem::take(rows), calls, &make_group)?;
                                }
                                Ok(())
                            })
                        })
                        .collect();
                    for h in handles {
                        if let Err(e) = join_worker(h) {
                            failures.push(e);
                        }
                    }
                });
                if let Some((_, err)) = failures.into_iter().min_by_key(|(at, _)| *at) {
                    return Err(err);
                }
            } else {
                for row in &batch {
                    key_scratch.clear();
                    for g in &self.group_by {
                        key_scratch.push(g.eval(row)?);
                    }
                    let part = &mut parts[(hash_one(key_scratch.as_slice()) & mask) as usize];
                    let gi = match part.lookup.get(key_scratch.as_slice()) {
                        Some(&i) => i as usize,
                        None => {
                            let key = key_scratch.clone();
                            part.groups.push(make_group(key.clone(), seq)?);
                            part.lookup.insert(key, (part.groups.len() - 1) as u32);
                            part.groups.len() - 1
                        }
                    };
                    let group = &mut part.groups[gi];
                    for (ci, call) in calls.iter().enumerate() {
                        let value = match &self.args[ci] {
                            None => Datum::Int(1), // count(*): a non-null marker per row
                            Some(e) => e.eval(row)?,
                        };
                        apply(call, group, ci, value)?;
                    }
                    seq += 1;
                }
            }
        }

        if let Some(stats) = &self.stats {
            stats.partitions.store(AGG_PARTITIONS as u64, std::sync::atomic::Ordering::Relaxed);
        }

        // A global aggregate over zero rows still produces one row.
        if self.group_by.is_empty() && parts.iter().all(|p| p.groups.is_empty()) {
            parts[0].groups.push(make_group(Vec::new(), 0)?);
        }

        let mut groups: Vec<Group> = parts.into_iter().flat_map(|p| p.groups).collect();
        groups.sort_by_key(|g| g.first_seen);
        let mut out = Vec::with_capacity(groups.len());
        for g in groups {
            let mut row = g.key;
            for acc in &g.accs {
                row.push(acc.finish());
            }
            out.push(row);
        }
        Ok(Some(out))
    }
}
