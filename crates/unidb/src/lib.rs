//! # unidb — the Unifying Database substrate
//!
//! A from-scratch, extensible relational DBMS implementing the storage
//! manager the paper's *Unifying Database* (§5) runs on. It is deliberately
//! built around the extension surface the paper requires of a host DBMS
//! (§6.2–6.5):
//!
//! * **Opaque user-defined types** — values "whose internal and mostly
//!   complex structure is unknown to the DBMS"; the database provides
//!   storage, registered hooks provide display/comparison.
//! * **External functions / user-defined operators** — registered scalar
//!   functions usable anywhere expressions occur: `SELECT` lists, `WHERE`,
//!   `GROUP BY`, `ORDER BY`.
//! * **User-defined index access methods** — domain indexes (k-mer,
//!   suffix) pluggable into query plans, with selectivity hooks feeding the
//!   optimizer.
//! * **Public / user space separation** — the integrated (read-only)
//!   schema versus updatable per-user schemas (§5.1).
//!
//! Architecturally it is a classical single-node engine: slotted pages, a
//! buffer pool with LRU eviction, a write-ahead log with redo recovery,
//! heap files, B+-tree secondary indexes, a recursive-descent SQL parser, a
//! rule-plus-cost optimizer, and a batched pull-based executor that compiles
//! expressions at plan time, fuses `ORDER BY + LIMIT` into a bounded Top-N,
//! and parallelizes scans morsel-by-morsel across worker threads.
//!
//! ```
//! use unidb::Database;
//!
//! let db = Database::in_memory();
//! db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'alpha'), (2, 'beta')").unwrap();
//! let rs = db.execute("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(rs.rows[0][0].as_text(), Some("beta"));
//! ```

pub mod catalog;
pub mod datum;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fxhash;
pub mod index;
pub mod plan;
pub mod sql;
pub mod storage;
pub mod tuple;
pub mod txn;

pub use catalog::Role;
pub use catalog::{ColumnDef, OpaqueTypeDef, TableDef};
pub use datum::{DataType, Datum};
pub use db::{Database, Prepared, ResultSet};
pub use error::{DbError, DbResult};
pub use expr::func::{AggregateFn, FunctionRegistry, ScalarFn};
pub use index::udi::AccessMethod;
pub use storage::heap::Rid;
pub use storage::vfs::{FaultConfig, FaultVfs, StdVfs, Vfs};
pub use txn::{DbTransaction, Engine, Transaction, TxnStats};
