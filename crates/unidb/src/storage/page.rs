//! Slotted pages.
//!
//! Layout (offsets in bytes):
//!
//! ```text
//! 0..2   n_slots   (u16)
//! 2..4   free_end  (u16)  — start of the record area, grows downward
//! 4..    slot array: per slot (offset u16, len u16)
//! ...    free space
//! ...    records, allocated from PAGE_SIZE downward
//! ```
//!
//! Slots are never reused after deletion so record ids stay stable for the
//! lifetime of the page (tombstones carry `offset == 0`).

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// A fixed-size slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        let mut p = Page { data: Box::new([0u8; PAGE_SIZE]) };
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// Reconstruct from raw bytes (e.g. read from disk).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE);
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Page { data }
    }

    /// The raw page image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    /// True when the image carries the columnar-page marker (`0xFFFF`
    /// where a slotted page keeps its slot count — unreachable for
    /// slotted pages, whose slot count tops out at
    /// `(PAGE_SIZE - HEADER) / SLOT = 2047`). See `colpage`.
    pub fn is_columnar(&self) -> bool {
        self.data[0] == 0xFF && self.data[1] == 0xFF
    }

    fn n_slots(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_n_slots(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_free_end(&mut self, v: u16) {
        self.data[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let base = HEADER + slot as usize * SLOT;
        (
            u16::from_le_bytes([self.data[base], self.data[base + 1]]),
            u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]),
        )
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let base = HEADER + slot as usize * SLOT;
        self.data[base..base + 2].copy_from_slice(&offset.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes available for a new record (including its slot entry).
    pub fn free_space(&self) -> usize {
        self.free_end() as usize - (HEADER + self.n_slots() as usize * SLOT)
    }

    /// Largest record this page can currently accept.
    pub fn max_insert(&self) -> usize {
        self.free_space().saturating_sub(SLOT)
    }

    /// Largest record an *empty* page can hold.
    pub const fn max_record() -> usize {
        PAGE_SIZE - HEADER - SLOT
    }

    /// Number of slots ever allocated (live + tombstones).
    pub fn slot_count(&self) -> u16 {
        self.n_slots()
    }

    /// Insert a record; returns the slot, or `None` if it does not fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if record.len() + SLOT > self.free_space() {
            return None;
        }
        let slot = self.n_slots();
        let new_end = self.free_end() - record.len() as u16;
        self.data[new_end as usize..new_end as usize + record.len()].copy_from_slice(record);
        self.set_slot_entry(slot, new_end, record.len() as u16);
        self.set_free_end(new_end);
        self.set_n_slots(slot + 1);
        Some(slot)
    }

    /// Read the record in `slot`; `None` for deleted or unknown slots.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.n_slots() {
            return None;
        }
        let (offset, len) = self.slot_entry(slot);
        if offset == 0 {
            return None; // tombstone
        }
        Some(&self.data[offset as usize..offset as usize + len as usize])
    }

    /// Delete the record in `slot`; returns false if it was already gone.
    /// The space is not reclaimed (no compaction), but the slot id stays
    /// stable forever.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.n_slots() {
            return false;
        }
        let (offset, _) = self.slot_entry(slot);
        if offset == 0 {
            return false;
        }
        self.set_slot_entry(slot, 0, 0);
        true
    }

    /// Overwrite the record in `slot` in place. Only possible when the new
    /// record is no longer than the old one; returns false otherwise.
    pub fn update_in_place(&mut self, slot: u16, record: &[u8]) -> bool {
        if slot >= self.n_slots() {
            return false;
        }
        let (offset, len) = self.slot_entry(slot);
        if offset == 0 || record.len() > len as usize {
            return false;
        }
        self.data[offset as usize..offset as usize + record.len()].copy_from_slice(record);
        self.set_slot_entry(slot, offset, record.len() as u16);
        true
    }

    /// Iterate over live `(slot, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.n_slots()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.n_slots())
            .field("free_space", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.get(99), None);
    }

    #[test]
    fn delete_leaves_stable_tombstone() {
        let mut p = Page::new();
        let s0 = p.insert(b"a").unwrap();
        let s1 = p.insert(b"b").unwrap();
        assert!(p.delete(s0));
        assert!(!p.delete(s0));
        assert_eq!(p.get(s0), None);
        assert_eq!(p.get(s1), Some(&b"b"[..]));
        // New inserts never reuse the dead slot id.
        let s2 = p.insert(b"c").unwrap();
        assert_eq!(s2, 2);
    }

    #[test]
    fn fills_to_capacity() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // Each record consumes 100 + 4 slot bytes out of 8188 usable.
        assert_eq!(n, (PAGE_SIZE - HEADER) / 104);
        assert!(p.free_space() < 104);
        // Everything is still readable.
        assert_eq!(p.iter().count(), n);
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut p = Page::new();
        let rec = vec![1u8; Page::max_record()];
        assert!(p.insert(&rec).is_some());
        assert!(p.insert(b"x").is_none());
    }

    #[test]
    fn update_in_place_rules() {
        let mut p = Page::new();
        let s = p.insert(b"abcdef").unwrap();
        assert!(p.update_in_place(s, b"xyz"));
        assert_eq!(p.get(s), Some(&b"xyz"[..]));
        assert!(!p.update_in_place(s, b"longer than six"), "grew past original allocation");
        assert!(!p.update_in_place(9, b"x"));
        p.delete(s);
        assert!(!p.update_in_place(s, b"x"));
    }

    #[test]
    fn byte_roundtrip() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let copy = Page::from_bytes(p.as_bytes());
        assert_eq!(copy.get(0), Some(&b"persist me"[..]));
    }

    #[test]
    fn empty_record_allowed() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        // Empty records are real (offset points into the record area).
        assert_eq!(p.get(s), Some(&b""[..]));
    }
}
