//! The write-ahead log: logical redo records with CRC-framed entries.
//!
//! Recovery model: a database directory holds a snapshot (written at
//! checkpoint) plus this log of every mutation since. Opening the database
//! loads the snapshot and replays the log; a torn tail (crash mid-append)
//! is detected by the frame CRC and cleanly ignored.
//!
//! Records are *logical* (full row images, qualified table names) rather
//! than physical page deltas — the same format doubles as the transport
//! for ETL delta shipping.

use crate::datum::{DataType, Datum};
use crate::error::{DbError, DbResult};
use crate::tuple::{self, put_varint, take_slice, take_u8, take_varint};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    CreateSpace {
        name: String,
        owner: String,
    },
    CreateTable {
        space: String,
        name: String,
        columns: Vec<(String, DataType, bool)>,
    },
    DropTable {
        space: String,
        name: String,
    },
    Insert {
        table: String,
        row: Vec<Datum>,
    },
    Delete {
        table: String,
        row: Vec<Datum>,
    },
    Update {
        table: String,
        old_row: Vec<Datum>,
        new_row: Vec<Datum>,
    },
    /// Marks a completed checkpoint; replay may start after the last one.
    Checkpoint,
    /// Secondary-index creation (indexes are rebuilt from rows on replay).
    CreateIndex {
        table: String,
        column: String,
        unique: bool,
    },
}

const OP_CREATE_SPACE: u8 = 1;
const OP_CREATE_TABLE: u8 = 2;
const OP_DROP_TABLE: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_DELETE: u8 = 5;
const OP_UPDATE: u8 = 6;
const OP_CHECKPOINT: u8 = 7;
const OP_CREATE_INDEX: u8 = 8;

impl WalRecord {
    /// Serialize the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WalRecord::CreateSpace { name, owner } => {
                buf.push(OP_CREATE_SPACE);
                put_str(&mut buf, name);
                put_str(&mut buf, owner);
            }
            WalRecord::CreateTable { space, name, columns } => {
                buf.push(OP_CREATE_TABLE);
                put_str(&mut buf, space);
                put_str(&mut buf, name);
                put_varint(&mut buf, columns.len() as u64);
                for (cname, ty, nullable) in columns {
                    put_str(&mut buf, cname);
                    put_type(&mut buf, *ty);
                    buf.push(u8::from(*nullable));
                }
            }
            WalRecord::DropTable { space, name } => {
                buf.push(OP_DROP_TABLE);
                put_str(&mut buf, space);
                put_str(&mut buf, name);
            }
            WalRecord::Insert { table, row } => {
                buf.push(OP_INSERT);
                put_str(&mut buf, table);
                put_bytes(&mut buf, &tuple::encode_row(row));
            }
            WalRecord::Delete { table, row } => {
                buf.push(OP_DELETE);
                put_str(&mut buf, table);
                put_bytes(&mut buf, &tuple::encode_row(row));
            }
            WalRecord::Update { table, old_row, new_row } => {
                buf.push(OP_UPDATE);
                put_str(&mut buf, table);
                put_bytes(&mut buf, &tuple::encode_row(old_row));
                put_bytes(&mut buf, &tuple::encode_row(new_row));
            }
            WalRecord::Checkpoint => buf.push(OP_CHECKPOINT),
            WalRecord::CreateIndex { table, column, unique } => {
                buf.push(OP_CREATE_INDEX);
                put_str(&mut buf, table);
                put_str(&mut buf, column);
                buf.push(u8::from(*unique));
            }
        }
        buf
    }

    /// Deserialize a record payload.
    pub fn decode(mut buf: &[u8]) -> DbResult<Self> {
        let op = take_u8(&mut buf)?;
        let rec = match op {
            OP_CREATE_SPACE => {
                WalRecord::CreateSpace { name: take_str(&mut buf)?, owner: take_str(&mut buf)? }
            }
            OP_CREATE_TABLE => {
                let space = take_str(&mut buf)?;
                let name = take_str(&mut buf)?;
                let n = take_varint(&mut buf)? as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    let cname = take_str(&mut buf)?;
                    let ty = take_type(&mut buf)?;
                    let nullable = take_u8(&mut buf)? != 0;
                    columns.push((cname, ty, nullable));
                }
                WalRecord::CreateTable { space, name, columns }
            }
            OP_DROP_TABLE => {
                WalRecord::DropTable { space: take_str(&mut buf)?, name: take_str(&mut buf)? }
            }
            OP_INSERT => WalRecord::Insert {
                table: take_str(&mut buf)?,
                row: tuple::decode_row(&take_bytes(&mut buf)?)?,
            },
            OP_DELETE => WalRecord::Delete {
                table: take_str(&mut buf)?,
                row: tuple::decode_row(&take_bytes(&mut buf)?)?,
            },
            OP_UPDATE => WalRecord::Update {
                table: take_str(&mut buf)?,
                old_row: tuple::decode_row(&take_bytes(&mut buf)?)?,
                new_row: tuple::decode_row(&take_bytes(&mut buf)?)?,
            },
            OP_CHECKPOINT => WalRecord::Checkpoint,
            OP_CREATE_INDEX => WalRecord::CreateIndex {
                table: take_str(&mut buf)?,
                column: take_str(&mut buf)?,
                unique: take_u8(&mut buf)? != 0,
            },
            other => return Err(DbError::Storage(format!("unknown WAL op {other}"))),
        };
        if !buf.is_empty() {
            return Err(DbError::Storage("trailing bytes in WAL record".into()));
        }
        Ok(rec)
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> DbResult<String> {
    let len = take_varint(buf)? as usize;
    String::from_utf8(take_slice(buf, len)?.to_vec())
        .map_err(|_| DbError::Storage("invalid UTF-8 in WAL".into()))
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

fn take_bytes(buf: &mut &[u8]) -> DbResult<Vec<u8>> {
    let len = take_varint(buf)? as usize;
    Ok(take_slice(buf, len)?.to_vec())
}

fn put_type(buf: &mut Vec<u8>, ty: DataType) {
    match ty {
        DataType::Bool => buf.push(0),
        DataType::Int => buf.push(1),
        DataType::Float => buf.push(2),
        DataType::Text => buf.push(3),
        DataType::Blob => buf.push(4),
        DataType::Opaque(id) => {
            buf.push(5);
            put_varint(buf, id as u64);
        }
    }
}

fn take_type(buf: &mut &[u8]) -> DbResult<DataType> {
    Ok(match take_u8(buf)? {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Blob,
        5 => DataType::Opaque(take_varint(buf)? as u32),
        other => return Err(DbError::Storage(format!("unknown type tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE) for frame integrity
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3) of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Appends CRC-framed records to a log file.
pub struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    records_written: u64,
}

impl WalWriter {
    /// Open (append mode, creating if needed).
    pub fn open(path: &Path) -> DbResult<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter { path: path.to_path_buf(), file: BufWriter::new(file), records_written: 0 })
    }

    /// Append one record. Framing: `len (u32 LE) | crc32 (u32 LE) | payload`.
    pub fn append(&mut self, record: &WalRecord) -> DbResult<()> {
        let payload = record.encode();
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc32(&payload).to_le_bytes())?;
        self.file.write_all(&payload)?;
        self.records_written += 1;
        Ok(())
    }

    /// Flush buffered frames and fsync.
    pub fn sync(&mut self) -> DbResult<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }

    /// Truncate the log (after a checkpoint has made it redundant).
    pub fn truncate(&mut self) -> DbResult<()> {
        self.file.flush()?;
        let file = OpenOptions::new().write(true).truncate(true).open(&self.path)?;
        file.sync_data()?;
        let file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        self.file = BufWriter::new(file);
        Ok(())
    }

    /// Number of records appended through this writer.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }
}

/// Read every intact record from a log file; a torn or corrupt tail ends
/// the iteration silently (crash-recovery semantics), but corruption
/// *before* intact data is reported.
pub fn read_log(path: &Path) -> DbResult<Vec<WalRecord>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > bytes.len() {
            break; // torn tail
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // corrupt frame: stop replay here
        }
        records.push(WalRecord::decode(payload)?);
        pos += 8 + len;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("unidb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateSpace { name: "alice".into(), owner: "alice".into() },
            WalRecord::CreateTable {
                space: "public".into(),
                name: "genes".into(),
                columns: vec![
                    ("id".into(), DataType::Int, false),
                    ("seq".into(), DataType::Opaque(3), true),
                ],
            },
            WalRecord::Insert {
                table: "public.genes".into(),
                row: vec![Datum::Int(1), Datum::opaque(3, vec![9, 9])],
            },
            WalRecord::Update {
                table: "public.genes".into(),
                old_row: vec![Datum::Int(1), Datum::Null],
                new_row: vec![Datum::Int(1), Datum::Text("x".into())],
            },
            WalRecord::Delete { table: "public.genes".into(), row: vec![Datum::Int(1)] },
            WalRecord::DropTable { space: "public".into(), name: "genes".into() },
            WalRecord::CreateIndex {
                table: "public.genes".into(),
                column: "id".into(),
                unique: true,
            },
            WalRecord::Checkpoint,
        ]
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for rec in sample_records() {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn crc32_known_value() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_and_read_back() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::open(&path).unwrap();
            for rec in sample_records() {
                w.append(&rec).unwrap();
            }
            w.sync().unwrap();
            assert_eq!(w.records_written(), 8);
        }
        let back = read_log(&path).unwrap();
        assert_eq!(back, sample_records());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_ignored() {
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Checkpoint).unwrap();
            w.sync().unwrap();
        }
        // Append garbage simulating a crash mid-frame.
        use std::io::Write;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[42, 0, 0, 0, 1, 2]).unwrap();
        let back = read_log(&path).unwrap();
        assert_eq!(back, vec![WalRecord::Checkpoint]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Checkpoint).unwrap();
            w.append(&WalRecord::CreateSpace { name: "x".into(), owner: "x".into() }).unwrap();
            w.sync().unwrap();
        }
        // Flip a byte in the second frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let back = read_log(&path).unwrap();
        assert_eq!(back, vec![WalRecord::Checkpoint]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_resets_log() {
        let path = tmp("trunc.wal");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Checkpoint).unwrap();
        w.sync().unwrap();
        w.truncate().unwrap();
        assert!(read_log(&path).unwrap().is_empty());
        // Still usable after truncation.
        w.append(&WalRecord::Checkpoint).unwrap();
        w.sync().unwrap();
        assert_eq!(read_log(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty_log() {
        assert!(read_log(Path::new("/nonexistent/definitely.wal")).unwrap().is_empty());
    }
}
