//! The write-ahead log: logical redo records with CRC-framed entries.
//!
//! Recovery model: a database directory holds a snapshot (written at
//! checkpoint) plus this log of every mutation since. Opening the database
//! loads the snapshot and replays the log; a torn tail (crash mid-append)
//! is detected by the frame CRC and cleanly ignored.
//!
//! Records are *logical* (full row images, qualified table names) rather
//! than physical page deltas — the same format doubles as the transport
//! for ETL delta shipping.
//!
//! All file IO goes through the [`crate::storage::vfs::Vfs`] abstraction so
//! the crash-recovery tests can inject faults. [`WalWriter`] is written to
//! survive them: records are buffered in memory until `sync`, a failed
//! sync leaves the buffer intact for a later retry (so `Ok` from `sync`
//! means *everything* appended so far is durable, in order), and a torn
//! on-disk tail left by a failed write is truncated away before the next
//! attempt.

use crate::datum::{DataType, Datum};
use crate::error::{DbError, DbResult};
use crate::storage::vfs::{Vfs, VfsFile};
use crate::tuple::{self, put_varint, take_slice, take_u8, take_varint};
use std::path::Path;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    CreateSpace {
        name: String,
        owner: String,
    },
    CreateTable {
        space: String,
        name: String,
        columns: Vec<(String, DataType, bool)>,
    },
    DropTable {
        space: String,
        name: String,
    },
    Insert {
        table: String,
        row: Vec<Datum>,
    },
    Delete {
        table: String,
        row: Vec<Datum>,
    },
    Update {
        table: String,
        old_row: Vec<Datum>,
        new_row: Vec<Datum>,
    },
    /// Marks a completed checkpoint; replay may start after the last one.
    Checkpoint,
    /// Secondary-index creation (indexes are rebuilt from rows on replay).
    CreateIndex {
        table: String,
        column: String,
        unique: bool,
    },
    /// Opens an explicit transaction. Replay buffers subsequent records
    /// and applies them only when the matching [`WalRecord::TxnCommit`]
    /// arrives — a crash mid-transaction leaves its records invisible.
    TxnBegin,
    /// Commits the open transaction's buffered records.
    TxnCommit,
    /// Checkpoint epoch marker. The snapshot starts with its epoch and the
    /// WAL's first record names the epoch it continues from; a WAL carrying
    /// an older epoch than the snapshot is a leftover from a crash between
    /// snapshot rename and log truncation and is skipped, making replay
    /// idempotent.
    Epoch(u64),
}

const OP_CREATE_SPACE: u8 = 1;
const OP_CREATE_TABLE: u8 = 2;
const OP_DROP_TABLE: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_DELETE: u8 = 5;
const OP_UPDATE: u8 = 6;
const OP_CHECKPOINT: u8 = 7;
const OP_CREATE_INDEX: u8 = 8;
const OP_TXN_BEGIN: u8 = 9;
const OP_TXN_COMMIT: u8 = 10;
const OP_EPOCH: u8 = 11;

impl WalRecord {
    /// Serialize the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WalRecord::CreateSpace { name, owner } => {
                buf.push(OP_CREATE_SPACE);
                put_str(&mut buf, name);
                put_str(&mut buf, owner);
            }
            WalRecord::CreateTable { space, name, columns } => {
                buf.push(OP_CREATE_TABLE);
                put_str(&mut buf, space);
                put_str(&mut buf, name);
                put_varint(&mut buf, columns.len() as u64);
                for (cname, ty, nullable) in columns {
                    put_str(&mut buf, cname);
                    put_type(&mut buf, *ty);
                    buf.push(u8::from(*nullable));
                }
            }
            WalRecord::DropTable { space, name } => {
                buf.push(OP_DROP_TABLE);
                put_str(&mut buf, space);
                put_str(&mut buf, name);
            }
            WalRecord::Insert { table, row } => {
                buf.push(OP_INSERT);
                put_str(&mut buf, table);
                put_bytes(&mut buf, &tuple::encode_row(row));
            }
            WalRecord::Delete { table, row } => {
                buf.push(OP_DELETE);
                put_str(&mut buf, table);
                put_bytes(&mut buf, &tuple::encode_row(row));
            }
            WalRecord::Update { table, old_row, new_row } => {
                buf.push(OP_UPDATE);
                put_str(&mut buf, table);
                put_bytes(&mut buf, &tuple::encode_row(old_row));
                put_bytes(&mut buf, &tuple::encode_row(new_row));
            }
            WalRecord::Checkpoint => buf.push(OP_CHECKPOINT),
            WalRecord::CreateIndex { table, column, unique } => {
                buf.push(OP_CREATE_INDEX);
                put_str(&mut buf, table);
                put_str(&mut buf, column);
                buf.push(u8::from(*unique));
            }
            WalRecord::TxnBegin => buf.push(OP_TXN_BEGIN),
            WalRecord::TxnCommit => buf.push(OP_TXN_COMMIT),
            WalRecord::Epoch(e) => {
                buf.push(OP_EPOCH);
                put_varint(&mut buf, *e);
            }
        }
        buf
    }

    /// Deserialize a record payload.
    pub fn decode(mut buf: &[u8]) -> DbResult<Self> {
        let op = take_u8(&mut buf)?;
        let rec = match op {
            OP_CREATE_SPACE => {
                WalRecord::CreateSpace { name: take_str(&mut buf)?, owner: take_str(&mut buf)? }
            }
            OP_CREATE_TABLE => {
                let space = take_str(&mut buf)?;
                let name = take_str(&mut buf)?;
                let n = take_varint(&mut buf)? as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    let cname = take_str(&mut buf)?;
                    let ty = take_type(&mut buf)?;
                    let nullable = take_u8(&mut buf)? != 0;
                    columns.push((cname, ty, nullable));
                }
                WalRecord::CreateTable { space, name, columns }
            }
            OP_DROP_TABLE => {
                WalRecord::DropTable { space: take_str(&mut buf)?, name: take_str(&mut buf)? }
            }
            OP_INSERT => WalRecord::Insert {
                table: take_str(&mut buf)?,
                row: tuple::decode_row(&take_bytes(&mut buf)?)?,
            },
            OP_DELETE => WalRecord::Delete {
                table: take_str(&mut buf)?,
                row: tuple::decode_row(&take_bytes(&mut buf)?)?,
            },
            OP_UPDATE => WalRecord::Update {
                table: take_str(&mut buf)?,
                old_row: tuple::decode_row(&take_bytes(&mut buf)?)?,
                new_row: tuple::decode_row(&take_bytes(&mut buf)?)?,
            },
            OP_CHECKPOINT => WalRecord::Checkpoint,
            OP_CREATE_INDEX => WalRecord::CreateIndex {
                table: take_str(&mut buf)?,
                column: take_str(&mut buf)?,
                unique: take_u8(&mut buf)? != 0,
            },
            OP_TXN_BEGIN => WalRecord::TxnBegin,
            OP_TXN_COMMIT => WalRecord::TxnCommit,
            OP_EPOCH => WalRecord::Epoch(take_varint(&mut buf)?),
            other => return Err(DbError::Storage(format!("unknown WAL op {other}"))),
        };
        if !buf.is_empty() {
            return Err(DbError::Storage("trailing bytes in WAL record".into()));
        }
        Ok(rec)
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> DbResult<String> {
    let len = take_varint(buf)? as usize;
    String::from_utf8(take_slice(buf, len)?.to_vec())
        .map_err(|_| DbError::Storage("invalid UTF-8 in WAL".into()))
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

fn take_bytes(buf: &mut &[u8]) -> DbResult<Vec<u8>> {
    let len = take_varint(buf)? as usize;
    Ok(take_slice(buf, len)?.to_vec())
}

fn put_type(buf: &mut Vec<u8>, ty: DataType) {
    match ty {
        DataType::Bool => buf.push(0),
        DataType::Int => buf.push(1),
        DataType::Float => buf.push(2),
        DataType::Text => buf.push(3),
        DataType::Blob => buf.push(4),
        DataType::Opaque(id) => {
            buf.push(5);
            put_varint(buf, id as u64);
        }
    }
}

fn take_type(buf: &mut &[u8]) -> DbResult<DataType> {
    Ok(match take_u8(buf)? {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Blob,
        5 => DataType::Opaque(take_varint(buf)? as u32),
        other => return Err(DbError::Storage(format!("unknown type tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE) for frame integrity
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3) of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Appends CRC-framed records to a log file, hardened against IO faults.
///
/// State machine: `append` only buffers (no IO, so it cannot fail and no
/// partial transaction ever reaches the disk behind the engine's back);
/// `sync` writes the whole buffer after `confirmed` and fsyncs. On any
/// failure the buffer is retained and the on-disk bytes past `confirmed`
/// are treated as garbage — the next `sync` truncates them away and
/// rewrites everything, so a successful `sync` always means "every record
/// appended so far is durable, in order".
pub struct WalWriter {
    file: Box<dyn VfsFile>,
    /// Bytes known durable and valid on disk.
    confirmed: u64,
    /// Framed records appended but not yet confirmed durable.
    buf: Vec<u8>,
    /// The file may hold garbage past `confirmed` (a torn write); it must
    /// be truncated before the next write.
    dirty_tail: bool,
    /// A requested truncation has not reached the disk yet; it must be
    /// applied (and fsynced) before anything else is written.
    pending_truncate: bool,
    records_written: u64,
    syncs: u64,
    sync_failures: u64,
}

impl WalWriter {
    /// Open the log, trusting the first `valid_len` bytes (as reported by
    /// [`read_log`]). Anything past that is a torn tail from a previous
    /// crash and is truncated away on the first sync.
    pub fn open(vfs: &dyn Vfs, path: &Path, valid_len: u64) -> DbResult<Self> {
        let mut file = vfs.open(path)?;
        let disk_len = file.len()?;
        Ok(WalWriter {
            file,
            confirmed: valid_len,
            buf: Vec::new(),
            dirty_tail: disk_len > valid_len,
            pending_truncate: false,
            records_written: 0,
            syncs: 0,
            sync_failures: 0,
        })
    }

    /// Open a fresh log at `path`, discarding any existing content.
    pub fn create(vfs: &dyn Vfs, path: &Path) -> DbResult<Self> {
        vfs.remove_file(path)?;
        WalWriter::open(vfs, path, 0)
    }

    /// Append one record to the in-memory tail. Framing:
    /// `len (u32 LE) | crc32 (u32 LE) | payload`. Durable only after the
    /// next successful [`WalWriter::sync`].
    pub fn append(&mut self, record: &WalRecord) {
        let payload = record.encode();
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.records_written += 1;
    }

    /// Make every appended record durable. Retries any truncation or tail
    /// cleanup a previous failure left behind, in order, before writing.
    pub fn sync(&mut self) -> DbResult<()> {
        let mut span = genalg_obs::tracer().span("wal.sync");
        span.field("bytes", self.buf.len());
        match self.sync_inner() {
            Ok(()) => {
                self.syncs += 1;
                Ok(())
            }
            Err(e) => {
                self.sync_failures += 1;
                span.field("failed", true);
                Err(e)
            }
        }
    }

    fn sync_inner(&mut self) -> DbResult<()> {
        if self.pending_truncate {
            self.file.truncate(0)?;
            self.file.sync()?;
            self.pending_truncate = false;
            self.dirty_tail = false;
            self.confirmed = 0;
        }
        if self.dirty_tail {
            self.file.truncate(self.confirmed)?;
            self.file.sync()?;
            self.dirty_tail = false;
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        // A failed write below may leave a torn tail past `confirmed`.
        self.dirty_tail = true;
        self.file.write_at(self.confirmed, &self.buf)?;
        self.file.sync()?;
        self.confirmed += self.buf.len() as u64;
        self.buf.clear();
        self.dirty_tail = false;
        Ok(())
    }

    /// Truncate the log (after a checkpoint has made it redundant),
    /// fsyncing the truncation before any new record can be written. On
    /// failure the truncation stays pending: no later write reaches the
    /// disk until a retry succeeds, so stale pre-checkpoint records can
    /// never be followed by post-checkpoint ones.
    pub fn truncate(&mut self) -> DbResult<()> {
        self.buf.clear();
        self.pending_truncate = true;
        self.sync()
    }

    /// Number of records appended through this writer.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Successful [`WalWriter::sync`] calls.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Failed [`WalWriter::sync`] calls (each leaves the buffer intact
    /// for a retry).
    pub fn sync_failures(&self) -> u64 {
        self.sync_failures
    }

    /// Bytes confirmed durable on disk.
    pub fn confirmed_len(&self) -> u64 {
        self.confirmed
    }
}

/// Read every intact record from a log file, with the byte length of the
/// valid prefix. A torn or corrupt tail ends the iteration silently
/// (crash-recovery semantics) — the returned length lets the writer resume
/// right where the intact records end — but corruption *before* intact
/// data is reported.
pub fn read_log_prefix(vfs: &dyn Vfs, path: &Path) -> DbResult<(Vec<WalRecord>, u64)> {
    let Some(bytes) = vfs.read_file(path)? else {
        return Ok((Vec::new(), 0));
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > bytes.len() {
            break; // torn tail
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // corrupt frame: stop replay here
        }
        records.push(WalRecord::decode(payload)?);
        pos += 8 + len;
    }
    Ok((records, pos as u64))
}

/// [`read_log_prefix`] without the length, for callers that only replay.
pub fn read_log(vfs: &dyn Vfs, path: &Path) -> DbResult<Vec<WalRecord>> {
    read_log_prefix(vfs, path).map(|(records, _)| records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::vfs::{FaultConfig, FaultVfs};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        PathBuf::from("/wal").join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateSpace { name: "alice".into(), owner: "alice".into() },
            WalRecord::CreateTable {
                space: "public".into(),
                name: "genes".into(),
                columns: vec![
                    ("id".into(), DataType::Int, false),
                    ("seq".into(), DataType::Opaque(3), true),
                ],
            },
            WalRecord::Insert {
                table: "public.genes".into(),
                row: vec![Datum::Int(1), Datum::opaque(3, vec![9, 9])],
            },
            WalRecord::Update {
                table: "public.genes".into(),
                old_row: vec![Datum::Int(1), Datum::Null],
                new_row: vec![Datum::Int(1), Datum::Text("x".into())],
            },
            WalRecord::Delete { table: "public.genes".into(), row: vec![Datum::Int(1)] },
            WalRecord::DropTable { space: "public".into(), name: "genes".into() },
            WalRecord::CreateIndex {
                table: "public.genes".into(),
                column: "id".into(),
                unique: true,
            },
            WalRecord::Checkpoint,
            WalRecord::TxnBegin,
            WalRecord::TxnCommit,
            WalRecord::Epoch(42),
        ]
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for rec in sample_records() {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn crc32_known_value() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_and_read_back() {
        let vfs = FaultVfs::reliable();
        let path = tmp("roundtrip.wal");
        {
            let mut w = WalWriter::create(&vfs, &path).unwrap();
            for rec in sample_records() {
                w.append(&rec);
            }
            w.sync().unwrap();
            assert_eq!(w.records_written(), 11);
        }
        let back = read_log(&vfs, &path).unwrap();
        assert_eq!(back, sample_records());
    }

    #[test]
    fn torn_tail_ignored() {
        let vfs = FaultVfs::reliable();
        let path = tmp("torn.wal");
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        w.append(&WalRecord::Checkpoint);
        w.sync().unwrap();
        // Append garbage simulating a crash mid-frame.
        let mut f = vfs.open(&path).unwrap();
        let len = f.len().unwrap();
        f.write_at(len, &[42, 0, 0, 0, 1, 2]).unwrap();
        let (back, valid) = read_log_prefix(&vfs, &path).unwrap();
        assert_eq!(back, vec![WalRecord::Checkpoint]);
        assert_eq!(valid, len, "valid prefix ends where the garbage starts");
    }

    /// A torn tail record with a CRC mismatch is dropped, not an error:
    /// replay returns every intact record before it.
    #[test]
    fn corrupt_crc_tail_dropped_not_error() {
        let vfs = FaultVfs::reliable();
        let path = tmp("crc.wal");
        let intact = vec![
            WalRecord::Checkpoint,
            WalRecord::CreateSpace { name: "x".into(), owner: "x".into() },
        ];
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        for rec in &intact {
            w.append(rec);
        }
        w.append(&WalRecord::CreateSpace { name: "torn".into(), owner: "torn".into() });
        w.sync().unwrap();
        let valid_before = {
            let (records, valid) = read_log_prefix(&vfs, &path).unwrap();
            assert_eq!(records.len(), 3);
            valid
        };
        // Flip a byte in the last frame's payload: the CRC no longer
        // matches, so that record reads as a torn tail.
        let mut f = vfs.open(&path).unwrap();
        let last = f.len().unwrap() - 1;
        let mut b = [0u8; 1];
        assert_eq!(f.read_at(last, &mut b).unwrap(), 1);
        f.write_at(last, &[b[0] ^ 0xFF]).unwrap();
        let (back, valid) = read_log_prefix(&vfs, &path).unwrap();
        assert_eq!(back, intact, "intact prefix survives, torn record is dropped");
        assert!(valid < valid_before);
    }

    #[test]
    fn truncate_resets_log() {
        let vfs = FaultVfs::reliable();
        let path = tmp("trunc.wal");
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        w.append(&WalRecord::Checkpoint);
        w.sync().unwrap();
        w.truncate().unwrap();
        assert!(read_log(&vfs, &path).unwrap().is_empty());
        // Still usable after truncation.
        w.append(&WalRecord::Checkpoint);
        w.sync().unwrap();
        assert_eq!(read_log(&vfs, &path).unwrap().len(), 1);
    }

    #[test]
    fn missing_file_is_empty_log() {
        let vfs = FaultVfs::reliable();
        assert!(read_log(&vfs, Path::new("/nonexistent/definitely.wal")).unwrap().is_empty());
    }

    /// A failed sync keeps the buffer: a later sync lands every record,
    /// in order, with nothing lost or duplicated.
    #[test]
    fn failed_sync_retries_buffered_records() {
        let path = tmp("retry.wal");
        let mut cfg = FaultConfig::reliable();
        cfg.sync_fail_prob = 1.0;
        let vfs = FaultVfs::new(cfg);
        vfs.disarm();
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        w.append(&WalRecord::Epoch(1));
        vfs.arm();
        assert!(matches!(w.sync(), Err(DbError::Io(_))));
        w.append(&WalRecord::Checkpoint);
        assert!(matches!(w.sync(), Err(DbError::Io(_))));
        vfs.disarm();
        w.sync().unwrap();
        let back = read_log(&vfs, &path).unwrap();
        assert_eq!(back, vec![WalRecord::Epoch(1), WalRecord::Checkpoint]);
    }

    /// A torn write leaves garbage past the confirmed prefix; the next
    /// sync truncates it and rewrites, so readers never see the tear.
    #[test]
    fn torn_write_cleaned_up_on_retry() {
        let path = tmp("torn-retry.wal");
        let mut cfg = FaultConfig::reliable();
        cfg.torn_write_prob = 1.0;
        let vfs = FaultVfs::new(cfg);
        vfs.disarm();
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        w.append(&WalRecord::CreateSpace { name: "a".into(), owner: "a".into() });
        w.sync().unwrap();
        w.append(&WalRecord::CreateSpace { name: "b".into(), owner: "b".into() });
        vfs.arm();
        assert!(matches!(w.sync(), Err(DbError::Io(_))));
        vfs.disarm();
        w.sync().unwrap();
        let back = read_log(&vfs, &path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(w.confirmed_len(), vfs.open(&path).unwrap().len().unwrap());
    }

    /// A failed truncation stays pending: nothing is written until the
    /// retry succeeds, so stale records can never precede fresh ones.
    #[test]
    fn failed_truncate_blocks_writes_until_retried() {
        let path = tmp("trunc-fail.wal");
        let mut cfg = FaultConfig::reliable();
        cfg.sync_fail_prob = 1.0;
        let vfs = FaultVfs::new(cfg);
        vfs.disarm();
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        w.append(&WalRecord::Epoch(7));
        w.sync().unwrap();
        vfs.arm();
        assert!(w.truncate().is_err());
        vfs.disarm();
        w.append(&WalRecord::Checkpoint);
        w.sync().unwrap();
        let back = read_log(&vfs, &path).unwrap();
        assert_eq!(back, vec![WalRecord::Checkpoint], "stale pre-truncate record discarded");
    }

    /// Opening at the valid prefix of a file with a torn tail resumes
    /// appending over the garbage.
    #[test]
    fn open_at_valid_prefix_overwrites_garbage() {
        let vfs = FaultVfs::reliable();
        let path = tmp("resume.wal");
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        w.append(&WalRecord::Checkpoint);
        w.sync().unwrap();
        let mut f = vfs.open(&path).unwrap();
        let len = f.len().unwrap();
        f.write_at(len, &[9, 9, 9]).unwrap();
        let (records, valid) = read_log_prefix(&vfs, &path).unwrap();
        assert_eq!(records.len(), 1);
        let mut w = WalWriter::open(&vfs, &path, valid).unwrap();
        w.append(&WalRecord::Epoch(3));
        w.sync().unwrap();
        let back = read_log(&vfs, &path).unwrap();
        assert_eq!(back, vec![WalRecord::Checkpoint, WalRecord::Epoch(3)]);
    }
}
