//! Columnar (column-group) pages and per-page zone maps.
//!
//! A columnar page is a second on-page layout next to the slotted row
//! page: the live rows of one heap page transposed into per-column
//! *segments*, each independently encoded as PLAIN (the row codec's
//! tagged datums), RLE (run-length, for sorted/repetitive runs) or DICT
//! (distinct values + 1-byte codes, for low-NDV columns). The first two
//! bytes of the page image carry the marker `0xFFFF`, a slot count no
//! slotted page can reach (`n_slots <= (PAGE_SIZE - 4) / 4 = 2047`), so
//! the two kinds coexist in one page store.
//!
//! ```text
//! 0..2   0xFFFF    columnar page marker (impossible slotted n_slots)
//! 2..4   reserved  (zero)
//! 4..    varint n_rows, varint n_cols,
//!        then per column: tag u8 (0=PLAIN 1=RLE 2=DICT),
//!                         varint seg_len, seg_len segment bytes
//! ```
//!
//! Segment bodies:
//! - PLAIN: `n_rows` tagged datums, concatenated.
//! - RLE:   varint n_runs, then per run varint count + tagged datum.
//! - DICT:  varint n_values, the distinct tagged datums in first-seen
//!   order, then `n_rows` 1-byte codes.
//!
//! At runtime the executor keeps decoded [`ColumnPage`]s in a per-table
//! cache so selective scans decode only the column segments a query
//! references. The *zone map* ([`PageZone`]) is the pruning side: per
//! page and per column (first [`ZONE_COLS`]) the min/max over non-NULL
//! values and the NULL count, consulted before a page is read at all.
//!
//! Zone-map soundness leans on two engine invariants: comparison
//! operators evaluate through [`Datum::total_cmp`], and `sql_eq(a, b)`
//! implies `total_cmp(a, b) == Equal`. Min/max are therefore computed
//! with `total_cmp` over non-NULL values, and a refuted range bound
//! cannot hide a row the predicate would have accepted. NULL rows never
//! pass a comparison (3VL: unknown is not TRUE), so they are covered by
//! the null-count side of the zone.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::storage::page::{Page, PAGE_SIZE};
use crate::tuple::{put_datum, put_varint, take_datum, take_slice, take_u8, take_varint, Row};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Zone maps cover the first `ZONE_COLS` columns of a table; wider
/// tables keep exact zones for the leading columns and simply cannot
/// prune on the tail.
pub const ZONE_COLS: usize = 16;

/// Marker in the first two bytes of a columnar page image.
pub const COLUMNAR_MARKER: u16 = 0xFFFF;

const TAG_PLAIN: u8 = 0;
const TAG_RLE: u8 = 1;
const TAG_DICT: u8 = 2;

/// Payload starts after the 2-byte marker + 2 reserved bytes.
const COL_HEADER: usize = 4;

// ---------------------------------------------------------------------------
// Zone maps
// ---------------------------------------------------------------------------

/// Per-column zone entry: NULL count plus min/max over non-NULL values
/// (absent when every observed value was NULL).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColZone {
    pub nulls: u32,
    pub min: Option<Datum>,
    pub max: Option<Datum>,
}

impl ColZone {
    fn observe(&mut self, d: &Datum) {
        if d.is_null() {
            self.nulls += 1;
            return;
        }
        match &self.min {
            Some(m) if d.total_cmp(m) != Ordering::Less => {}
            _ => self.min = Some(d.clone()),
        }
        match &self.max {
            Some(m) if d.total_cmp(m) != Ordering::Greater => {}
            _ => self.max = Some(d.clone()),
        }
    }
}

/// Zone map for one heap page: row count plus a [`ColZone`] per leading
/// column. Chunk/overflow continuation pages host no row starts, so
/// their zones stay empty; a row's zone entry lives on the page its
/// stub starts on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PageZone {
    pub rows: u32,
    pub cols: Vec<ColZone>,
}

impl PageZone {
    /// Fold one (fully decoded) row into the zone. Used incrementally on
    /// insert and by full-page rebuilds after delete/update.
    pub fn observe_row(&mut self, row: &[Datum]) {
        self.rows += 1;
        let n = row.len().min(ZONE_COLS);
        if self.cols.len() < n {
            self.cols.resize(n, ColZone::default());
        }
        for (i, d) in row.iter().take(n).enumerate() {
            self.cols[i].observe(d);
        }
    }

    /// Rebuild from scratch over a page's live rows.
    pub fn rebuild<'a>(rows: impl Iterator<Item = &'a Row>) -> PageZone {
        let mut z = PageZone::default();
        for r in rows {
            z.observe_row(r);
        }
        z
    }

    /// True when the zone proves no row on this page can satisfy every
    /// bound — the page may be skipped without reading it.
    ///
    /// Conservative by construction: a bound on a column the zone does
    /// not cover contributes nothing.
    pub fn refutes(&self, bounds: &[ColBound]) -> bool {
        if self.rows == 0 {
            return true;
        }
        for b in bounds {
            let Some(cz) = self.cols.get(b.col) else { continue };
            let non_null = self.rows - cz.nulls;
            if b.require_non_null && non_null == 0 {
                return true;
            }
            if b.require_null && cz.nulls == 0 {
                return true;
            }
            if (b.lo.is_some() || b.hi.is_some()) && non_null == 0 {
                // Comparisons over NULL are unknown, never TRUE.
                return true;
            }
            if let (Some((lo, incl)), Some(max)) = (&b.lo, &cz.max) {
                match max.total_cmp(lo) {
                    Ordering::Less => return true,
                    Ordering::Equal if !incl => return true,
                    _ => {}
                }
            }
            if let (Some((hi, incl)), Some(min)) = (&b.hi, &cz.min) {
                match min.total_cmp(hi) {
                    Ordering::Greater => return true,
                    Ordering::Equal if !incl => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

/// One column's contribution to a conjunctive predicate, extracted from
/// the compiled filter for zone-map refutation. `lo`/`hi` carry the
/// bound value and whether it is inclusive; an equality folds to
/// `lo == hi`, both inclusive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColBound {
    pub col: usize,
    pub lo: Option<(Datum, bool)>,
    pub hi: Option<(Datum, bool)>,
    pub require_null: bool,
    pub require_non_null: bool,
}

impl ColBound {
    pub fn new(col: usize) -> Self {
        ColBound { col, ..Default::default() }
    }

    /// Tighten `lo` to the greater of the existing and new bound.
    pub fn add_lo(&mut self, v: Datum, inclusive: bool) {
        let replace = match &self.lo {
            Some((cur, cur_incl)) => match v.total_cmp(cur) {
                Ordering::Greater => true,
                Ordering::Equal => *cur_incl && !inclusive,
                Ordering::Less => false,
            },
            None => true,
        };
        if replace {
            self.lo = Some((v, inclusive));
        }
    }

    /// Tighten `hi` to the lesser of the existing and new bound.
    pub fn add_hi(&mut self, v: Datum, inclusive: bool) {
        let replace = match &self.hi {
            Some((cur, cur_incl)) => match v.total_cmp(cur) {
                Ordering::Less => true,
                Ordering::Equal => *cur_incl && !inclusive,
                Ordering::Greater => false,
            },
            None => true,
        };
        if replace {
            self.hi = Some((v, inclusive));
        }
    }
}

/// All zone maps of one table, indexed by page number. Pages the vector
/// does not reach (or continuation pages that never saw a row start)
/// read as empty zones — which refute everything, matching the fact
/// that no row *starts* there.
#[derive(Debug, Default)]
pub struct ZoneMaps {
    pages: Vec<PageZone>,
}

impl ZoneMaps {
    /// Zone of `page_no`, if a row was ever observed there.
    pub fn page(&self, page_no: u32) -> Option<&PageZone> {
        self.pages.get(page_no as usize)
    }

    /// Fold a newly inserted row into `page_no`'s zone.
    pub fn observe_insert(&mut self, page_no: u32, row: &[Datum]) {
        let idx = page_no as usize;
        if self.pages.len() <= idx {
            self.pages.resize(idx + 1, PageZone::default());
        }
        self.pages[idx].observe_row(row);
    }

    /// Replace `page_no`'s zone wholesale (post delete/update rebuild).
    pub fn set_page(&mut self, page_no: u32, zone: PageZone) {
        let idx = page_no as usize;
        if self.pages.len() <= idx {
            self.pages.resize(idx + 1, PageZone::default());
        }
        self.pages[idx] = zone;
    }

    /// Number of pages with a zone entry.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Drop everything (table truncation / full reload).
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

// ---------------------------------------------------------------------------
// Columnar pages
// ---------------------------------------------------------------------------

/// Encoding of one column segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    Plain,
    Rle,
    Dict,
}

/// One encoded column segment.
#[derive(Debug, Clone)]
pub struct ColSegment {
    enc: Encoding,
    bytes: Vec<u8>,
}

impl ColSegment {
    pub fn encoding(&self) -> Encoding {
        self.enc
    }

    /// Encoded size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// A heap page's live rows in columnar form: one [`ColSegment`] per
/// column, rows in slot order. Built only for pages whose rows all share
/// one arity (the invariant every table page satisfies); [`None`] from
/// [`ColumnPage::build`] means "keep the row layout for this page".
#[derive(Debug, Clone)]
pub struct ColumnPage {
    n_rows: u32,
    segs: Vec<ColSegment>,
}

impl ColumnPage {
    /// Transpose and encode `rows`. Returns `None` when the rows do not
    /// share one arity or there is nothing to encode.
    pub fn build(rows: &[Row]) -> Option<ColumnPage> {
        let first = rows.first()?;
        let arity = first.len();
        if arity == 0 || rows.iter().any(|r| r.len() != arity) {
            return None;
        }
        let mut segs = Vec::with_capacity(arity);
        for c in 0..arity {
            let col: Vec<&Datum> = rows.iter().map(|r| &r[c]).collect();
            segs.push(encode_segment(&col));
        }
        Some(ColumnPage { n_rows: rows.len() as u32, segs })
    }

    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.segs.len()
    }

    /// The raw segment for column `c` (for size/encoding introspection).
    pub fn segment(&self, c: usize) -> Option<&ColSegment> {
        self.segs.get(c)
    }

    /// Decode column `c` into `n_rows` datums.
    pub fn decode_col(&self, c: usize) -> DbResult<Vec<Datum>> {
        let seg = self
            .segs
            .get(c)
            .ok_or_else(|| DbError::Storage(format!("columnar page has no column {c}")))?;
        decode_segment(seg, self.n_rows as usize)
    }

    /// Materialize rows, decoding only the columns `mask` marks as
    /// referenced (all of the first `prefix` columns when `mask` is
    /// `None`); unreferenced positions hold `Datum::Null` placeholders.
    /// Returns the number of segments decoded.
    pub fn emit_rows(
        &self,
        prefix: usize,
        mask: Option<&[bool]>,
        mut on_row: impl FnMut(&[Datum]) -> DbResult<()>,
    ) -> DbResult<usize> {
        let width = self.segs.len().min(prefix);
        let mut cols: Vec<Option<Vec<Datum>>> = Vec::with_capacity(width);
        let mut decoded = 0usize;
        for c in 0..width {
            let wanted = mask.is_none_or(|m| m.get(c).copied().unwrap_or(false));
            if wanted {
                cols.push(Some(self.decode_col(c)?));
                decoded += 1;
            } else {
                cols.push(None);
            }
        }
        let mut row: Row = vec![Datum::Null; width];
        for r in 0..self.n_rows as usize {
            for (c, col) in cols.iter().enumerate() {
                row[c] = match col {
                    Some(v) => v[r].clone(),
                    None => Datum::Null,
                };
            }
            on_row(&row)?;
        }
        Ok(decoded)
    }

    /// Serialize into a page image. `None` when the encoded form does
    /// not fit in [`PAGE_SIZE`] (the caller keeps the row layout).
    pub fn to_page(&self) -> Option<Page> {
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        buf.extend_from_slice(&COLUMNAR_MARKER.to_le_bytes());
        buf.extend_from_slice(&[0, 0]);
        put_varint(&mut buf, self.n_rows as u64);
        put_varint(&mut buf, self.segs.len() as u64);
        for seg in &self.segs {
            buf.push(match seg.enc {
                Encoding::Plain => TAG_PLAIN,
                Encoding::Rle => TAG_RLE,
                Encoding::Dict => TAG_DICT,
            });
            put_varint(&mut buf, seg.bytes.len() as u64);
            buf.extend_from_slice(&seg.bytes);
        }
        if buf.len() > PAGE_SIZE {
            return None;
        }
        buf.resize(PAGE_SIZE, 0);
        Some(Page::from_bytes(&buf))
    }

    /// Deserialize a page image; `Ok(None)` when the page is not
    /// columnar (a slotted row page).
    pub fn from_page(page: &Page) -> DbResult<Option<ColumnPage>> {
        if !page.is_columnar() {
            return Ok(None);
        }
        let mut buf = &page.as_bytes()[COL_HEADER..];
        let n_rows = take_varint(&mut buf)? as u32;
        let n_cols = take_varint(&mut buf)? as usize;
        if n_cols > PAGE_SIZE {
            return Err(DbError::Storage(format!("columnar page claims {n_cols} columns")));
        }
        let mut segs = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let enc = match take_u8(&mut buf)? {
                TAG_PLAIN => Encoding::Plain,
                TAG_RLE => Encoding::Rle,
                TAG_DICT => Encoding::Dict,
                other => return Err(DbError::Storage(format!("unknown segment encoding {other}"))),
            };
            let len = take_varint(&mut buf)? as usize;
            let bytes = take_slice(&mut buf, len)?.to_vec();
            segs.push(ColSegment { enc, bytes });
        }
        Ok(Some(ColumnPage { n_rows, segs }))
    }
}

/// Pick the smallest of PLAIN / RLE / DICT for one column. Run and
/// dictionary identity use the *encoded bytes* of each value, so
/// representation fidelity survives (e.g. `Int(3)` and `Float(3.0)`
/// compare SQL-equal but stay distinct dictionary entries).
fn encode_segment(col: &[&Datum]) -> ColSegment {
    let encoded: Vec<Vec<u8>> = col
        .iter()
        .map(|d| {
            let mut b = Vec::new();
            put_datum(&mut b, d);
            b
        })
        .collect();
    let plain_size: usize = encoded.iter().map(Vec::len).sum();

    // Run-length candidate.
    let mut runs: Vec<(usize, u32)> = Vec::new(); // (index of representative, count)
    for (i, e) in encoded.iter().enumerate() {
        match runs.last_mut() {
            Some((rep, count)) if encoded[*rep] == *e => *count += 1,
            _ => runs.push((i, 1)),
        }
    }
    let mut rle_size = varint_len(runs.len() as u64);
    for (rep, count) in &runs {
        rle_size += varint_len(u64::from(*count)) + encoded[*rep].len();
    }

    // Dictionary candidate (≤ 255 distinct values → 1-byte codes).
    let mut dict: Vec<usize> = Vec::new(); // representatives, first-seen order
    let mut codes: Vec<u8> = Vec::with_capacity(encoded.len());
    let mut index: HashMap<&[u8], u8> = HashMap::new();
    let mut dict_ok = true;
    for (i, e) in encoded.iter().enumerate() {
        match index.get(e.as_slice()) {
            Some(&code) => codes.push(code),
            None => {
                if dict.len() >= 255 {
                    dict_ok = false;
                    break;
                }
                let code = dict.len() as u8;
                index.insert(e.as_slice(), code);
                dict.push(i);
                codes.push(code);
            }
        }
    }
    let dict_size = if dict_ok {
        varint_len(dict.len() as u64)
            + dict.iter().map(|&i| encoded[i].len()).sum::<usize>()
            + encoded.len()
    } else {
        usize::MAX
    };

    if rle_size < plain_size && rle_size <= dict_size {
        let mut bytes = Vec::with_capacity(rle_size);
        put_varint(&mut bytes, runs.len() as u64);
        for (rep, count) in &runs {
            put_varint(&mut bytes, u64::from(*count));
            bytes.extend_from_slice(&encoded[*rep]);
        }
        ColSegment { enc: Encoding::Rle, bytes }
    } else if dict_size < plain_size {
        let mut bytes = Vec::with_capacity(dict_size);
        put_varint(&mut bytes, dict.len() as u64);
        for &i in &dict {
            bytes.extend_from_slice(&encoded[i]);
        }
        bytes.extend_from_slice(&codes);
        ColSegment { enc: Encoding::Dict, bytes }
    } else {
        ColSegment { enc: Encoding::Plain, bytes: encoded.concat() }
    }
}

fn decode_segment(seg: &ColSegment, n_rows: usize) -> DbResult<Vec<Datum>> {
    let mut buf = seg.bytes.as_slice();
    let mut out = Vec::with_capacity(n_rows);
    match seg.enc {
        Encoding::Plain => {
            for _ in 0..n_rows {
                out.push(take_datum(&mut buf)?);
            }
        }
        Encoding::Rle => {
            let n_runs = take_varint(&mut buf)? as usize;
            for _ in 0..n_runs {
                let count = take_varint(&mut buf)? as usize;
                let v = take_datum(&mut buf)?;
                for _ in 0..count {
                    out.push(v.clone());
                }
            }
        }
        Encoding::Dict => {
            let n_values = take_varint(&mut buf)? as usize;
            let mut values = Vec::with_capacity(n_values);
            for _ in 0..n_values {
                values.push(take_datum(&mut buf)?);
            }
            for _ in 0..n_rows {
                let code = take_u8(&mut buf)? as usize;
                let v = values.get(code).ok_or_else(|| {
                    DbError::Storage(format!("dictionary code {code} out of range"))
                })?;
                out.push(v.clone());
            }
        }
    }
    if out.len() != n_rows {
        return Err(DbError::Storage(format!(
            "segment decoded {} rows, expected {n_rows}",
            out.len()
        )));
    }
    Ok(out)
}

fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[&[Datum]]) -> Vec<Row> {
        vals.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn encoding_choice_matches_data_shape() {
        // Low-NDV text → DICT; long runs → RLE; distinct ints → PLAIN.
        let rs: Vec<Row> = (0..200)
            .map(|i| {
                vec![
                    Datum::Int(i),                                                // distinct
                    Datum::Text(if i % 2 == 0 { "chr1" } else { "chr2" }.into()), // low NDV
                    Datum::Int(i / 100),                                          // two long runs
                ]
            })
            .collect();
        let cp = ColumnPage::build(&rs).unwrap();
        assert_eq!(cp.segment(0).unwrap().encoding(), Encoding::Plain);
        assert_eq!(cp.segment(1).unwrap().encoding(), Encoding::Dict);
        assert_eq!(cp.segment(2).unwrap().encoding(), Encoding::Rle);
        for c in 0..3 {
            let col = cp.decode_col(c).unwrap();
            for (row, d) in rs.iter().zip(&col) {
                assert_eq!(format!("{d:?}"), format!("{:?}", row[c]));
            }
        }
    }

    #[test]
    fn page_roundtrip_and_marker_disjointness() {
        let rs: Vec<Row> = (0..50)
            .map(|i| vec![Datum::Int(i), Datum::Text(format!("n{}", i % 3)), Datum::Null])
            .collect();
        let cp = ColumnPage::build(&rs).unwrap();
        let page = cp.to_page().unwrap();
        assert!(page.is_columnar());
        let back = ColumnPage::from_page(&page).unwrap().unwrap();
        assert_eq!(back.n_rows(), 50);
        assert_eq!(back.n_cols(), 3);
        for c in 0..3 {
            assert_eq!(back.decode_col(c).unwrap(), cp.decode_col(c).unwrap());
        }
        // A slotted page is never mistaken for columnar and vice versa.
        let mut slotted = Page::new();
        slotted.insert(b"row").unwrap();
        assert!(!slotted.is_columnar());
        assert!(ColumnPage::from_page(&slotted).unwrap().is_none());
    }

    #[test]
    fn emit_rows_decodes_only_referenced_segments() {
        let rs: Vec<Row> = (0..20)
            .map(|i| vec![Datum::Int(i), Datum::Text("x".into()), Datum::Int(i * 2)])
            .collect();
        let cp = ColumnPage::build(&rs).unwrap();
        let mask = [false, false, true];
        let mut seen = Vec::new();
        let decoded = cp
            .emit_rows(3, Some(&mask), |row| {
                seen.push(row.to_vec());
                Ok(())
            })
            .unwrap();
        assert_eq!(decoded, 1);
        assert_eq!(seen.len(), 20);
        for (i, row) in seen.iter().enumerate() {
            assert!(row[0].is_null() && row[1].is_null());
            assert_eq!(row[2], Datum::Int(i as i64 * 2));
        }
        // Prefix-only (no mask) decodes every segment in the prefix.
        let decoded = cp.emit_rows(2, None, |_| Ok(())).unwrap();
        assert_eq!(decoded, 2);
    }

    #[test]
    fn mixed_arity_and_empty_fall_back() {
        assert!(ColumnPage::build(&[]).is_none());
        assert!(ColumnPage::build(&rows(&[&[Datum::Int(1)], &[Datum::Int(1), Datum::Int(2)]]))
            .is_none());
    }

    #[test]
    fn zone_observe_and_refute() {
        let mut z = PageZone::default();
        z.observe_row(&[Datum::Int(10), Datum::Null]);
        z.observe_row(&[Datum::Int(20), Datum::Text("a".into())]);
        z.observe_row(&[Datum::Int(15), Datum::Null]);
        assert_eq!(z.rows, 3);
        assert_eq!(z.cols[0].min, Some(Datum::Int(10)));
        assert_eq!(z.cols[0].max, Some(Datum::Int(20)));
        assert_eq!(z.cols[0].nulls, 0);
        assert_eq!(z.cols[1].nulls, 2);

        let lo = |v: i64, incl: bool| {
            let mut b = ColBound::new(0);
            b.add_lo(Datum::Int(v), incl);
            b
        };
        let hi = |v: i64, incl: bool| {
            let mut b = ColBound::new(0);
            b.add_hi(Datum::Int(v), incl);
            b
        };
        assert!(z.refutes(&[lo(21, true)]), "max 20 < 21");
        assert!(z.refutes(&[lo(20, false)]), "max 20, exclusive");
        assert!(!z.refutes(&[lo(20, true)]));
        assert!(z.refutes(&[hi(9, true)]), "min 10 > 9");
        assert!(z.refutes(&[hi(10, false)]), "min 10, exclusive");
        assert!(!z.refutes(&[hi(10, true)]));

        // NULL-side refutation.
        let mut isnull = ColBound::new(0);
        isnull.require_null = true;
        assert!(z.refutes(&[isnull]), "col 0 has no NULLs");
        let mut notnull = ColBound::new(1);
        notnull.require_non_null = true;
        assert!(!z.refutes(&[notnull]), "col 1 has one non-NULL");

        // All-NULL column refutes any comparison.
        let mut z2 = PageZone::default();
        z2.observe_row(&[Datum::Null]);
        assert!(z2.refutes(&[lo(0, true)]));

        // Empty pages refute everything, even empty bounds.
        assert!(PageZone::default().refutes(&[]));
        // Bounds on uncovered columns never refute.
        assert!(!z.refutes(&[lo(0, true).clone()].map(|mut b| {
            b.col = 9;
            b
        })));
    }

    #[test]
    fn bound_tightening() {
        let mut b = ColBound::new(0);
        b.add_lo(Datum::Int(5), true);
        b.add_lo(Datum::Int(3), true); // looser, ignored
        assert_eq!(b.lo, Some((Datum::Int(5), true)));
        b.add_lo(Datum::Int(5), false); // same value, stricter
        assert_eq!(b.lo, Some((Datum::Int(5), false)));
        b.add_hi(Datum::Int(10), false);
        b.add_hi(Datum::Int(12), true); // looser, ignored
        assert_eq!(b.hi, Some((Datum::Int(10), false)));
    }

    #[test]
    fn zone_maps_track_pages() {
        let mut zm = ZoneMaps::default();
        zm.observe_insert(2, &[Datum::Int(7)]);
        assert_eq!(zm.len(), 3);
        assert_eq!(zm.page(0).unwrap().rows, 0);
        assert_eq!(zm.page(2).unwrap().rows, 1);
        assert!(zm.page(5).is_none());
        zm.set_page(2, PageZone::default());
        assert_eq!(zm.page(2).unwrap().rows, 0);
        zm.clear();
        assert!(zm.is_empty());
    }

    #[test]
    fn rebuild_matches_incremental() {
        let rs: Vec<Row> =
            (0..30).map(|i| vec![Datum::Int(i % 7), Datum::Float(i as f64)]).collect();
        let mut inc = PageZone::default();
        for r in &rs {
            inc.observe_row(r);
        }
        assert_eq!(PageZone::rebuild(rs.iter()), inc);
    }
}
