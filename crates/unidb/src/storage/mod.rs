//! The storage engine: slotted pages, page stores, a buffer pool, heap
//! files with overflow chains for large genomic payloads, and a logical
//! write-ahead log.
//!
//! Durability model: heap pages live in a page store (in-memory or
//! file-backed, behind the buffer pool); persistence across restarts uses
//! *logical* WAL records plus snapshot checkpoints (see [`wal`] and
//! `crate::db`). This is the classical snapshot-plus-redo-log design: easy
//! to reason about, and the replay path doubles as the ETL refresh
//! machinery's transport format.

pub mod buffer;
pub mod heap;
pub mod page;
pub mod store;
pub mod wal;
