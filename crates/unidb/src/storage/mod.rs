//! The storage engine: slotted pages, page stores, a buffer pool, heap
//! files with overflow chains for large genomic payloads, and a logical
//! write-ahead log.
//!
//! Durability model: heap pages live in a page store (in-memory or
//! file-backed, behind the buffer pool); persistence across restarts uses
//! *logical* WAL records plus snapshot checkpoints (see [`wal`] and
//! `crate::db`). This is the classical snapshot-plus-redo-log design: easy
//! to reason about, and the replay path doubles as the ETL refresh
//! machinery's transport format.
//!
//! Every byte of file IO goes through the [`vfs`] abstraction —
//! [`vfs::StdVfs`] in production, [`vfs::FaultVfs`] under the
//! crash-recovery test harness — so fault injection covers the whole
//! stack. See DESIGN.md ("Fault model") for the recovery guarantee.

pub mod buffer;
pub mod colpage;
pub mod heap;
pub mod page;
pub mod store;
pub mod vfs;
pub mod wal;
