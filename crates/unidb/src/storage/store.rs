//! Page stores: where page images ultimately live.

use crate::error::{DbError, DbResult};
use crate::storage::page::{Page, PAGE_SIZE};
use crate::storage::vfs::{read_exact_at, Vfs, VfsFile};
use std::path::Path;

/// The backing store of a heap file's pages.
pub trait PageStore: Send {
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
    /// Allocate a fresh (zeroed) page, returning its number.
    fn allocate(&mut self) -> DbResult<u32>;
    /// Read a page image.
    fn read(&mut self, page_no: u32) -> DbResult<Page>;
    /// Write a page image.
    fn write(&mut self, page_no: u32, page: &Page) -> DbResult<()>;
    /// Flush to stable storage (no-op for memory).
    fn sync(&mut self) -> DbResult<()>;
}

/// An in-memory page store.
#[derive(Default)]
pub struct MemStore {
    pages: Vec<Page>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    fn allocate(&mut self) -> DbResult<u32> {
        self.pages.push(Page::new());
        Ok(self.pages.len() as u32 - 1)
    }

    fn read(&mut self, page_no: u32) -> DbResult<Page> {
        self.pages
            .get(page_no as usize)
            .cloned()
            .ok_or_else(|| DbError::Storage(format!("page {page_no} out of range")))
    }

    fn write(&mut self, page_no: u32, page: &Page) -> DbResult<()> {
        let slot = self
            .pages
            .get_mut(page_no as usize)
            .ok_or_else(|| DbError::Storage(format!("page {page_no} out of range")))?;
        *slot = page.clone();
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        Ok(())
    }
}

/// A file-backed page store: page `n` lives at byte offset `n * PAGE_SIZE`.
/// All IO goes through the [`Vfs`] handle it was opened with.
pub struct FileStore {
    file: Box<dyn VfsFile>,
    num_pages: u32,
}

impl FileStore {
    /// Open (creating if needed) a page file.
    pub fn open(vfs: &dyn Vfs, path: &Path) -> DbResult<Self> {
        let mut file = vfs.open(path)?;
        let len = file.len()?;
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DbError::Storage(format!(
                "page file {} has a partial page ({len} bytes)",
                path.display()
            )));
        }
        Ok(FileStore { file, num_pages: (len / PAGE_SIZE as u64) as u32 })
    }
}

impl PageStore for FileStore {
    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn allocate(&mut self) -> DbResult<u32> {
        let page_no = self.num_pages;
        self.file.write_at(page_no as u64 * PAGE_SIZE as u64, Page::new().as_bytes())?;
        self.num_pages += 1;
        Ok(page_no)
    }

    fn read(&mut self, page_no: u32) -> DbResult<Page> {
        if page_no >= self.num_pages {
            return Err(DbError::Storage(format!("page {page_no} out of range")));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        read_exact_at(self.file.as_mut(), page_no as u64 * PAGE_SIZE as u64, &mut buf)?;
        Ok(Page::from_bytes(&buf))
    }

    fn write(&mut self, page_no: u32, page: &Page) -> DbResult<()> {
        if page_no >= self.num_pages {
            return Err(DbError::Storage(format!("page {page_no} out of range")));
        }
        self.file.write_at(page_no as u64 * PAGE_SIZE as u64, page.as_bytes())?;
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::vfs::{FaultVfs, StdVfs};
    use std::path::PathBuf;

    fn exercise(store: &mut dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let p0 = store.allocate().unwrap();
        let p1 = store.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));

        let mut page = Page::new();
        page.insert(b"data").unwrap();
        store.write(p1, &page).unwrap();
        let back = store.read(p1).unwrap();
        assert_eq!(back.get(0), Some(&b"data"[..]));
        assert_eq!(store.read(p0).unwrap().slot_count(), 0);
        assert!(store.read(7).is_err());
        assert!(store.write(7, &page).is_err());
        store.sync().unwrap();
    }

    #[test]
    fn mem_store() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_roundtrip_and_reopen_in_memory() {
        let vfs = FaultVfs::reliable();
        let path = PathBuf::from("/pages/t1.pages");
        {
            let mut fs = FileStore::open(&vfs, &path).unwrap();
            exercise(&mut fs);
        }
        // Reopen and verify persistence.
        let mut fs = FileStore::open(&vfs, &path).unwrap();
        assert_eq!(fs.num_pages(), 2);
        assert_eq!(fs.read(1).unwrap().get(0), Some(&b"data"[..]));
    }

    #[test]
    fn file_store_roundtrip_on_real_fs() {
        let vfs = StdVfs;
        let dir = std::env::temp_dir().join(format!("unidb-test-{}", std::process::id()));
        vfs.create_dir_all(&dir).unwrap();
        let path = dir.join("t1.pages");
        vfs.remove_file(&path).unwrap();
        {
            let mut fs = FileStore::open(&vfs, &path).unwrap();
            exercise(&mut fs);
        }
        let mut fs = FileStore::open(&vfs, &path).unwrap();
        assert_eq!(fs.num_pages(), 2);
        assert_eq!(fs.read(1).unwrap().get(0), Some(&b"data"[..]));
        vfs.remove_file(&path).unwrap();
    }

    #[test]
    fn columnar_pages_coexist_with_slotted_pages_in_one_store() {
        use crate::datum::Datum;
        use crate::storage::colpage::ColumnPage;

        let vfs = FaultVfs::reliable();
        let path = PathBuf::from("/pages/mixed.pages");
        let rows: Vec<Vec<Datum>> =
            (0..40).map(|i| vec![Datum::Int(i), Datum::Text(format!("chr{}", i % 4))]).collect();
        let cp = ColumnPage::build(&rows).unwrap();
        {
            let mut fs = FileStore::open(&vfs, &path).unwrap();
            let slotted_no = fs.allocate().unwrap();
            let columnar_no = fs.allocate().unwrap();
            let mut slotted = Page::new();
            slotted.insert(b"row page").unwrap();
            fs.write(slotted_no, &slotted).unwrap();
            fs.write(columnar_no, &cp.to_page().unwrap()).unwrap();
            fs.sync().unwrap();
        }
        let mut fs = FileStore::open(&vfs, &path).unwrap();
        let slotted = fs.read(0).unwrap();
        assert!(!slotted.is_columnar());
        assert!(ColumnPage::from_page(&slotted).unwrap().is_none());
        assert_eq!(slotted.get(0), Some(&b"row page"[..]));
        let columnar = fs.read(1).unwrap();
        assert!(columnar.is_columnar());
        let back = ColumnPage::from_page(&columnar).unwrap().unwrap();
        assert_eq!(back.n_rows(), 40);
        for c in 0..2 {
            assert_eq!(back.decode_col(c).unwrap(), cp.decode_col(c).unwrap());
        }
    }

    #[test]
    fn file_store_rejects_partial_page() {
        let vfs = FaultVfs::reliable();
        let path = PathBuf::from("/pages/corrupt.pages");
        vfs.open(&path).unwrap().write_at(0, &[0u8; 100]).unwrap();
        assert!(FileStore::open(&vfs, &path).is_err());
    }
}
