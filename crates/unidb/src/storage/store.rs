//! Page stores: where page images ultimately live.

use crate::error::{DbError, DbResult};
use crate::storage::page::{Page, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The backing store of a heap file's pages.
pub trait PageStore: Send {
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
    /// Allocate a fresh (zeroed) page, returning its number.
    fn allocate(&mut self) -> DbResult<u32>;
    /// Read a page image.
    fn read(&mut self, page_no: u32) -> DbResult<Page>;
    /// Write a page image.
    fn write(&mut self, page_no: u32, page: &Page) -> DbResult<()>;
    /// Flush to stable storage (no-op for memory).
    fn sync(&mut self) -> DbResult<()>;
}

/// An in-memory page store.
#[derive(Default)]
pub struct MemStore {
    pages: Vec<Page>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    fn allocate(&mut self) -> DbResult<u32> {
        self.pages.push(Page::new());
        Ok(self.pages.len() as u32 - 1)
    }

    fn read(&mut self, page_no: u32) -> DbResult<Page> {
        self.pages
            .get(page_no as usize)
            .cloned()
            .ok_or_else(|| DbError::Storage(format!("page {page_no} out of range")))
    }

    fn write(&mut self, page_no: u32, page: &Page) -> DbResult<()> {
        let slot = self
            .pages
            .get_mut(page_no as usize)
            .ok_or_else(|| DbError::Storage(format!("page {page_no} out of range")))?;
        *slot = page.clone();
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        Ok(())
    }
}

/// A file-backed page store: page `n` lives at byte offset `n * PAGE_SIZE`.
pub struct FileStore {
    file: File,
    num_pages: u32,
}

impl FileStore {
    /// Open (creating if needed) a page file.
    pub fn open(path: &Path) -> DbResult<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DbError::Storage(format!(
                "page file {} has a partial page ({len} bytes)",
                path.display()
            )));
        }
        Ok(FileStore { file, num_pages: (len / PAGE_SIZE as u64) as u32 })
    }
}

impl PageStore for FileStore {
    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn allocate(&mut self) -> DbResult<u32> {
        let page_no = self.num_pages;
        self.file.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(Page::new().as_bytes())?;
        self.num_pages += 1;
        Ok(page_no)
    }

    fn read(&mut self, page_no: u32) -> DbResult<Page> {
        if page_no >= self.num_pages {
            return Err(DbError::Storage(format!("page {page_no} out of range")));
        }
        self.file.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact(&mut buf)?;
        Ok(Page::from_bytes(&buf))
    }

    fn write(&mut self, page_no: u32, page: &Page) -> DbResult<()> {
        if page_no >= self.num_pages {
            return Err(DbError::Storage(format!("page {page_no} out of range")));
        }
        self.file.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(page.as_bytes())?;
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let p0 = store.allocate().unwrap();
        let p1 = store.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));

        let mut page = Page::new();
        page.insert(b"data").unwrap();
        store.write(p1, &page).unwrap();
        let back = store.read(p1).unwrap();
        assert_eq!(back.get(0), Some(&b"data"[..]));
        assert_eq!(store.read(p0).unwrap().slot_count(), 0);
        assert!(store.read(7).is_err());
        assert!(store.write(7, &page).is_err());
        store.sync().unwrap();
    }

    #[test]
    fn mem_store() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("unidb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.pages");
        let _ = std::fs::remove_file(&path);
        {
            let mut fs = FileStore::open(&path).unwrap();
            exercise(&mut fs);
        }
        // Reopen and verify persistence.
        let mut fs = FileStore::open(&path).unwrap();
        assert_eq!(fs.num_pages(), 2);
        assert_eq!(fs.read(1).unwrap().get(0), Some(&b"data"[..]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_store_rejects_partial_page() {
        let dir = std::env::temp_dir().join(format!("unidb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.pages");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
