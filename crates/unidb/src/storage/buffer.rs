//! The buffer pool: an LRU cache of page frames in front of a page store.

use crate::error::DbResult;
use crate::storage::page::Page;
use crate::storage::store::PageStore;
use std::collections::HashMap;

/// A cached page frame.
struct Frame {
    page: Page,
    dirty: bool,
    /// Logical clock of last access, for LRU eviction.
    last_used: u64,
}

/// An LRU buffer pool over a [`PageStore`].
///
/// Accesses go through closures ([`BufferPool::with_page`] /
/// [`BufferPool::with_page_mut`]) so frames cannot leak out of the pool;
/// eviction writes dirty frames back to the store. Statistics feed the
/// architecture benchmarks.
pub struct BufferPool {
    store: Box<dyn PageStore>,
    frames: HashMap<u32, Frame>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BufferPool {
    /// A pool caching up to `capacity` frames.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            store,
            frames: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of pages in the underlying store.
    pub fn num_pages(&self) -> u32 {
        self.store.num_pages()
    }

    /// Allocate a fresh page (immediately cached).
    pub fn allocate(&mut self) -> DbResult<u32> {
        let page_no = self.store.allocate()?;
        self.admit(page_no, Page::new(), true)?;
        Ok(page_no)
    }

    /// Read-only access to a page.
    pub fn with_page<R>(&mut self, page_no: u32, f: impl FnOnce(&Page) -> R) -> DbResult<R> {
        self.fault(page_no)?;
        let frame = self.frames.get_mut(&page_no).expect("just faulted in");
        self.clock += 1;
        frame.last_used = self.clock;
        Ok(f(&frame.page))
    }

    /// Mutable access to a page; marks it dirty.
    pub fn with_page_mut<R>(&mut self, page_no: u32, f: impl FnOnce(&mut Page) -> R) -> DbResult<R> {
        self.fault(page_no)?;
        let frame = self.frames.get_mut(&page_no).expect("just faulted in");
        self.clock += 1;
        frame.last_used = self.clock;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write every dirty frame back and sync the store.
    pub fn flush_all(&mut self) -> DbResult<()> {
        for (&page_no, frame) in self.frames.iter_mut() {
            if frame.dirty {
                self.store.write(page_no, &frame.page)?;
                frame.dirty = false;
            }
        }
        self.store.sync()
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    fn fault(&mut self, page_no: u32) -> DbResult<()> {
        if self.frames.contains_key(&page_no) {
            self.hits += 1;
            return Ok(());
        }
        self.misses += 1;
        let page = self.store.read(page_no)?;
        self.admit(page_no, page, false)
    }

    fn admit(&mut self, page_no: u32, page: Page, dirty: bool) -> DbResult<()> {
        if self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        self.clock += 1;
        self.frames.insert(page_no, Frame { page, dirty, last_used: self.clock });
        Ok(())
    }

    fn evict_one(&mut self) -> DbResult<()> {
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(&p, _)| p)
            .expect("evict called on non-empty pool");
        let frame = self.frames.remove(&victim).expect("victim exists");
        if frame.dirty {
            self.store.write(victim, &frame.page)?;
        }
        self.evictions += 1;
        Ok(())
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("cached", &self.frames.len())
            .field("capacity", &self.capacity)
            .field("pages", &self.num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::store::MemStore;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), capacity)
    }

    #[test]
    fn read_write_through_pool() {
        let mut p = pool(4);
        let page_no = p.allocate().unwrap();
        p.with_page_mut(page_no, |pg| {
            pg.insert(b"cached").unwrap();
        })
        .unwrap();
        let data = p
            .with_page(page_no, |pg| pg.get(0).map(<[u8]>::to_vec))
            .unwrap();
        assert_eq!(data.as_deref(), Some(&b"cached"[..]));
    }

    #[test]
    fn eviction_preserves_dirty_data() {
        let mut p = pool(2);
        let pages: Vec<u32> = (0..5).map(|_| p.allocate().unwrap()).collect();
        for (i, &page_no) in pages.iter().enumerate() {
            p.with_page_mut(page_no, |pg| {
                pg.insert(format!("page-{i}").as_bytes()).unwrap();
            })
            .unwrap();
        }
        // Every page must read back its own payload even though only two
        // frames fit in the pool.
        for (i, &page_no) in pages.iter().enumerate() {
            let data = p
                .with_page(page_no, |pg| pg.get(0).map(<[u8]>::to_vec))
                .unwrap()
                .unwrap();
            assert_eq!(data, format!("page-{i}").into_bytes());
        }
        let (_, _, evictions) = p.stats();
        assert!(evictions > 0);
    }

    #[test]
    fn lru_victim_selection() {
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        p.with_page(a, |_| ()).unwrap();
        let c = p.allocate().unwrap();
        let _ = c;
        // `a` should still be a hit, `b` a miss.
        let (hits_before, misses_before, _) = p.stats();
        p.with_page(a, |_| ()).unwrap();
        p.with_page(b, |_| ()).unwrap();
        let (hits_after, misses_after, _) = p.stats();
        assert_eq!(hits_after - hits_before, 1);
        assert_eq!(misses_after - misses_before, 1);
    }

    #[test]
    fn flush_all_clears_dirty() {
        let mut p = pool(4);
        let page_no = p.allocate().unwrap();
        p.with_page_mut(page_no, |pg| {
            pg.insert(b"x").unwrap();
        })
        .unwrap();
        p.flush_all().unwrap();
        // A second flush with no writes is a no-op; just check it succeeds.
        p.flush_all().unwrap();
    }

    #[test]
    fn missing_page_error() {
        let mut p = pool(2);
        assert!(p.with_page(42, |_| ()).is_err());
    }
}
