//! The buffer pool: an LRU cache of page frames in front of a page store.

use crate::error::DbResult;
use crate::storage::page::Page;
use crate::storage::store::PageStore;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A cached page frame.
struct Frame {
    page: Page,
    dirty: bool,
    /// Logical clock of last access, for LRU eviction.
    last_used: u64,
}

/// All mutable pool state, behind the pool's internal mutex.
struct PoolState {
    store: Box<dyn PageStore>,
    frames: HashMap<u32, Frame>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// An LRU buffer pool over a [`PageStore`].
///
/// Accesses go through closures ([`BufferPool::with_page`] /
/// [`BufferPool::with_page_mut`]) so frames cannot leak out of the pool;
/// eviction writes dirty frames back to the store. Statistics feed the
/// architecture benchmarks.
///
/// The pool is internally synchronized: every method takes `&self` and frame
/// bookkeeping happens under a private mutex, so concurrent readers can share
/// one pool. The closure passed to `with_page`/`with_page_mut` runs while the
/// mutex is held — keep it short (copy bytes out, decode outside).
pub struct BufferPool {
    state: Mutex<PoolState>,
}

impl BufferPool {
    /// A pool caching up to `capacity` frames.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            state: Mutex::new(PoolState {
                store,
                frames: HashMap::new(),
                capacity,
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Number of pages in the underlying store.
    pub fn num_pages(&self) -> u32 {
        self.state.lock().store.num_pages()
    }

    /// Allocate a fresh page (immediately cached).
    pub fn allocate(&self) -> DbResult<u32> {
        let mut state = self.state.lock();
        let page_no = state.store.allocate()?;
        state.admit(page_no, Page::new(), true)?;
        Ok(page_no)
    }

    /// Read-only access to a page.
    pub fn with_page<R>(&self, page_no: u32, f: impl FnOnce(&Page) -> R) -> DbResult<R> {
        let mut state = self.state.lock();
        state.fault(page_no)?;
        state.clock += 1;
        let clock = state.clock;
        let frame = state.frames.get_mut(&page_no).expect("just faulted in");
        frame.last_used = clock;
        Ok(f(&frame.page))
    }

    /// Mutable access to a page; marks it dirty.
    pub fn with_page_mut<R>(&self, page_no: u32, f: impl FnOnce(&mut Page) -> R) -> DbResult<R> {
        let mut state = self.state.lock();
        state.fault(page_no)?;
        state.clock += 1;
        let clock = state.clock;
        let frame = state.frames.get_mut(&page_no).expect("just faulted in");
        frame.last_used = clock;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write every dirty frame back and sync the store.
    pub fn flush_all(&self) -> DbResult<()> {
        let mut state = self.state.lock();
        let PoolState { store, frames, .. } = &mut *state;
        for (&page_no, frame) in frames.iter_mut() {
            if frame.dirty {
                store.write(page_no, &frame.page)?;
                frame.dirty = false;
            }
        }
        store.sync()
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let state = self.state.lock();
        (state.hits, state.misses, state.evictions)
    }
}

impl PoolState {
    fn fault(&mut self, page_no: u32) -> DbResult<()> {
        if self.frames.contains_key(&page_no) {
            self.hits += 1;
            return Ok(());
        }
        self.misses += 1;
        // A miss is a disk read — span it; hits stay span-free since they
        // are the hot path the pool exists to keep cheap.
        let mut span = genalg_obs::tracer().span("pool.fault");
        span.field("page", u64::from(page_no));
        let page = self.store.read(page_no)?;
        self.admit(page_no, page, false)
    }

    fn admit(&mut self, page_no: u32, page: Page, dirty: bool) -> DbResult<()> {
        if self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        self.clock += 1;
        self.frames.insert(page_no, Frame { page, dirty, last_used: self.clock });
        Ok(())
    }

    fn evict_one(&mut self) -> DbResult<()> {
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(&p, _)| p)
            .expect("evict called on non-empty pool");
        // Write back *before* dropping the frame: if the store write fails
        // (e.g. an injected IO fault), the dirty frame stays resident and
        // its data is not lost.
        if self.frames.get(&victim).expect("victim exists").dirty {
            let PoolState { store, frames, .. } = self;
            store.write(victim, &frames[&victim].page)?;
        }
        self.frames.remove(&victim);
        self.evictions += 1;
        Ok(())
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("BufferPool")
            .field("cached", &state.frames.len())
            .field("capacity", &state.capacity)
            .field("pages", &state.store.num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::store::MemStore;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), capacity)
    }

    #[test]
    fn read_write_through_pool() {
        let p = pool(4);
        let page_no = p.allocate().unwrap();
        p.with_page_mut(page_no, |pg| {
            pg.insert(b"cached").unwrap();
        })
        .unwrap();
        let data = p.with_page(page_no, |pg| pg.get(0).map(<[u8]>::to_vec)).unwrap();
        assert_eq!(data.as_deref(), Some(&b"cached"[..]));
    }

    #[test]
    fn eviction_preserves_dirty_data() {
        let p = pool(2);
        let pages: Vec<u32> = (0..5).map(|_| p.allocate().unwrap()).collect();
        for (i, &page_no) in pages.iter().enumerate() {
            p.with_page_mut(page_no, |pg| {
                pg.insert(format!("page-{i}").as_bytes()).unwrap();
            })
            .unwrap();
        }
        // Every page must read back its own payload even though only two
        // frames fit in the pool.
        for (i, &page_no) in pages.iter().enumerate() {
            let data = p.with_page(page_no, |pg| pg.get(0).map(<[u8]>::to_vec)).unwrap().unwrap();
            assert_eq!(data, format!("page-{i}").into_bytes());
        }
        let (_, _, evictions) = p.stats();
        assert!(evictions > 0);
    }

    #[test]
    fn lru_victim_selection() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        p.with_page(a, |_| ()).unwrap();
        let c = p.allocate().unwrap();
        let _ = c;
        // `a` should still be a hit, `b` a miss.
        let (hits_before, misses_before, _) = p.stats();
        p.with_page(a, |_| ()).unwrap();
        p.with_page(b, |_| ()).unwrap();
        let (hits_after, misses_after, _) = p.stats();
        assert_eq!(hits_after - hits_before, 1);
        assert_eq!(misses_after - misses_before, 1);
    }

    #[test]
    fn flush_all_clears_dirty() {
        let p = pool(4);
        let page_no = p.allocate().unwrap();
        p.with_page_mut(page_no, |pg| {
            pg.insert(b"x").unwrap();
        })
        .unwrap();
        p.flush_all().unwrap();
        // A second flush with no writes is a no-op; just check it succeeds.
        p.flush_all().unwrap();
    }

    #[test]
    fn missing_page_error() {
        let p = pool(2);
        assert!(p.with_page(42, |_| ()).is_err());
    }

    #[test]
    fn shared_pool_across_threads() {
        // Two sessions hammering the same two hot pages through a pool that
        // only fits one frame: every access faults or hits under the internal
        // mutex, and no update may be lost when frames bounce in and out.
        let p = std::sync::Arc::new(pool(1));
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg.insert(&0u64.to_be_bytes()).unwrap()).unwrap();
        p.with_page_mut(b, |pg| pg.insert(&0u64.to_be_bytes()).unwrap()).unwrap();

        let handles: Vec<_> = [a, b]
            .into_iter()
            .map(|page_no| {
                let p = std::sync::Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        p.with_page_mut(page_no, |pg| {
                            let mut v = [0u8; 8];
                            v.copy_from_slice(pg.get(0).unwrap());
                            let next = u64::from_be_bytes(v) + 1;
                            assert!(pg.update_in_place(0, &next.to_be_bytes()));
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for page_no in [a, b] {
            let count = p
                .with_page(page_no, |pg| {
                    let mut v = [0u8; 8];
                    v.copy_from_slice(pg.get(0).unwrap());
                    u64::from_be_bytes(v)
                })
                .unwrap();
            assert_eq!(count, 200, "page {page_no} lost updates under eviction");
        }
    }
}
