//! The virtual file system: every byte the storage engine persists goes
//! through a [`Vfs`], so fault injection can sit between the engine and the
//! disk.
//!
//! Two implementations:
//!
//! * [`StdVfs`] — the production passthrough to `std::fs`. This module is
//!   the *only* place in `storage/` allowed to touch `std::fs`.
//! * [`FaultVfs`] — an in-memory file system with seeded, deterministic
//!   injection of short reads, torn/partial writes, `ENOSPC`, fsync
//!   failure, and hard crash points that freeze the on-disk image at its
//!   last durable state (plus whatever unsynced writes "made it" to the
//!   platter, decided by the seed).
//!
//! The fault model [`FaultVfs`] implements is the classical one: a write
//! is *volatile* until the next successful `sync` of that file. A crash
//! discards volatile writes, except that a seed-chosen prefix of them (the
//! last possibly torn) is retained — exactly the torn-tail situation WAL
//! recovery must survive.

use crate::error::{DbError, DbResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open file handle dispensed by a [`Vfs`]. Handles take `&mut self`
/// (callers serialize access); `Sync` is required only so owners like the
/// engine's `Inner` stay shareable behind their own locks.
// `len` is fallible and takes `&mut self`; a paired `is_empty` would not
// make call sites clearer.
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Send + Sync {
    /// Current length in bytes.
    fn len(&mut self) -> DbResult<u64>;
    /// Read up to `buf.len()` bytes at `offset`, returning how many were
    /// read. A short read is legal (and injected by [`FaultVfs`]); zero
    /// means end of file. Use [`read_exact_at`] when the caller needs all
    /// of them.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> DbResult<usize>;
    /// Write all of `data` at `offset`, extending the file if needed. On
    /// error the file may hold any prefix of the write (a torn write);
    /// callers must treat errored regions as undefined until re-written.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> DbResult<()>;
    /// Force written data to stable storage. Only data covered by a
    /// successful `sync` is guaranteed to survive a crash.
    fn sync(&mut self) -> DbResult<()>;
    /// Cut or extend the file to exactly `len` bytes.
    fn truncate(&mut self, len: u64) -> DbResult<()>;
}

/// A file-system namespace the storage engine runs on.
pub trait Vfs: Send + Sync {
    /// Open a file for reading and writing, creating it if missing.
    fn open(&self, path: &Path) -> DbResult<Box<dyn VfsFile>>;
    /// Whether `path` currently exists.
    fn exists(&self, path: &Path) -> bool;
    /// Create a directory (and parents). Metadata ops are treated as
    /// immediately durable — the WAL protocol only relies on file *data*
    /// ordering.
    fn create_dir_all(&self, path: &Path) -> DbResult<()>;
    /// Atomically replace `to` with `from` (the checkpoint commit step).
    fn rename(&self, from: &Path, to: &Path) -> DbResult<()>;
    /// Delete a file; a missing file is not an error.
    fn remove_file(&self, path: &Path) -> DbResult<()>;

    /// Read a whole file, or `None` if it does not exist. Loops over
    /// `read_at`, so injected short reads are exercised on the recovery
    /// path too.
    fn read_file(&self, path: &Path) -> DbResult<Option<Vec<u8>>> {
        if !self.exists(path) {
            return Ok(None);
        }
        let mut f = self.open(path)?;
        let len = f.len()? as usize;
        let mut out = vec![0u8; len];
        read_exact_at(f.as_mut(), 0, &mut out)?;
        Ok(Some(out))
    }
}

/// Read exactly `buf.len()` bytes at `offset`, looping over short reads.
pub fn read_exact_at(f: &mut dyn VfsFile, mut offset: u64, mut buf: &mut [u8]) -> DbResult<()> {
    while !buf.is_empty() {
        let n = f.read_at(offset, buf)?;
        if n == 0 {
            return Err(DbError::Io(format!(
                "unexpected end of file at offset {offset} ({} bytes short)",
                buf.len()
            )));
        }
        offset += n as u64;
        buf = &mut buf[n..];
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// StdVfs — the production passthrough
// ---------------------------------------------------------------------------

/// The real file system. The only code in `storage/` that uses `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

struct StdFile {
    file: std::fs::File,
}

impl Vfs for StdVfs {
    fn open(&self, path: &Path) -> DbResult<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(StdFile { file }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, path: &Path) -> DbResult<()> {
        std::fs::create_dir_all(path)?;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> DbResult<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> DbResult<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

impl VfsFile for StdFile {
    fn len(&mut self) -> DbResult<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> DbResult<usize> {
        use std::io::{Read, Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(offset))?;
        Ok(self.file.read(buf)?)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> DbResult<()> {
        use std::io::{Seek, SeekFrom, Write};
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)?;
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> DbResult<()> {
        self.file.set_len(len)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultVfs — deterministic fault injection over an in-memory file system
// ---------------------------------------------------------------------------

/// Probabilities and trigger points for injected faults. All randomness is
/// drawn from a splitmix64 stream seeded with `seed`, so a (seed, workload)
/// pair always fails the same way — a failing seed from CI reproduces
/// locally.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for the fault-decision RNG.
    pub seed: u64,
    /// Probability a `write_at` fails with no effect (disk full).
    pub enospc_prob: f64,
    /// Probability a `write_at` persists only a prefix, then errors.
    pub torn_write_prob: f64,
    /// Probability a `read_at` returns fewer bytes than asked.
    pub short_read_prob: f64,
    /// Probability a `sync` fails, leaving its data volatile.
    pub sync_fail_prob: f64,
    /// Hard crash after this many mutating operations (writes, syncs,
    /// truncates) while armed: the disk image freezes at its durable state
    /// plus a seed-chosen torn prefix of unsynced writes, and every
    /// subsequent operation fails until [`FaultVfs::reset_after_crash`].
    pub crash_after_ops: Option<u64>,
}

impl FaultConfig {
    /// No faults at all — a reliable in-memory file system.
    pub fn reliable() -> Self {
        FaultConfig {
            seed: 0,
            enospc_prob: 0.0,
            torn_write_prob: 0.0,
            short_read_prob: 0.0,
            sync_fail_prob: 0.0,
            crash_after_ops: None,
        }
    }

    /// A transient-fault mix: everything can fail, nothing crashes.
    pub fn transient(seed: u64) -> Self {
        FaultConfig {
            seed,
            enospc_prob: 0.05,
            torn_write_prob: 0.05,
            short_read_prob: 0.10,
            sync_fail_prob: 0.10,
            crash_after_ops: None,
        }
    }

    /// A crash point: reliable operation until `ops` mutating operations
    /// have run, then a hard crash with a seed-chosen torn tail.
    pub fn crash_at(seed: u64, ops: u64) -> Self {
        FaultConfig { crash_after_ops: Some(ops), ..FaultConfig::reliable() }.with_seed(seed)
    }

    fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One unsynced mutation, replayable onto the durable image when a crash
/// decides how much of it survived.
enum PendingOp {
    Write { offset: usize, data: Vec<u8> },
    Truncate { len: usize },
}

#[derive(Default)]
struct FaultFile {
    /// Live contents (what readers of the running process see).
    data: Vec<u8>,
    /// Durable contents as of the last successful sync.
    shadow: Vec<u8>,
    /// Mutations since the last successful sync, in order.
    pending: Vec<PendingOp>,
}

impl FaultFile {
    fn apply(data: &mut Vec<u8>, op: &PendingOp, bytes: usize) {
        match op {
            PendingOp::Write { offset, data: payload } => {
                let payload = &payload[..bytes.min(payload.len())];
                let end = offset + payload.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[*offset..end].copy_from_slice(payload);
            }
            PendingOp::Truncate { len } => data.resize(*len, 0),
        }
    }
}

struct FaultState {
    files: HashMap<PathBuf, FaultFile>,
    dirs: Vec<PathBuf>,
    rng: SplitMix64,
    config: FaultConfig,
    /// Faults fire only while armed; setup and recovery run disarmed.
    armed: bool,
    crashed: bool,
    /// Mutating ops observed while armed (the crash-point clock).
    ops: u64,
    faults_injected: u64,
}

impl FaultState {
    /// Advance the crash clock; returns an error if this op crashes (or the
    /// disk already crashed).
    fn tick(&mut self) -> DbResult<()> {
        self.check_alive()?;
        if !self.armed {
            return Ok(());
        }
        self.ops += 1;
        if let Some(n) = self.config.crash_after_ops {
            if self.ops >= n {
                self.crash();
                return Err(DbError::Io("injected crash: disk image frozen".into()));
            }
        }
        Ok(())
    }

    fn check_alive(&self) -> DbResult<()> {
        if self.crashed {
            return Err(DbError::Io("injected crash: disk image frozen".into()));
        }
        Ok(())
    }

    fn roll(&mut self, prob: f64) -> bool {
        if !self.armed || prob <= 0.0 {
            return false;
        }
        let hit = self.rng.chance(prob);
        if hit {
            self.faults_injected += 1;
        }
        hit
    }

    /// Freeze every file at its durable image plus a seed-chosen prefix of
    /// its unsynced mutations; the last surviving write may itself be torn.
    fn crash(&mut self) {
        self.crashed = true;
        self.faults_injected += 1;
        let mut paths: Vec<PathBuf> = self.files.keys().cloned().collect();
        paths.sort(); // deterministic iteration order
        for path in paths {
            let file = self.files.get_mut(&path).expect("path just listed");
            let mut frozen = std::mem::take(&mut file.shadow);
            let pending = std::mem::take(&mut file.pending);
            let survive = self.rng.below(pending.len() as u64 + 1) as usize;
            for (i, op) in pending.iter().take(survive).enumerate() {
                let full = match op {
                    PendingOp::Write { data, .. } => data.len(),
                    PendingOp::Truncate { .. } => 0,
                };
                let torn_last = i + 1 == survive && self.rng.chance(0.5);
                let bytes = if torn_last { self.rng.below(full as u64 + 1) as usize } else { full };
                FaultFile::apply(&mut frozen, op, bytes);
            }
            file.data = frozen.clone();
            file.shadow = frozen;
        }
    }
}

/// The fault-injecting file system. Cloning shares the underlying disk, so
/// a database can be reopened "after the crash" on the same image.
#[derive(Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fault-injecting in-memory file system.
    pub fn new(config: FaultConfig) -> Self {
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                files: HashMap::new(),
                dirs: Vec::new(),
                rng: SplitMix64::new(config.seed),
                config,
                armed: true,
                crashed: false,
                ops: 0,
                faults_injected: 0,
            })),
        }
    }

    /// A reliable in-memory file system (no faults) — handy for tests and
    /// benches that want durability mechanics without touching disk.
    pub fn reliable() -> Self {
        let vfs = FaultVfs::new(FaultConfig::reliable());
        vfs.disarm();
        vfs
    }

    /// Stop injecting faults (setup / verification phases).
    pub fn disarm(&self) {
        self.state.lock().armed = false;
    }

    /// Resume injecting faults.
    pub fn arm(&self) {
        self.state.lock().armed = true;
    }

    /// Whether a crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Clear the crashed flag and disarm faults, leaving the frozen disk
    /// image in place — the state a process restart would see.
    pub fn reset_after_crash(&self) {
        let mut s = self.state.lock();
        s.crashed = false;
        s.armed = false;
    }

    /// Number of faults injected so far (including a crash).
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().faults_injected
    }

    /// Mutating operations observed while armed.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path) -> DbResult<Box<dyn VfsFile>> {
        let mut s = self.state.lock();
        s.check_alive()?;
        s.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(FaultHandle { path: path.to_path_buf(), state: Arc::clone(&self.state) }))
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock();
        s.files.contains_key(path) || s.dirs.iter().any(|d| d == path)
    }

    fn create_dir_all(&self, path: &Path) -> DbResult<()> {
        let mut s = self.state.lock();
        s.check_alive()?;
        let path = path.to_path_buf();
        if !s.dirs.contains(&path) {
            s.dirs.push(path);
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> DbResult<()> {
        let mut s = self.state.lock();
        s.tick()?;
        let file = s
            .files
            .remove(from)
            .ok_or_else(|| DbError::Io(format!("rename: {} not found", from.display())))?;
        // Metadata ops are modeled as immediately durable: the renamed file
        // carries only its synced image.
        let durable = FaultFile { data: file.shadow.clone(), shadow: file.shadow, pending: vec![] };
        s.files.insert(to.to_path_buf(), durable);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> DbResult<()> {
        let mut s = self.state.lock();
        s.tick()?;
        s.files.remove(path);
        Ok(())
    }
}

struct FaultHandle {
    path: PathBuf,
    state: Arc<Mutex<FaultState>>,
}

impl FaultHandle {
    fn with_state<R>(&mut self, f: impl FnOnce(&mut FaultState, &PathBuf) -> R) -> R {
        let mut s = self.state.lock();
        f(&mut s, &self.path)
    }
}

impl VfsFile for FaultHandle {
    fn len(&mut self) -> DbResult<u64> {
        self.with_state(|s, path| {
            s.check_alive()?;
            Ok(s.files.get(path).map_or(0, |f| f.data.len() as u64))
        })
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> DbResult<usize> {
        self.with_state(|s, path| {
            s.check_alive()?;
            let short = s.roll(s.config.short_read_prob);
            let file = s
                .files
                .get(path)
                .ok_or_else(|| DbError::Io(format!("{} removed", path.display())))?;
            let offset = offset as usize;
            let available = file.data.len().saturating_sub(offset);
            let mut n = buf.len().min(available);
            if short && n > 1 {
                // A short read must still make progress (≥ 1 byte) so
                // read_exact_at loops terminate.
                n = 1 + s.rng.below(n as u64 - 1) as usize;
            }
            buf[..n].copy_from_slice(&file.data[offset..offset + n]);
            Ok(n)
        })
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> DbResult<()> {
        self.with_state(|s, path| {
            s.tick()?;
            if s.roll(s.config.enospc_prob) {
                return Err(DbError::Io("injected fault: no space left on device".into()));
            }
            let torn = if s.roll(s.config.torn_write_prob) {
                Some(s.rng.below(data.len() as u64) as usize)
            } else {
                None
            };
            let file = s
                .files
                .get_mut(path)
                .ok_or_else(|| DbError::Io(format!("{} removed", path.display())))?;
            let written = torn.unwrap_or(data.len());
            let op = PendingOp::Write { offset: offset as usize, data: data[..written].to_vec() };
            FaultFile::apply(&mut file.data, &op, written);
            if written > 0 {
                file.pending.push(op);
            }
            if torn.is_some() {
                return Err(DbError::Io(format!(
                    "injected fault: torn write ({written} of {} bytes)",
                    data.len()
                )));
            }
            Ok(())
        })
    }

    fn sync(&mut self) -> DbResult<()> {
        self.with_state(|s, path| {
            s.tick()?;
            if s.roll(s.config.sync_fail_prob) {
                return Err(DbError::Io("injected fault: fsync failed".into()));
            }
            let file = s
                .files
                .get_mut(path)
                .ok_or_else(|| DbError::Io(format!("{} removed", path.display())))?;
            file.shadow = file.data.clone();
            file.pending.clear();
            Ok(())
        })
    }

    fn truncate(&mut self, len: u64) -> DbResult<()> {
        self.with_state(|s, path| {
            s.tick()?;
            let file = s
                .files
                .get_mut(path)
                .ok_or_else(|| DbError::Io(format!("{} removed", path.display())))?;
            file.data.resize(len as usize, 0);
            file.pending.push(PendingOp::Truncate { len: len as usize });
            Ok(())
        })
    }
}

// ---------------------------------------------------------------------------
// splitmix64 — the deterministic fault-decision stream
// ---------------------------------------------------------------------------

/// A tiny deterministic RNG (splitmix64). Not exposed; fault decisions only.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `p`.
    fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// Uniform in `0..n` (0 when `n` is 0).
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}
