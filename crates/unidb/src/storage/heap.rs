//! Heap files: unordered record storage with stable record ids and
//! overflow chains for records larger than a page (whole chromosomes
//! easily exceed 8 KiB).

use crate::error::{DbError, DbResult};
use crate::storage::buffer::BufferPool;
use crate::storage::page::Page;
use crate::tuple::{put_varint, take_slice, take_u8, take_varint};

/// A record id: page number plus slot within the page. Stable across the
/// record's lifetime (slots are tombstoned, never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    pub page: u32,
    pub slot: u16,
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.page, self.slot)
    }
}

const INLINE: u8 = 0;
const OVERFLOW: u8 = 1;
/// Chunk header inside an overflow record: next page (u32) + next slot (u16).
const CHUNK_HEADER: usize = 6;

/// An unordered heap of records over a buffer pool.
pub struct HeapFile {
    pool: BufferPool,
    live: u64,
}

impl HeapFile {
    /// An empty heap over the given pool.
    pub fn new(pool: BufferPool) -> Self {
        HeapFile { pool, live: 0 }
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of allocated pages (heap + overflow).
    pub fn num_pages(&self) -> u32 {
        self.pool.num_pages()
    }

    /// Buffer-pool statistics `(hits, misses, evictions)`.
    pub fn pool_stats(&self) -> (u64, u64, u64) {
        self.pool.stats()
    }

    /// Insert a record, returning its id.
    pub fn insert(&mut self, bytes: &[u8]) -> DbResult<Rid> {
        let record = if bytes.len() < Page::max_record() {
            let mut rec = Vec::with_capacity(1 + bytes.len());
            rec.push(INLINE);
            rec.extend_from_slice(bytes);
            rec
        } else {
            let (first_page, first_slot) = self.write_overflow_chain(bytes)?;
            let mut rec = Vec::with_capacity(16);
            rec.push(OVERFLOW);
            put_varint(&mut rec, bytes.len() as u64);
            rec.extend_from_slice(&first_page.to_le_bytes());
            rec.extend_from_slice(&first_slot.to_le_bytes());
            rec
        };
        let rid = self.place(&record)?;
        self.live += 1;
        Ok(rid)
    }

    /// Read a record.
    pub fn get(&self, rid: Rid) -> DbResult<Option<Vec<u8>>> {
        if rid.page >= self.pool.num_pages() {
            return Ok(None);
        }
        let stub = self.pool.with_page(rid.page, |p| p.get(rid.slot).map(<[u8]>::to_vec))?;
        let Some(stub) = stub else { return Ok(None) };
        self.expand(&stub).map(Some)
    }

    /// Delete a record (and its overflow chain). Returns false if already
    /// absent.
    pub fn delete(&mut self, rid: Rid) -> DbResult<bool> {
        if rid.page >= self.pool.num_pages() {
            return Ok(false);
        }
        let stub = self.pool.with_page(rid.page, |p| p.get(rid.slot).map(<[u8]>::to_vec))?;
        let Some(stub) = stub else { return Ok(false) };
        if stub.first() == Some(&OVERFLOW) {
            let (mut page, mut slot, _) = parse_overflow_stub(&stub)?;
            while page != u32::MAX {
                let chunk = self
                    .pool
                    .with_page(page, |p| p.get(slot).map(<[u8]>::to_vec))?
                    .ok_or_else(|| DbError::Storage("broken overflow chain".into()))?;
                let (next_page, next_slot) = chunk_next(&chunk)?;
                self.pool.with_page_mut(page, |p| p.delete(slot))?;
                page = next_page;
                slot = next_slot;
            }
        }
        self.pool.with_page_mut(rid.page, |p| p.delete(rid.slot))?;
        self.live -= 1;
        Ok(true)
    }

    /// Replace a record's contents. The record keeps its id when the new
    /// value fits in place; otherwise it moves and the new id is returned.
    pub fn update(&mut self, rid: Rid, bytes: &[u8]) -> DbResult<Rid> {
        // In-place only for inline-to-inline shrinking updates; anything
        // else is delete + insert (indexes are maintained by the caller).
        let existing = self.get(rid)?;
        if existing.is_none() {
            return Err(DbError::Storage(format!("update of missing record {rid}")));
        }
        if bytes.len() < Page::max_record() {
            let mut rec = Vec::with_capacity(1 + bytes.len());
            rec.push(INLINE);
            rec.extend_from_slice(bytes);
            let updated =
                self.pool.with_page_mut(rid.page, |p| p.update_in_place(rid.slot, &rec))?;
            if updated {
                return Ok(rid);
            }
        }
        self.delete(rid)?;
        self.insert(bytes)
    }

    /// Live records of one page, expanded. Pages past the end yield an
    /// empty batch, which lets scans race ahead safely.
    pub fn page_records(&self, page_no: u32) -> DbResult<Vec<(Rid, Vec<u8>)>> {
        if page_no >= self.pool.num_pages() {
            return Ok(Vec::new());
        }
        // Inline records (the common case) are expanded inside the pool
        // visit — a single copy straight off the page. Overflow stubs are
        // noted and chased afterwards: `expand` re-enters the pool, which
        // would deadlock under the page latch. Overflow chunks themselves
        // are internal records; only stubs are rows.
        let mut out: Vec<(Rid, Vec<u8>)> = Vec::new();
        let mut deferred: Vec<(usize, Vec<u8>)> = Vec::new();
        self.pool.with_page(page_no, |p| {
            for (slot, rec) in p.iter() {
                let rid = Rid { page: page_no, slot };
                match rec.first() {
                    Some(&INLINE) => out.push((rid, rec[1..].to_vec())),
                    Some(&OVERFLOW) => {
                        deferred.push((out.len(), rec.to_vec()));
                        out.push((rid, Vec::new()));
                    }
                    _ => {}
                }
            }
        })?;
        for (i, stub) in deferred {
            out[i].1 = self.expand(&stub)?;
        }
        Ok(out)
    }

    /// Visit the live records of one page in slot order without copying
    /// inline payloads out of the page first: `visit` runs on the page's
    /// own bytes under the latch. Overflow stubs can't be expanded there
    /// (`expand` re-enters the pool, which would deadlock under the page
    /// latch), so from the first stub onward records are buffered and
    /// visited after the latch drops — slot order is preserved either way,
    /// and the common all-inline page stays copy-free.
    pub fn page_visit_rows(
        &self,
        page_no: u32,
        visit: &mut dyn FnMut(&[u8]) -> DbResult<()>,
    ) -> DbResult<()> {
        if page_no >= self.pool.num_pages() {
            return Ok(());
        }
        let mut tail: Vec<Vec<u8>> = Vec::new();
        let mut failed = None;
        self.pool.with_page(page_no, |p| {
            for (_slot, rec) in p.iter() {
                match rec.first() {
                    Some(&INLINE) if tail.is_empty() => {
                        if let Err(e) = visit(&rec[1..]) {
                            failed = Some(e);
                            return;
                        }
                    }
                    Some(&INLINE) | Some(&OVERFLOW) => tail.push(rec.to_vec()),
                    _ => {}
                }
            }
        })?;
        if let Some(e) = failed {
            return Err(e);
        }
        for rec in tail {
            match rec.first() {
                Some(&INLINE) => visit(&rec[1..])?,
                _ => visit(&self.expand(&rec)?)?,
            }
        }
        Ok(())
    }

    /// [`HeapFile::page_visit_rows`] with each record's [`Rid`] passed
    /// alongside its bytes. MVCC read views need the rid to overlay
    /// version visibility and transaction-local writes onto a page scan.
    /// Same latch discipline: inline records are visited in place until
    /// the first overflow stub, after which `(slot, record)` pairs are
    /// buffered and visited once the latch drops.
    pub fn page_visit_rows_rid(
        &self,
        page_no: u32,
        visit: &mut dyn FnMut(Rid, &[u8]) -> DbResult<()>,
    ) -> DbResult<()> {
        if page_no >= self.pool.num_pages() {
            return Ok(());
        }
        let mut tail: Vec<(u16, Vec<u8>)> = Vec::new();
        let mut failed = None;
        self.pool.with_page(page_no, |p| {
            for (slot, rec) in p.iter() {
                match rec.first() {
                    Some(&INLINE) if tail.is_empty() => {
                        if let Err(e) = visit(Rid { page: page_no, slot }, &rec[1..]) {
                            failed = Some(e);
                            return;
                        }
                    }
                    Some(&INLINE) | Some(&OVERFLOW) => tail.push((slot, rec.to_vec())),
                    _ => {}
                }
            }
        })?;
        if let Some(e) = failed {
            return Err(e);
        }
        for (slot, rec) in tail {
            let rid = Rid { page: page_no, slot };
            match rec.first() {
                Some(&INLINE) => visit(rid, &rec[1..])?,
                _ => visit(rid, &self.expand(&rec)?)?,
            }
        }
        Ok(())
    }

    /// True when every live record on `page_no` is stored inline — the
    /// precondition for caching the page in columnar form. Pages with
    /// overflow stubs stay on the row path: their expanded payloads can
    /// dwarf the page (whole chromosomes), so a decoded columnar cache
    /// entry would pin unbounded memory.
    pub fn page_all_inline(&self, page_no: u32) -> DbResult<bool> {
        if page_no >= self.pool.num_pages() {
            return Ok(true);
        }
        let mut all_inline = true;
        self.pool.with_page(page_no, |p| {
            for (_slot, rec) in p.iter() {
                if rec.first() == Some(&OVERFLOW) {
                    all_inline = false;
                    return;
                }
            }
        })?;
        Ok(all_inline)
    }

    /// Materialize every live record.
    pub fn scan(&self) -> DbResult<Vec<(Rid, Vec<u8>)>> {
        let mut out = Vec::new();
        for page_no in 0..self.pool.num_pages() {
            out.extend(self.page_records(page_no)?);
        }
        Ok(out)
    }

    /// Flush dirty pages to the store.
    pub fn flush(&mut self) -> DbResult<()> {
        self.pool.flush_all()
    }

    // -- internals -----------------------------------------------------------

    /// Place a small record on the tail page, allocating if needed.
    fn place(&mut self, record: &[u8]) -> DbResult<Rid> {
        let n = self.pool.num_pages();
        if n > 0 {
            let tail = n - 1;
            let slot = self.pool.with_page_mut(tail, |p| p.insert(record))?;
            if let Some(slot) = slot {
                return Ok(Rid { page: tail, slot });
            }
        }
        let fresh = self.pool.allocate()?;
        let slot = self
            .pool
            .with_page_mut(fresh, |p| p.insert(record))?
            .ok_or_else(|| DbError::Storage("record does not fit in an empty page".into()))?;
        Ok(Rid { page: fresh, slot })
    }

    /// Write `bytes` as a chain of chunk records; returns the head chunk's
    /// location. Chunks carry a marker byte distinct from INLINE/OVERFLOW so
    /// scans skip them.
    fn write_overflow_chain(&mut self, bytes: &[u8]) -> DbResult<(u32, u16)> {
        const CHUNK_MARK: u8 = 2;
        let payload = Page::max_record() - 1 - CHUNK_HEADER;
        let chunks: Vec<&[u8]> = bytes.chunks(payload).collect();
        // Write back-to-front so each chunk knows its successor.
        let (mut next_page, mut next_slot) = (u32::MAX, u16::MAX);
        for chunk in chunks.iter().rev() {
            let mut rec = Vec::with_capacity(1 + CHUNK_HEADER + chunk.len());
            rec.push(CHUNK_MARK);
            rec.extend_from_slice(&next_page.to_le_bytes());
            rec.extend_from_slice(&next_slot.to_le_bytes());
            rec.extend_from_slice(chunk);
            let rid = self.place(&rec)?;
            next_page = rid.page;
            next_slot = rid.slot;
        }
        Ok((next_page, next_slot))
    }

    /// Expand a stub into the full record bytes.
    fn expand(&self, stub: &[u8]) -> DbResult<Vec<u8>> {
        match stub.first() {
            Some(&INLINE) => Ok(stub[1..].to_vec()),
            Some(&OVERFLOW) => {
                let (mut page, mut slot, total) = parse_overflow_stub(stub)?;
                let mut out = Vec::with_capacity(total);
                while page != u32::MAX {
                    let chunk = self
                        .pool
                        .with_page(page, |p| p.get(slot).map(<[u8]>::to_vec))?
                        .ok_or_else(|| DbError::Storage("broken overflow chain".into()))?;
                    let (next_page, next_slot) = chunk_next(&chunk)?;
                    out.extend_from_slice(&chunk[1 + CHUNK_HEADER..]);
                    page = next_page;
                    slot = next_slot;
                }
                if out.len() != total {
                    return Err(DbError::Storage(format!(
                        "overflow chain length {} != declared {total}",
                        out.len()
                    )));
                }
                Ok(out)
            }
            _ => Err(DbError::Storage("unrecognized record marker".into())),
        }
    }
}

fn parse_overflow_stub(stub: &[u8]) -> DbResult<(u32, u16, usize)> {
    let mut buf = &stub[1..];
    let total = take_varint(&mut buf)? as usize;
    let page_bytes = take_slice(&mut buf, 4)?;
    let slot_bytes = take_slice(&mut buf, 2)?;
    let page = u32::from_le_bytes(page_bytes.try_into().expect("4 bytes"));
    let slot = u16::from_le_bytes(slot_bytes.try_into().expect("2 bytes"));
    Ok((page, slot, total))
}

fn chunk_next(chunk: &[u8]) -> DbResult<(u32, u16)> {
    let mut buf = chunk;
    let _mark = take_u8(&mut buf)?;
    let page_bytes = take_slice(&mut buf, 4)?;
    let slot_bytes = take_slice(&mut buf, 2)?;
    Ok((
        u32::from_le_bytes(page_bytes.try_into().expect("4 bytes")),
        u16::from_le_bytes(slot_bytes.try_into().expect("2 bytes")),
    ))
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("live", &self.live)
            .field("pages", &self.pool.num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::store::MemStore;

    fn heap() -> HeapFile {
        HeapFile::new(BufferPool::new(Box::new(MemStore::new()), 64))
    }

    #[test]
    fn insert_get_delete_small() {
        let mut h = heap();
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(a).unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(h.get(b).unwrap().as_deref(), Some(&b"beta"[..]));
        assert!(h.delete(a).unwrap());
        assert!(!h.delete(a).unwrap());
        assert_eq!(h.get(a).unwrap(), None);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn get_of_unknown_rid_is_none() {
        let mut h = heap();
        assert_eq!(h.get(Rid { page: 9, slot: 9 }).unwrap(), None);
        assert!(!h.delete(Rid { page: 9, slot: 0 }).unwrap());
    }

    #[test]
    fn many_records_spill_to_new_pages() {
        let mut h = heap();
        let rids: Vec<Rid> =
            (0..1000).map(|i| h.insert(format!("record-{i:04}").as_bytes()).unwrap()).collect();
        assert!(h.num_pages() > 1);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap().unwrap(), format!("record-{i:04}").into_bytes());
        }
        assert_eq!(h.scan().unwrap().len(), 1000);
    }

    #[test]
    fn large_record_overflow_roundtrip() {
        let mut h = heap();
        // A 100 KiB "chromosome": far beyond one page.
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let small = h.insert(b"small").unwrap();
        let rid = h.insert(&big).unwrap();
        assert_eq!(h.get(rid).unwrap().unwrap(), big);
        assert_eq!(h.get(small).unwrap().as_deref(), Some(&b"small"[..]));
        // Scans see exactly the two logical records, not the chunks.
        let scan = h.scan().unwrap();
        assert_eq!(scan.len(), 2);
        assert!(scan.iter().any(|(r, data)| *r == rid && *data == big));
    }

    #[test]
    fn delete_large_record_frees_logical_view() {
        let mut h = heap();
        let big = vec![7u8; 50_000];
        let rid = h.insert(&big).unwrap();
        assert!(h.delete(rid).unwrap());
        assert_eq!(h.get(rid).unwrap(), None);
        assert_eq!(h.scan().unwrap().len(), 0);
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let mut h = heap();
        let rid = h.insert(b"abcdef").unwrap();
        let same = h.update(rid, b"abc").unwrap();
        assert_eq!(same, rid);
        assert_eq!(h.get(rid).unwrap().as_deref(), Some(&b"abc"[..]));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn growing_update_relocates() {
        let mut h = heap();
        let rid = h.insert(b"ab").unwrap();
        // Fill the tail page a bit so in-place growth is impossible.
        let grown = vec![9u8; 5000];
        let new_rid = h.update(rid, &grown).unwrap();
        assert_eq!(h.get(new_rid).unwrap().unwrap(), grown);
        if new_rid != rid {
            assert_eq!(h.get(rid).unwrap(), None);
        }
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn update_small_to_large_to_small() {
        let mut h = heap();
        let rid = h.insert(b"tiny").unwrap();
        let big = vec![1u8; 30_000];
        let rid2 = h.update(rid, &big).unwrap();
        assert_eq!(h.get(rid2).unwrap().unwrap(), big);
        let rid3 = h.update(rid2, b"tiny again").unwrap();
        assert_eq!(h.get(rid3).unwrap().as_deref(), Some(&b"tiny again"[..]));
        assert_eq!(h.scan().unwrap().len(), 1);
    }

    #[test]
    fn update_missing_errors() {
        let mut h = heap();
        assert!(h.update(Rid { page: 0, slot: 0 }, b"x").is_err());
    }

    #[test]
    fn page_batches_skip_chunks() {
        let mut h = heap();
        h.insert(&vec![3u8; 40_000]).unwrap();
        let mut logical = 0;
        for p in 0..h.num_pages() {
            logical += h.page_records(p).unwrap().len();
        }
        assert_eq!(logical, 1);
        assert!(h.page_records(999).unwrap().is_empty());
    }

    #[test]
    fn works_with_tiny_buffer_pool() {
        // Eviction pressure: pool of 2 frames, data spanning many pages.
        let mut h = HeapFile::new(BufferPool::new(Box::new(MemStore::new()), 2));
        let big = vec![5u8; 60_000];
        let rid = h.insert(&big).unwrap();
        let small: Vec<Rid> =
            (0..200).map(|i| h.insert(format!("r{i}").as_bytes()).unwrap()).collect();
        assert_eq!(h.get(rid).unwrap().unwrap(), big);
        assert_eq!(h.get(small[0]).unwrap().as_deref(), Some(&b"r0"[..]));
        let (_, _, evictions) = h.pool_stats();
        assert!(evictions > 0);
    }

    #[test]
    fn injected_io_faults_surface_as_structured_errors() {
        // A heap over a file store on a faulty disk: every failure must be
        // a structured DbError::Io (no panic, no silent corruption), and
        // once the disk behaves again the heap must still be usable with
        // all successfully written data intact.
        use crate::error::DbError;
        use crate::storage::store::FileStore;
        use crate::storage::vfs::{FaultConfig, FaultVfs};

        let mut cfg = FaultConfig::transient(0xFA01);
        cfg.enospc_prob = 0.2;
        cfg.torn_write_prob = 0.2;
        let vfs = FaultVfs::new(cfg);
        vfs.disarm();
        let store = FileStore::open(&vfs, std::path::Path::new("/heap.pages")).unwrap();
        // Tiny pool so evictions force store writes mid-workload.
        let mut h = HeapFile::new(BufferPool::new(Box::new(store), 2));
        vfs.arm();
        let mut written = Vec::new();
        let mut io_errors = 0u32;
        for i in 0..100 {
            // Big enough that every few inserts open a new page, forcing
            // evictions (and thus store writes) through the 2-frame pool.
            let payload = format!("record-{i}-{}", "g".repeat(2500)).into_bytes();
            match h.insert(&payload) {
                Ok(rid) => written.push((rid, payload)),
                Err(DbError::Io(_)) => io_errors += 1,
                Err(other) => panic!("expected DbError::Io, got {other:?}"),
            }
        }
        assert!(io_errors > 0, "fault config injected nothing");
        vfs.disarm();
        for (rid, payload) in &written {
            match h.get(*rid) {
                Ok(Some(bytes)) => assert_eq!(&bytes, payload, "corrupt record at {rid}"),
                Ok(None) => panic!("successfully inserted record {rid} vanished"),
                Err(e) => panic!("read of {rid} failed after faults cleared: {e}"),
            }
        }
    }
}
