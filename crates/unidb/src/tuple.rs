//! Row (tuple) serialization: rows are stored in pages as flat byte
//! strings with per-field type tags and varint framing.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use std::sync::Arc;

/// A row of datums.
pub type Row = Vec<Datum>;

const T_NULL: u8 = 0;
const T_BOOL_FALSE: u8 = 1;
const T_BOOL_TRUE: u8 = 2;
const T_INT: u8 = 3;
const T_FLOAT: u8 = 4;
const T_TEXT: u8 = 5;
const T_BLOB: u8 = 6;
const T_OPAQUE: u8 = 7;

/// Serialize a row.
pub fn encode_row(row: &[Datum]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 * row.len());
    put_varint(&mut buf, row.len() as u64);
    for d in row {
        put_datum(&mut buf, d);
    }
    buf
}

/// Append one tagged datum to `buf` — the same per-field encoding
/// [`encode_row`] uses, exposed so columnar segments share the codec.
pub(crate) fn put_datum(buf: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => buf.push(T_NULL),
        Datum::Bool(false) => buf.push(T_BOOL_FALSE),
        Datum::Bool(true) => buf.push(T_BOOL_TRUE),
        Datum::Int(i) => {
            buf.push(T_INT);
            put_varint(buf, zigzag(*i));
        }
        Datum::Float(f) => {
            buf.push(T_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Datum::Text(s) => {
            buf.push(T_TEXT);
            put_varint(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
        Datum::Blob(b) => {
            buf.push(T_BLOB);
            put_varint(buf, b.len() as u64);
            buf.extend_from_slice(b);
        }
        Datum::Opaque(ty, b) => {
            buf.push(T_OPAQUE);
            put_varint(buf, *ty as u64);
            put_varint(buf, b.len() as u64);
            buf.extend_from_slice(b);
        }
    }
}

/// Decode one tagged datum from the front of `buf`.
#[inline]
pub(crate) fn take_datum(buf: &mut &[u8]) -> DbResult<Datum> {
    let tag = take_u8(buf)?;
    Ok(match tag {
        T_NULL => Datum::Null,
        T_BOOL_FALSE => Datum::Bool(false),
        T_BOOL_TRUE => Datum::Bool(true),
        T_INT => Datum::Int(unzigzag(take_varint(buf)?)),
        T_FLOAT => {
            let bytes = take_slice(buf, 8)?;
            let mut arr = [0u8; 8];
            arr.copy_from_slice(bytes);
            Datum::Float(f64::from_bits(u64::from_le_bytes(arr)))
        }
        T_TEXT => {
            let len = take_varint(buf)? as usize;
            let bytes = take_slice(buf, len)?;
            Datum::Text(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| DbError::Storage("invalid UTF-8 in stored text".into()))?,
            )
        }
        T_BLOB => {
            let len = take_varint(buf)? as usize;
            Datum::Blob(take_slice(buf, len)?.to_vec())
        }
        T_OPAQUE => {
            let ty = take_varint(buf)? as u32;
            let len = take_varint(buf)? as usize;
            Datum::Opaque(ty, Arc::new(take_slice(buf, len)?.to_vec()))
        }
        other => return Err(DbError::Storage(format!("unknown datum tag {other}"))),
    })
}

/// Advance `buf` past one tagged datum without materializing it — the
/// sparse-decode fast path for columns no expression references.
#[inline]
pub(crate) fn skip_datum(buf: &mut &[u8]) -> DbResult<()> {
    let tag = take_u8(buf)?;
    match tag {
        T_NULL | T_BOOL_FALSE | T_BOOL_TRUE => {}
        T_INT => {
            take_varint(buf)?;
        }
        T_FLOAT => {
            take_slice(buf, 8)?;
        }
        T_TEXT | T_BLOB => {
            let len = take_varint(buf)? as usize;
            take_slice(buf, len)?;
        }
        T_OPAQUE => {
            take_varint(buf)?;
            let len = take_varint(buf)? as usize;
            take_slice(buf, len)?;
        }
        other => return Err(DbError::Storage(format!("unknown datum tag {other}"))),
    }
    Ok(())
}

/// Deserialize a row.
pub fn decode_row(buf: &[u8]) -> DbResult<Row> {
    decode_row_prefix(buf, usize::MAX)
}

/// Deserialize only the first `max_fields` fields of a row (the whole row
/// when it has fewer). Positional references below `max_fields` stay
/// valid; scans use this to skip decoding trailing columns no compiled
/// expression reads. Trailing-byte validation only applies to full
/// decodes — a prefix decode stops reading mid-payload by design.
pub fn decode_row_prefix(buf: &[u8], max_fields: usize) -> DbResult<Row> {
    let mut row = Vec::new();
    decode_row_prefix_into(&mut row, buf, max_fields)?;
    Ok(row)
}

/// [`decode_row_prefix`] into a caller-owned buffer, so hot scan loops can
/// reuse one allocation across rows. Clears `row` first.
pub fn decode_row_prefix_into(row: &mut Row, buf: &[u8], max_fields: usize) -> DbResult<()> {
    decode_row_cols_into(row, buf, max_fields, None)
}

/// Sparse column decode: like [`decode_row_prefix_into`], but when `mask`
/// is given, only fields whose mask bit is set are materialized — the
/// payload bytes of every other field are *skipped* (tag + length walk,
/// no allocation, no UTF-8 validation) and a `Datum::Null` placeholder
/// keeps positional references below `max_fields` valid. Fields at or
/// beyond `mask.len()` count as unreferenced.
///
/// This is the fix for the old behavior where a query touching only a
/// late column still paid full decode for every earlier column: the scan
/// now decodes exactly the referenced column segments.
pub fn decode_row_cols_into(
    row: &mut Row,
    mut buf: &[u8],
    max_fields: usize,
    mask: Option<&[bool]>,
) -> DbResult<()> {
    row.clear();
    let n = take_varint(&mut buf)? as usize;
    // Every datum occupies at least one byte, so a count exceeding the
    // remaining payload is corrupt — reject before allocating.
    if n > buf.len() {
        return Err(DbError::Storage(format!(
            "row claims {n} fields but only {} bytes remain",
            buf.len()
        )));
    }
    let take = n.min(max_fields);
    row.reserve(take);
    // The dense loop is kept free of the per-field mask test: full-row
    // decode is the hot path for every pipeline-breaker scan, and the
    // branch (plus the bounds lookup behind it) costs real throughput.
    match mask {
        None => {
            for _ in 0..take {
                row.push(take_datum(&mut buf)?);
            }
        }
        Some(m) => {
            for i in 0..take {
                if m.get(i).copied().unwrap_or(false) {
                    row.push(take_datum(&mut buf)?);
                } else {
                    skip_datum(&mut buf)?;
                    row.push(Datum::Null);
                }
            }
        }
    }
    if take == n && !buf.is_empty() {
        return Err(DbError::Storage(format!("{} trailing bytes after row", buf.len())));
    }
    Ok(())
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn take_varint(buf: &mut &[u8]) -> DbResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = take_u8(buf)?;
        if shift >= 64 {
            return Err(DbError::Storage("varint too long".into()));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

pub(crate) fn take_u8(buf: &mut &[u8]) -> DbResult<u8> {
    let (&b, rest) =
        buf.split_first().ok_or_else(|| DbError::Storage("unexpected end of row bytes".into()))?;
    *buf = rest;
    Ok(b)
}

pub(crate) fn take_slice<'a>(buf: &mut &'a [u8], len: usize) -> DbResult<&'a [u8]> {
    if buf.len() < len {
        return Err(DbError::Storage("row bytes truncated".into()));
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        vec![
            Datum::Null,
            Datum::Bool(true),
            Datum::Bool(false),
            Datum::Int(-42),
            Datum::Int(i64::MAX),
            Datum::Float(1.5),
            Datum::Float(-0.0),
            Datum::Text("héllo".into()),
            Datum::Blob(vec![0, 255, 7]),
            Datum::opaque(9, vec![1, 2, 3]),
        ]
    }

    #[test]
    fn roundtrip() {
        let row = sample_row();
        let bytes = encode_row(&row);
        let back = decode_row(&bytes).unwrap();
        assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(&back) {
            // Compare through Debug because Datum's PartialEq unifies
            // Int/Float; here we want representation fidelity.
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn empty_row() {
        let bytes = encode_row(&[]);
        assert_eq!(decode_row(&bytes).unwrap(), Vec::<Datum>::new());
    }

    #[test]
    fn zigzag_roundtrip() {
        for i in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn sparse_decode_skips_unreferenced_columns() {
        let row = sample_row();
        let bytes = encode_row(&row);
        // Only columns 3 and 7 referenced; everything else must come back
        // as a Null placeholder at the right position.
        let mut mask = vec![false; row.len()];
        mask[3] = true;
        mask[7] = true;
        let mut out = Row::new();
        decode_row_cols_into(&mut out, &bytes, row.len(), Some(&mask)).unwrap();
        assert_eq!(out.len(), row.len());
        assert_eq!(format!("{:?}", out[3]), format!("{:?}", row[3]));
        assert_eq!(format!("{:?}", out[7]), format!("{:?}", row[7]));
        for (i, d) in out.iter().enumerate() {
            if i != 3 && i != 7 {
                assert!(matches!(d, Datum::Null), "col {i} should be a placeholder: {d:?}");
            }
        }
        // A mask shorter than the row treats the tail as unreferenced.
        let mut out = Row::new();
        decode_row_cols_into(&mut out, &bytes, row.len(), Some(&[true])).unwrap();
        assert_eq!(format!("{:?}", out[0]), format!("{:?}", row[0]));
        assert!(out[1..].iter().all(|d| matches!(d, Datum::Null)));
        // Truncated bytes still error even when the damaged field is
        // skipped rather than decoded.
        let mut out = Row::new();
        let mask = vec![false; row.len()];
        assert!(decode_row_cols_into(&mut out, &bytes[..bytes.len() - 1], row.len(), Some(&mask))
            .is_err());
    }

    #[test]
    fn corrupt_rows_rejected() {
        let row = sample_row();
        let bytes = encode_row(&row);
        assert!(decode_row(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_row(&extra).is_err());
        assert!(decode_row(&[9, 99]).is_err());
    }
}
