//! Datums: the runtime values of the database.

use crate::error::{DbError, DbResult};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The static type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    Blob,
    /// A registered opaque user-defined type, identified by its type id.
    Opaque(u32),
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => f.write_str("BOOL"),
            DataType::Int => f.write_str("INT"),
            DataType::Float => f.write_str("FLOAT"),
            DataType::Text => f.write_str("TEXT"),
            DataType::Blob => f.write_str("BLOB"),
            DataType::Opaque(id) => write!(f, "OPAQUE({id})"),
        }
    }
}

/// A runtime value. `Null` is typeless and admissible in any column unless
/// constrained.
///
/// Opaque payloads are reference-counted so routing a genomic value through
/// operators never copies the (potentially megabase) payload.
#[derive(Debug, Clone)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    Blob(Vec<u8>),
    /// Value of an opaque UDT: type id + encoded payload.
    Opaque(u32, Arc<Vec<u8>>),
}

impl Datum {
    /// Static type, if not null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Int(_) => Some(DataType::Int),
            Datum::Float(_) => Some(DataType::Float),
            Datum::Text(_) => Some(DataType::Text),
            Datum::Blob(_) => Some(DataType::Blob),
            Datum::Opaque(id, _) => Some(DataType::Opaque(*id)),
        }
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric coercion: ints widen to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(f) => Some(*f),
            Datum::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Datum::Blob(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_opaque(&self) -> Option<(u32, &Arc<Vec<u8>>)> {
        match self {
            Datum::Opaque(id, bytes) => Some((*id, bytes)),
            _ => None,
        }
    }

    /// Build an opaque datum from an encoded payload.
    pub fn opaque(type_id: u32, payload: Vec<u8>) -> Self {
        Datum::Opaque(type_id, Arc::new(payload))
    }

    /// Is this datum assignable to a column of `ty`? NULL is assignable to
    /// anything; ints are assignable to FLOAT columns.
    pub fn assignable_to(&self, ty: DataType) -> bool {
        match (self.data_type(), ty) {
            (None, _) => true,
            (Some(DataType::Int), DataType::Float) => true,
            (Some(actual), expected) => actual == expected,
        }
    }

    /// Total comparison for ORDER BY / B-tree keys.
    ///
    /// NULL sorts first; numeric types compare by value across Int/Float;
    /// cross-type comparisons otherwise order by type rank (deterministic,
    /// documented, never an error — matching SQLite's affinity-free model).
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Bool(_) => 1,
                Datum::Int(_) | Datum::Float(_) => 2,
                Datum::Text(_) => 3,
                Datum::Blob(_) => 4,
                Datum::Opaque(_, _) => 5,
            }
        }
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Float(a), Datum::Float(b)) => a.total_cmp(b),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).total_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.total_cmp(&(*b as f64)),
            (Datum::Text(a), Datum::Text(b)) => a.cmp(b),
            (Datum::Blob(a), Datum::Blob(b)) => a.cmp(b),
            (Datum::Opaque(ta, a), Datum::Opaque(tb, b)) => ta.cmp(tb).then_with(|| a.cmp(b)),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL equality: NULL equals nothing (returns `None` = unknown).
    pub fn sql_eq(&self, other: &Datum) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// Parse a typed literal from text (used by CSV-ish loaders and tests).
    pub fn parse(ty: DataType, text: &str) -> DbResult<Datum> {
        match ty {
            DataType::Bool => match text.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Ok(Datum::Bool(true)),
                "false" | "f" | "0" => Ok(Datum::Bool(false)),
                _ => Err(DbError::TypeMismatch(format!("{text:?} is not a BOOL"))),
            },
            DataType::Int => text
                .parse()
                .map(Datum::Int)
                .map_err(|_| DbError::TypeMismatch(format!("{text:?} is not an INT"))),
            DataType::Float => text
                .parse()
                .map(Datum::Float)
                .map_err(|_| DbError::TypeMismatch(format!("{text:?} is not a FLOAT"))),
            DataType::Text => Ok(Datum::Text(text.to_string())),
            DataType::Blob | DataType::Opaque(_) => {
                Err(DbError::Unsupported("cannot parse binary types from text".into()))
            }
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Datum {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => 0u8.hash(state),
            Datum::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash alike because they
            // compare equal.
            Datum::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Datum::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Datum::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Datum::Blob(b) => {
                4u8.hash(state);
                b.hash(state);
            }
            Datum::Opaque(t, b) => {
                5u8.hash(state);
                t.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Text(s) => write!(f, "{s}"),
            Datum::Blob(b) => write!(f, "x'{}'", hex(b)),
            Datum::Opaque(t, b) => write!(f, "<opaque type {t}, {} bytes>", b.len()),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typing_and_accessors() {
        assert_eq!(Datum::Int(3).data_type(), Some(DataType::Int));
        assert_eq!(Datum::Null.data_type(), None);
        assert!(Datum::Null.is_null());
        assert_eq!(Datum::Int(3).as_float(), Some(3.0));
        assert_eq!(Datum::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Datum::opaque(7, vec![1, 2]).as_opaque().unwrap().0, 7);
    }

    #[test]
    fn assignability() {
        assert!(Datum::Null.assignable_to(DataType::Int));
        assert!(Datum::Int(1).assignable_to(DataType::Float));
        assert!(!Datum::Float(1.0).assignable_to(DataType::Int));
        assert!(Datum::opaque(3, vec![]).assignable_to(DataType::Opaque(3)));
        assert!(!Datum::opaque(3, vec![]).assignable_to(DataType::Opaque(4)));
    }

    #[test]
    fn ordering_null_first_and_numeric_mix() {
        let mut v = vec![
            Datum::Int(2),
            Datum::Null,
            Datum::Float(1.5),
            Datum::Int(1),
            Datum::Text("a".into()),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Datum::Null,
                Datum::Int(1),
                Datum::Float(1.5),
                Datum::Int(2),
                Datum::Text("a".into()),
            ]
        );
    }

    #[test]
    fn sql_equality_treats_null_as_unknown() {
        assert_eq!(Datum::Null.sql_eq(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Int(1)), Some(true));
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Float(1.0)), Some(true));
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Int(2)), Some(false));
    }

    #[test]
    fn int_float_hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |d: &Datum| {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        };
        assert_eq!(Datum::Int(3), Datum::Float(3.0));
        assert_eq!(h(&Datum::Int(3)), h(&Datum::Float(3.0)));
    }

    #[test]
    fn parse_literals() {
        assert_eq!(Datum::parse(DataType::Int, "42").unwrap(), Datum::Int(42));
        assert_eq!(Datum::parse(DataType::Bool, "true").unwrap(), Datum::Bool(true));
        assert_eq!(Datum::parse(DataType::Float, "1.5").unwrap(), Datum::Float(1.5));
        assert!(Datum::parse(DataType::Int, "xyz").is_err());
        assert!(Datum::parse(DataType::Blob, "00").is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::Blob(vec![0xab]).to_string(), "x'ab'");
        assert!(Datum::opaque(2, vec![0; 10]).to_string().contains("10 bytes"));
    }
}
