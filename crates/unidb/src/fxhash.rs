//! A tiny, fast, non-cryptographic hasher for executor and statistics
//! hot paths.
//!
//! The standard library's default hasher (SipHash) is keyed and
//! DoS-resistant but costs tens of nanoseconds per value — far too slow
//! for a hash join probing a million rows or an NDV sketch observing
//! every inserted datum. This is the classic "Fx" multiply-rotate hash
//! used by rustc: one rotate, one xor, one multiply per word. It is
//! deterministic across runs and platforms (inputs are folded
//! little-endian), which the executor relies on — partition assignment
//! must be a pure function of the data so `EXPLAIN ANALYZE` counters
//! are byte-identical at any parallelism.
//!
//! Hashing a [`crate::datum::Datum`] goes through its ordinary `Hash`
//! impl, so the engine-wide invariant that `Int(3)` and `Float(3.0)`
//! hash alike (both fold the f64 bit pattern) is preserved automatically.

use std::hash::{BuildHasher, Hash, Hasher};

/// Multiplier from FxHash (the golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Streaming Fx hasher state.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    /// Finalize with an xor-shift-multiply avalanche. The Fx multiply
    /// only propagates entropy *upward*, so raw state has weak low bits —
    /// fatal here, because both the executor's radix partition mask and
    /// hashbrown's bucket index use the low bits, and `Datum` hashes
    /// numbers as f64 bit patterns whose low mantissa bits are all zero
    /// for small integers (the common join-key case).
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while let Some((chunk, tail)) = rest.split_first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            rest = tail;
        }
        if let Some((chunk, tail)) = rest.split_first_chunk::<4>() {
            self.add(u64::from(u32::from_le_bytes(*chunk)));
            rest = tail;
        }
        if let Some((chunk, tail)) = rest.split_first_chunk::<2>() {
            self.add(u64::from(u16::from_le_bytes(*chunk)));
            rest = tail;
        }
        if let [b] = rest {
            self.add(u64::from(*b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s; plugs into `HashMap`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed by the Fx hasher — drop-in replacement for
/// `std::collections::HashMap` on executor hot paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Hash one value to a `u64` with the Fx hasher.
#[inline]
pub fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    #[test]
    fn deterministic_and_spreading() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_ne!(hash_one(&42u64), hash_one(&43u64));
        // Byte-slice path covers every chunk width (8 + 4 + 2 + 1).
        let long = b"fifteen bytes!!";
        assert_eq!(hash_one(&long[..]), hash_one(&long[..]));
        assert_ne!(hash_one(&long[..]), hash_one(&long[..14]));
    }

    #[test]
    fn int_and_float_datums_hash_alike() {
        // The join key contract: `1 = 1.0` is true under SQL comparison,
        // so the hash table must put them in the same bucket.
        assert_eq!(hash_one(&Datum::Int(3)), hash_one(&Datum::Float(3.0)));
        assert_ne!(hash_one(&Datum::Int(3)), hash_one(&Datum::Int(4)));
    }

    #[test]
    fn slice_and_vec_of_datums_hash_alike() {
        // Group-by keys are looked up by slice before being cloned into
        // an owned Vec key — the two spellings must collide.
        let key = vec![Datum::Int(7), Datum::Text("g".into())];
        assert_eq!(hash_one(&key), hash_one(key.as_slice()));
    }
}
