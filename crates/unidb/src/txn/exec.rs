//! Statement execution inside a transaction, and commit-time
//! validate-and-apply.
//!
//! Statements run under the shared engine read lock: reads plan and
//! execute against a [`ReadView`]; writes buffer row images in the
//! transaction's [`WriteSet`](super::WriteSet) without touching the heap.
//! Serialization conflicts are detected eagerly where cheap (a write
//! targeting a row some concurrent transaction already superseded, an
//! insert colliding with a key committed after the snapshot) and
//! re-validated at commit, where first-committer-wins is enforced under
//! the exclusive write lock.

use crate::catalog::{Role, TableDef};
use crate::db::{check_row, Inner, ResultSet};
use crate::error::{DbError, DbResult};
use crate::exec::{execute_plan, execute_plan_with_stats};
use crate::expr::compile::compile;
use crate::expr::eval::{eval, ColumnBinding, EvalContext};
use crate::expr::func::FunctionRegistry;
use crate::plan::planner::plan_select;
use crate::sql::ast::{Expr, Stmt};
use crate::storage::heap::Rid;
use crate::storage::wal::WalRecord;
use crate::tuple::{decode_row, Row};
use crate::txn::{ReadView, TableWrites, TxnState};

/// Where a row matched by an UPDATE/DELETE filter lives.
enum Prov {
    /// A committed heap row visible to the snapshot; writes target its rid.
    Committed(Rid),
    /// A row this transaction inserted, addressed by write-set position.
    OwnInsert(usize),
    /// A prior image: visible to the snapshot, but a concurrent
    /// transaction already committed over it. Writing it is a
    /// serialization conflict.
    Stale,
}

pub(crate) fn run_txn_stmt(
    inner: &Inner,
    state: &mut TxnState,
    stmt: Stmt,
    role: &Role,
) -> DbResult<ResultSet> {
    if let Some(reason) = &state.doomed {
        return Err(DbError::Conflict(format!("transaction must be rolled back: {reason}")));
    }
    match stmt {
        Stmt::Select(_) | Stmt::Explain { .. } => run_txn_read(inner, state, stmt, role),
        Stmt::Insert { table, columns, rows } => {
            txn_insert(inner, state, &table, columns, rows, role)
        }
        Stmt::Update { table, assignments, filter } => {
            txn_update(inner, state, &table, assignments, filter, role)
        }
        Stmt::Delete { table, filter } => txn_delete(inner, state, &table, filter, role),
        Stmt::CreateTable { .. }
        | Stmt::DropTable { .. }
        | Stmt::CreateIndex { .. }
        | Stmt::CreateSpace { .. } => Err(DbError::Txn(
            "DDL is not allowed inside a transaction; run it in auto-commit mode".into(),
        )),
        Stmt::Begin | Stmt::Commit | Stmt::Rollback => {
            Err(DbError::Internal("transaction control reached the transaction executor".into()))
        }
    }
}

fn run_txn_read(inner: &Inner, state: &TxnState, stmt: Stmt, role: &Role) -> DbResult<ResultSet> {
    let view = ReadView::new(inner, state.snapshot, Some(&state.writes));
    match stmt {
        Stmt::Select(s) => {
            let (plan, columns) = plan_select(&view, role.default_space(), &s)?;
            let rows = execute_plan(&view, &inner.funcs, &plan, inner.parallelism)?;
            Ok(ResultSet { columns, rows, affected: 0, explain: None })
        }
        Stmt::Explain { stmt: inner_stmt, analyze } => match *inner_stmt {
            Stmt::Select(s) => {
                let (plan, _) = plan_select(&view, role.default_space(), &s)?;
                if analyze {
                    let (_, stats) =
                        execute_plan_with_stats(&view, &inner.funcs, &plan, inner.parallelism)?;
                    Ok(ResultSet { explain: Some(stats.render()), ..ResultSet::empty() })
                } else {
                    Ok(ResultSet { explain: Some(plan.explain()), ..ResultSet::empty() })
                }
            }
            _ if analyze => {
                Err(DbError::Unsupported("EXPLAIN ANALYZE supports only SELECT".into()))
            }
            other => Ok(ResultSet { explain: Some(format!("{other:?}")), ..ResultSet::empty() }),
        },
        _ => Err(DbError::Internal("run_txn_read called on a write statement".into())),
    }
}

/// Resolve the target table and check write access, mirroring the
/// auto-commit DML preamble.
fn writable_table(inner: &Inner, table: &str, role: &Role) -> DbResult<TableDef> {
    let def = inner.catalog.resolve_table(role.default_space(), table)?.clone();
    if !inner.catalog.can_write(role, &def.space) {
        return Err(DbError::AccessDenied(format!(
            "space {:?} is read-only for this role",
            def.space
        )));
    }
    Ok(def)
}

fn conflict_stale_row() -> DbError {
    DbError::Conflict(
        "row was modified by a concurrent transaction after this snapshot; retry the transaction"
            .into(),
    )
}

/// Everything a uniqueness check reads: engine state, the table, the
/// transaction's buffered writes, and its snapshot.
struct UniqueScope<'a> {
    inner: &'a Inner,
    def: &'a TableDef,
    tw: &'a TableWrites,
    snapshot: u64,
}

impl UniqueScope<'_> {
    /// Uniqueness check for a row this transaction is about to buffer.
    ///
    /// Checks, in precedence order, each unique index column whose key the
    /// write actually changes (`old_row` is the prior contents for an
    /// update; `self_rid`/`self_insert` identify the write-set entry being
    /// rewritten so it does not collide with itself):
    /// 1. committed heap rows still holding the key (excluding rows this
    ///    transaction deleted or rewrote, and the row being rewritten):
    ///    invisible holder (`born > snapshot`) → [`DbError::Conflict`]
    ///    (a concurrent transaction claimed the key first), visible holder →
    ///    [`DbError::Constraint`];
    /// 2. prior images visible to the snapshot → [`DbError::Constraint`]
    ///    (the duplicate is in the transaction's view even if since removed);
    /// 3. the transaction's own buffered rows → [`DbError::Constraint`].
    fn check(
        &self,
        new_row: &Row,
        old_row: Option<&Row>,
        self_rid: Option<Rid>,
        self_insert: Option<usize>,
    ) -> DbResult<()> {
        let Some(storage) = self.inner.tables.get(&self.def.id) else {
            return Err(DbError::Internal("missing table storage".into()));
        };
        let (tw, snapshot) = (self.tw, self.snapshot);
        for (col, idx) in &storage.btrees {
            if !idx.is_unique() {
                continue;
            }
            let pos = self.def.column_index(col).expect("index column exists");
            let key = &new_row[pos];
            if let Some(old) = old_row {
                if old[pos] == *key {
                    continue;
                }
            }
            for rid in idx.get(key) {
                // Born-after-snapshot comes first: heap slots are recycled,
                // so a rid this write-set claims may since have been
                // re-bestowed on a concurrent commit's row — the claim is
                // void and the key is taken.
                if storage.born.get(&rid).copied().unwrap_or(0) > snapshot {
                    return Err(DbError::Conflict(format!(
                        "unique key {key} for index on {col} was claimed by a concurrent \
                         transaction; retry the transaction"
                    )));
                }
                if tw.deleted.contains(&rid)
                    || tw.updated.contains_key(&rid)
                    || self_rid == Some(rid)
                {
                    continue;
                }
                return Err(DbError::Constraint(format!(
                    "duplicate key {key} for unique index on {col}"
                )));
            }
            for v in &storage.old_versions {
                if v.born <= snapshot && snapshot < v.died && v.row[pos] == *key {
                    return Err(DbError::Constraint(format!(
                        "duplicate key {key} for unique index on {col}"
                    )));
                }
            }
            let own_dup =
                tw.updated.iter().any(|(rid, row)| self_rid != Some(*rid) && row[pos] == *key)
                    || tw.inserted.iter().enumerate().any(|(i, slot)| {
                        self_insert != Some(i) && slot.as_ref().is_some_and(|row| row[pos] == *key)
                    });
            if own_dup {
                return Err(DbError::Constraint(format!(
                    "duplicate key {key} for unique index on {col}"
                )));
            }
        }
        Ok(())
    }
}

fn txn_insert(
    inner: &Inner,
    state: &mut TxnState,
    table: &str,
    columns: Option<Vec<String>>,
    rows: Vec<Vec<Expr>>,
    role: &Role,
) -> DbResult<ResultSet> {
    let def = writable_table(inner, table, role)?;
    let positions: Vec<usize> = match &columns {
        None => (0..def.columns.len()).collect(),
        Some(cols) => cols
            .iter()
            .map(|c| {
                def.column_index(c).ok_or(DbError::NotFound { kind: "column", name: c.clone() })
            })
            .collect::<DbResult<_>>()?,
    };
    let snapshot = state.snapshot;
    let mut n = 0u64;
    for value_exprs in rows {
        if value_exprs.len() != positions.len() {
            return Err(DbError::Constraint(format!(
                "INSERT supplies {} values for {} columns",
                value_exprs.len(),
                positions.len()
            )));
        }
        let mut row: Row = vec![crate::datum::Datum::Null; def.columns.len()];
        let ctx = EvalContext { bindings: &[], row: &[], funcs: &inner.funcs };
        for (expr, &pos) in value_exprs.iter().zip(&positions) {
            row[pos] = eval(expr, &ctx)?;
        }
        let row = check_row(&def, row)?;
        {
            let tw = state.writes.table_mut(def.id);
            UniqueScope { inner, def: &def, tw, snapshot }.check(&row, None, None, None)?;
        }
        state.writes.table_mut(def.id).inserted.push(Some(row));
        n += 1;
    }
    Ok(ResultSet::affected(n))
}

/// Rows in the transaction's view that pass `filter`, with provenance.
fn txn_matching_rows(
    inner: &Inner,
    state: &TxnState,
    def: &TableDef,
    bindings: &[ColumnBinding],
    filter: Option<&Expr>,
    funcs: &FunctionRegistry,
) -> DbResult<Vec<(Prov, Row)>> {
    let compiled = filter.map(|pred| compile(pred, bindings, funcs)).transpose()?;
    let keep = |row: &Row| -> DbResult<bool> {
        match &compiled {
            None => Ok(true),
            Some(pred) => pred.accepts(row),
        }
    };
    let storage = inner
        .tables
        .get(&def.id)
        .ok_or_else(|| DbError::Internal("missing table storage".into()))?;
    let tw = state.writes.table(def.id);
    let snapshot = state.snapshot;
    let mut out = Vec::new();
    for page_no in 0..storage.heap.num_pages() {
        storage.heap.page_visit_rows_rid(page_no, &mut |rid, bytes| {
            if let Some(tw) = tw {
                if tw.deleted.contains(&rid) || tw.updated.contains_key(&rid) {
                    return Ok(());
                }
            }
            if storage.born.get(&rid).copied().unwrap_or(0) > snapshot {
                return Ok(());
            }
            let row = decode_row(bytes)?;
            if keep(&row)? {
                out.push((Prov::Committed(rid), row));
            }
            Ok(())
        })?;
    }
    // Prior images visible to the snapshot: the row is in the view, but a
    // concurrent transaction committed over it — writing it must conflict.
    for v in &storage.old_versions {
        if v.born <= snapshot && snapshot < v.died && keep(&v.row)? {
            out.push((Prov::Stale, v.row.clone()));
        }
    }
    if let Some(tw) = tw {
        for (rid, row) in &tw.updated {
            if keep(row)? {
                out.push((Prov::Committed(*rid), row.clone()));
            }
        }
        for (i, slot) in tw.inserted.iter().enumerate() {
            if let Some(row) = slot {
                if keep(row)? {
                    out.push((Prov::OwnInsert(i), row.clone()));
                }
            }
        }
    }
    Ok(out)
}

fn txn_update(
    inner: &Inner,
    state: &mut TxnState,
    table: &str,
    assignments: Vec<(String, Expr)>,
    filter: Option<Expr>,
    role: &Role,
) -> DbResult<ResultSet> {
    let def = writable_table(inner, table, role)?;
    let targets: Vec<(usize, Expr)> = assignments
        .into_iter()
        .map(|(c, e)| {
            def.column_index(&c)
                .map(|i| (i, e))
                .ok_or(DbError::NotFound { kind: "column", name: c })
        })
        .collect::<DbResult<_>>()?;
    let bindings: Vec<ColumnBinding> =
        def.columns.iter().map(|c| ColumnBinding::new(&def.name, &c.name)).collect();
    let matching = txn_matching_rows(inner, state, &def, &bindings, filter.as_ref(), &inner.funcs)?;
    if matching.iter().any(|(prov, _)| matches!(prov, Prov::Stale)) {
        return Err(conflict_stale_row());
    }
    let snapshot = state.snapshot;
    let mut n = 0u64;
    for (prov, row) in matching {
        let ctx = EvalContext { bindings: &bindings, row: &row, funcs: &inner.funcs };
        let mut new_row = row.clone();
        for (pos, expr) in &targets {
            new_row[*pos] = eval(expr, &ctx)?;
        }
        let new_row = check_row(&def, new_row)?;
        let (self_rid, self_insert) = match prov {
            Prov::Committed(rid) => (Some(rid), None),
            Prov::OwnInsert(i) => (None, Some(i)),
            Prov::Stale => unreachable!("stale rows rejected above"),
        };
        {
            let tw = state.writes.table_mut(def.id);
            UniqueScope { inner, def: &def, tw, snapshot }.check(
                &new_row,
                Some(&row),
                self_rid,
                self_insert,
            )?;
        }
        let tw = state.writes.table_mut(def.id);
        match prov {
            Prov::Committed(rid) => {
                tw.updated.insert(rid, new_row);
            }
            Prov::OwnInsert(i) => tw.inserted[i] = Some(new_row),
            Prov::Stale => unreachable!("stale rows rejected above"),
        }
        n += 1;
    }
    Ok(ResultSet::affected(n))
}

fn txn_delete(
    inner: &Inner,
    state: &mut TxnState,
    table: &str,
    filter: Option<Expr>,
    role: &Role,
) -> DbResult<ResultSet> {
    let def = writable_table(inner, table, role)?;
    let bindings: Vec<ColumnBinding> =
        def.columns.iter().map(|c| ColumnBinding::new(&def.name, &c.name)).collect();
    let matching = txn_matching_rows(inner, state, &def, &bindings, filter.as_ref(), &inner.funcs)?;
    if matching.iter().any(|(prov, _)| matches!(prov, Prov::Stale)) {
        return Err(conflict_stale_row());
    }
    let tw = state.writes.table_mut(def.id);
    let mut n = 0u64;
    for (prov, _) in matching {
        match prov {
            Prov::Committed(rid) => {
                tw.updated.remove(&rid);
                tw.deleted.insert(rid);
            }
            Prov::OwnInsert(i) => tw.inserted[i] = None,
            Prov::Stale => unreachable!("stale rows rejected above"),
        }
        n += 1;
    }
    Ok(ResultSet::affected(n))
}

// ---------------------------------------------------------------------------
// Commit: validate under the write lock, then apply inside one WAL frame
// ---------------------------------------------------------------------------

/// First-committer-wins validation followed by atomic application of the
/// write-set. Runs under the exclusive engine lock.
///
/// Validation is strictly ordered before any mutation: every check that
/// can fail runs first, so a conflicting or constraint-violating
/// transaction leaves the engine untouched. Application then frames the
/// row mutations between [`WalRecord::TxnBegin`] and
/// [`WalRecord::TxnCommit`] with one sync, so recovery replays the
/// transaction all-or-nothing.
pub(crate) fn validate_and_apply(inner: &mut Inner, state: &TxnState) -> DbResult<()> {
    let snapshot = state.snapshot;
    // -- validate ----------------------------------------------------------
    for (&table_id, tw) in &state.writes.tables {
        if tw.is_empty() {
            continue;
        }
        let def = inner
            .catalog
            .table_by_id(table_id)
            .ok_or_else(|| DbError::Conflict("table was dropped by a concurrent statement".into()))?
            .clone();
        let storage = inner.tables.get(&table_id).ok_or_else(|| {
            DbError::Conflict("table was dropped by a concurrent statement".into())
        })?;
        // Every written rid must still be the version the snapshot saw.
        for rid in tw.updated.keys().chain(tw.deleted.iter()) {
            if storage.born.get(rid).copied().unwrap_or(0) > snapshot
                || storage.heap.get(*rid)?.is_none()
            {
                return Err(conflict_stale_row());
            }
        }
        // Unique keys the transaction introduces must not collide — with
        // each other, or with committed rows that survive phase 1.
        for (col, idx) in &storage.btrees {
            if !idx.is_unique() {
                continue;
            }
            let pos = def.column_index(col).expect("index column exists");
            let new_rows = tw.updated.values().chain(tw.inserted.iter().flatten());
            let mut keys: Vec<&crate::datum::Datum> = Vec::new();
            for row in new_rows {
                let key = &row[pos];
                if keys.iter().any(|k| **k == *key) {
                    return Err(DbError::Constraint(format!(
                        "duplicate key {key} for unique index on {col}"
                    )));
                }
                for rid in idx.get(key) {
                    // Born check first: a recycled rid may carry a
                    // concurrent commit's row, voiding this write-set's
                    // claim on it (the rid loop above already conflicts in
                    // that case; this keeps the two checks aligned).
                    if storage.born.get(&rid).copied().unwrap_or(0) > snapshot {
                        return Err(DbError::Conflict(format!(
                            "unique key {key} for index on {col} was claimed by a \
                             concurrent transaction; retry the transaction"
                        )));
                    }
                    if tw.deleted.contains(&rid) || tw.updated.contains_key(&rid) {
                        continue;
                    }
                    return Err(DbError::Constraint(format!(
                        "duplicate key {key} for unique index on {col}"
                    )));
                }
                keys.push(key);
            }
        }
    }
    // -- apply -------------------------------------------------------------
    inner.log(WalRecord::TxnBegin)?;
    // Phase 1: clear out every rid the transaction supersedes, so phase 2's
    // inserts can never trip over keys the transaction itself is moving.
    for (&table_id, tw) in &state.writes.tables {
        let rids: Vec<Rid> = tw.deleted.iter().chain(tw.updated.keys()).copied().collect();
        for rid in rids {
            let row = inner
                .fetch_row(table_id, rid)?
                .ok_or_else(|| DbError::Internal("validated rid vanished during apply".into()))?;
            inner.delete_row(table_id, rid, &row)?;
        }
    }
    // Phase 2: write the new images (updated rows get fresh rids).
    for (&table_id, tw) in &state.writes.tables {
        let new_rows = tw.updated.values().chain(tw.inserted.iter().flatten());
        for row in new_rows {
            inner.insert_row(table_id, row.clone())?;
        }
    }
    inner.log(WalRecord::TxnCommit)?;
    inner.committed_ts += 1;
    inner.pending_dirty = false;
    if let Some(wal) = inner.wal.as_mut() {
        wal.sync()?;
    }
    Ok(())
}
