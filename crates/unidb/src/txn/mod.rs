//! # MVCC transactions: snapshot isolation with optimistic write-sets
//!
//! The transaction subsystem gives `unidb` multi-statement atomicity and
//! concurrent writers without giving up the engine's single `RwLock`
//! simplicity. The design is optimistic concurrency control over an
//! in-memory version chain:
//!
//! * **Begin** pins a snapshot: the engine's current commit timestamp.
//!   Registration happens under the shared read lock, so no commit can
//!   slide between reading the timestamp and publishing the snapshot.
//! * **Statements** inside a transaction take only the *read* lock. Reads
//!   go through a `view::ReadView` that filters rows by visibility
//!   (`born <= snapshot`), serves prior images of rows that were updated
//!   or deleted after the snapshot, and overlays the transaction's own
//!   buffered writes. Writes never touch the heap: they accumulate in a
//!   private `WriteSet`.
//! * **Commit** takes the write lock briefly: first-committer-wins
//!   validation (every written rid must still carry a version stamp at or
//!   below the snapshot; unique keys must not collide with rows the
//!   transaction cannot see), then the write-set is applied through the
//!   ordinary row mutators inside a `TxnBegin … TxnCommit` WAL frame with
//!   a single sync. A crash before the frame is durable rolls the whole
//!   transaction back at recovery; a transaction that never reaches
//!   commit writes no WAL bytes at all.
//! * **Rollback** discards the write-set — zero heap or WAL IO.
//!
//! Conflicts surface as [`DbError::Conflict`], which is *retryable*: the
//! transaction has been aborted and the caller should re-run it from
//! `BEGIN`. Transaction-state misuse (nested `BEGIN`, `COMMIT` without
//! `BEGIN`, statements on a finished transaction) surfaces as
//! [`DbError::Txn`].
//!
//! The [`Engine`]/[`Transaction`] traits are the public boundary: code
//! that drives transactions (the server's session layer, benches, tests)
//! programs against them rather than against `Database` internals.

mod exec;
mod view;

pub(crate) use view::ReadView;

use crate::catalog::Role;
use crate::db::{Database, ResultSet};
use crate::error::{DbError, DbResult};
use crate::sql::ast::Stmt;
use crate::sql::parser::parse;
use crate::storage::heap::Rid;
use crate::tuple::Row;
use genalg_obs::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A factory for transactions. [`Database`] is the engine; the trait
/// exists so harnesses (benches, the server session layer, tests) can be
/// written against the transaction boundary alone.
pub trait Engine {
    /// The transaction handle type this engine hands out.
    type Txn<'a>: Transaction
    where
        Self: 'a;

    /// Open a transaction pinned to a snapshot of the current state.
    fn begin(&self) -> Self::Txn<'_>;
}

/// An open transaction: snapshot-isolated reads, buffered writes,
/// first-committer-wins commit. Dropping an unfinished transaction rolls
/// it back.
pub trait Transaction {
    /// The engine-assigned transaction id.
    fn id(&self) -> u64;

    /// Execute one statement inside the transaction as the default user.
    fn execute(&mut self, sql: &str) -> DbResult<ResultSet>;

    /// Execute one statement inside the transaction with an explicit role.
    fn execute_as(&mut self, sql: &str, role: &Role) -> DbResult<ResultSet>;

    /// Validate and atomically apply the write-set. On
    /// [`DbError::Conflict`] the transaction is aborted and should be
    /// retried from the beginning.
    fn commit(self) -> DbResult<()>;

    /// Discard the write-set.
    fn rollback(self) -> DbResult<()>;
}

impl Engine for Database {
    type Txn<'a> = DbTransaction<'a>;

    fn begin(&self) -> DbTransaction<'_> {
        DbTransaction { db: self, id: self.txn_begin(), finished: false }
    }
}

/// RAII transaction handle over a [`Database`]; the [`Engine`] trait's
/// concrete transaction type.
pub struct DbTransaction<'a> {
    db: &'a Database,
    id: u64,
    finished: bool,
}

impl Transaction for DbTransaction<'_> {
    fn id(&self) -> u64 {
        self.id
    }

    fn execute(&mut self, sql: &str) -> DbResult<ResultSet> {
        self.db.txn_execute(self.id, sql)
    }

    fn execute_as(&mut self, sql: &str, role: &Role) -> DbResult<ResultSet> {
        self.db.txn_execute_as(self.id, sql, role)
    }

    fn commit(mut self) -> DbResult<()> {
        self.finished = true;
        self.db.txn_commit(self.id)
    }

    fn rollback(mut self) -> DbResult<()> {
        self.finished = true;
        self.db.txn_rollback(self.id)
    }
}

impl Drop for DbTransaction<'_> {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.db.txn_rollback(self.id);
        }
    }
}

/// Counter snapshot for `SHOW STATS` / `SHOW METRICS` (see
/// [`Database::txn_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions begun since open.
    pub begun: u64,
    /// Transactions that committed (including empty commits).
    pub committed: u64,
    /// Transactions that ended without committing: explicit rollbacks,
    /// dropped handles, timeouts, and conflict aborts.
    pub aborted: u64,
    /// Serialization conflicts detected (eagerly at a statement or at
    /// commit validation).
    pub conflicts: u64,
    /// Prior row images garbage-collected because no active snapshot
    /// could still see them (see `Inner::gc_versions`).
    pub versions_pruned: u64,
}

/// Buffered writes of one transaction against one table.
#[derive(Debug, Default)]
pub(crate) struct TableWrites {
    /// Committed rids rewritten by this transaction, with their new
    /// contents. The rid keys double as the conflict-validation set.
    pub(crate) updated: HashMap<Rid, Row>,
    /// Committed rids deleted by this transaction.
    pub(crate) deleted: HashSet<Rid>,
    /// Rows this transaction inserted. `None` marks an insert that a later
    /// statement in the same transaction deleted (indices must stay stable
    /// because statements refer to own-inserts by position).
    pub(crate) inserted: Vec<Option<Row>>,
}

impl TableWrites {
    pub(crate) fn is_empty(&self) -> bool {
        self.updated.is_empty()
            && self.deleted.is_empty()
            && self.inserted.iter().all(|r| r.is_none())
    }
}

/// A transaction's private, uncommitted writes, grouped by table id.
#[derive(Debug, Default)]
pub(crate) struct WriteSet {
    pub(crate) tables: HashMap<u32, TableWrites>,
}

impl WriteSet {
    pub(crate) fn is_empty(&self) -> bool {
        self.tables.values().all(TableWrites::is_empty)
    }

    pub(crate) fn table(&self, table_id: u32) -> Option<&TableWrites> {
        self.tables.get(&table_id)
    }

    pub(crate) fn table_mut(&mut self, table_id: u32) -> &mut TableWrites {
        self.tables.entry(table_id).or_default()
    }
}

/// Everything the engine keeps for one open transaction.
pub(crate) struct TxnState {
    /// The pinned snapshot: rows are visible iff committed at or before it.
    pub(crate) snapshot: u64,
    pub(crate) writes: WriteSet,
    /// Set when a serialization conflict has already been detected: the
    /// transaction can only be rolled back (commit re-reports the
    /// conflict), mirroring "current transaction is aborted" semantics.
    pub(crate) doomed: Option<String>,
    pub(crate) started: Instant,
}

/// Registry slot: `Busy` while a thread is executing a statement inside
/// the transaction (the snapshot stays pinned for GC either way).
enum Slot {
    Ready(Box<TxnState>),
    Busy { snapshot: u64 },
}

impl Slot {
    fn snapshot(&self) -> u64 {
        match self {
            Slot::Ready(s) => s.snapshot,
            Slot::Busy { snapshot } => *snapshot,
        }
    }
}

/// Hands out monotonically increasing transaction ids, tracks open
/// transactions and their snapshots, and owns the transaction counters.
/// Lives outside the engine `RwLock` so concurrent sessions can run
/// statements in different transactions at the same time.
pub(crate) struct TxnManager {
    next_id: AtomicU64,
    registry: Mutex<HashMap<u64, Slot>>,
    pub(crate) begun: AtomicU64,
    pub(crate) committed: AtomicU64,
    pub(crate) aborted: AtomicU64,
    pub(crate) conflicts: AtomicU64,
    pub(crate) versions_pruned: AtomicU64,
    pub(crate) duration: Histogram,
}

impl TxnManager {
    pub(crate) fn new() -> Self {
        TxnManager {
            next_id: AtomicU64::new(1),
            registry: Mutex::new(HashMap::new()),
            begun: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            versions_pruned: AtomicU64::new(0),
            duration: Histogram::default(),
        }
    }

    /// Register a fresh transaction pinned to `snapshot`. The caller must
    /// hold at least the engine read lock so no commit (and thus no
    /// version GC) can run between reading the timestamp and registering.
    fn register(&self, snapshot: u64) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = TxnState {
            snapshot,
            writes: WriteSet::default(),
            doomed: None,
            started: Instant::now(),
        };
        self.registry.lock().insert(id, Slot::Ready(Box::new(state)));
        self.begun.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Check out the transaction's state for one statement (or for
    /// commit). While checked out, other threads see "busy".
    fn take(&self, id: u64) -> DbResult<Box<TxnState>> {
        let mut reg = self.registry.lock();
        match reg.get_mut(&id) {
            None => Err(DbError::Txn(format!(
                "no transaction {id}: it was never begun, or it already committed, \
                 rolled back, or timed out"
            ))),
            Some(slot @ Slot::Ready(_)) => {
                let snapshot = slot.snapshot();
                let Slot::Ready(state) = std::mem::replace(slot, Slot::Busy { snapshot }) else {
                    unreachable!("slot matched Ready");
                };
                Ok(state)
            }
            Some(Slot::Busy { .. }) => Err(DbError::Txn(format!(
                "transaction {id} is busy executing a statement on another thread"
            ))),
        }
    }

    fn put_back(&self, id: u64, state: Box<TxnState>) {
        self.registry.lock().insert(id, Slot::Ready(state));
    }

    /// Deregister `id` (the state was already taken).
    fn finish(&self, id: u64) {
        self.registry.lock().remove(&id);
    }

    /// Number of open transactions (including busy ones).
    pub(crate) fn active(&self) -> usize {
        self.registry.lock().len()
    }

    /// Snapshots of every open transaction, sorted ascending — the
    /// version GC tests each prior image's visibility window against
    /// this list.
    pub(crate) fn active_snapshots(&self) -> Vec<u64> {
        let mut snaps: Vec<u64> = self.registry.lock().values().map(Slot::snapshot).collect();
        snaps.sort_unstable();
        snaps
    }

    pub(crate) fn stats(&self) -> TxnStats {
        TxnStats {
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            versions_pruned: self.versions_pruned.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Database: the id-based transaction API the trait handles delegate to
// ---------------------------------------------------------------------------

impl Database {
    /// Open a transaction and return its id. The snapshot is pinned under
    /// the shared read lock, so it is consistent with every committed
    /// statement and concurrent with nothing.
    pub fn txn_begin(&self) -> u64 {
        let inner = self.inner.read();
        // Register while still holding the read lock: a commit's version
        // GC (which runs under the write lock) must see this snapshot.
        self.txns.register(inner.committed_ts)
    }

    /// Execute one statement inside transaction `id` as the default user.
    pub fn txn_execute(&self, id: u64, sql: &str) -> DbResult<ResultSet> {
        self.txn_execute_as(id, sql, &Role::User("user".into()))
    }

    /// Execute one statement inside transaction `id` with an explicit
    /// role. Reads see the transaction's snapshot plus its own writes;
    /// writes buffer in the write-set. DDL and nested transaction control
    /// are rejected with [`DbError::Txn`].
    pub fn txn_execute_as(&self, id: u64, sql: &str, role: &Role) -> DbResult<ResultSet> {
        let stmt = parse(sql)?;
        self.txn_dispatch(id, stmt, role)
    }

    pub(crate) fn txn_dispatch(&self, id: u64, stmt: Stmt, role: &Role) -> DbResult<ResultSet> {
        match stmt {
            Stmt::Begin => Err(DbError::Txn("nested transactions are not supported".into())),
            Stmt::Commit | Stmt::Rollback => Err(DbError::Txn(
                "COMMIT/ROLLBACK of an explicit transaction must go through its handle".into(),
            )),
            other => {
                let mut state = self.txns.take(id)?;
                let result = {
                    let inner = self.inner.read();
                    exec::run_txn_stmt(&inner, &mut state, other, role)
                };
                if let Err(DbError::Conflict(msg)) = &result {
                    if state.doomed.is_none() {
                        state.doomed = Some(msg.clone());
                        self.txns.conflicts.fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.txns.put_back(id, state);
                result
            }
        }
    }

    /// Commit transaction `id`: first-committer-wins validation, then the
    /// write-set applies atomically inside one WAL frame. Whatever the
    /// outcome, the transaction is finished afterwards.
    ///
    /// Errors: [`DbError::Conflict`] (retryable — a concurrent transaction
    /// committed first), [`DbError::Constraint`] (the write-set violates a
    /// unique index), [`DbError::Io`] (the commit applied in memory but
    /// the WAL sync failed; durability catches up on the next sync).
    pub fn txn_commit(&self, id: u64) -> DbResult<()> {
        let state = self.txns.take(id)?;
        let elapsed = state.started.elapsed();
        if let Some(reason) = &state.doomed {
            self.txns.finish(id);
            self.txns.aborted.fetch_add(1, Ordering::Relaxed);
            self.txns.duration.record(elapsed);
            return Err(DbError::Conflict(format!("transaction aborted: {reason}")));
        }
        if state.writes.is_empty() {
            // Read-only: nothing to validate, apply, or log.
            self.txns.finish(id);
            self.txns.committed.fetch_add(1, Ordering::Relaxed);
            self.txns.duration.record(elapsed);
            return Ok(());
        }
        let result = {
            let mut inner = self.inner.write();
            // Deregister before applying: the committing transaction's own
            // snapshot must not pin versions, and its stamps only matter
            // to transactions that remain active.
            self.txns.finish(id);
            inner.track_versions = self.txns.active() > 0;
            let result = exec::validate_and_apply(&mut inner, &state);
            let actives = self.txns.active_snapshots();
            let current = inner.committed_ts;
            let pruned = inner.gc_versions(&actives, current);
            self.txns.versions_pruned.fetch_add(pruned, Ordering::Relaxed);
            result
        };
        self.txns.duration.record(elapsed);
        match &result {
            // An Io error means the WAL sync failed *after* the write-set
            // applied in memory: the transaction is committed for every
            // in-process reader, durability is retried on the next sync.
            Ok(()) | Err(DbError::Io(_)) => {
                self.txns.committed.fetch_add(1, Ordering::Relaxed);
            }
            Err(DbError::Conflict(_)) => {
                self.txns.conflicts.fetch_add(1, Ordering::Relaxed);
                self.txns.aborted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.txns.aborted.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Roll back transaction `id`: the write-set is discarded without any
    /// heap or WAL IO.
    pub fn txn_rollback(&self, id: u64) -> DbResult<()> {
        let state = self.txns.take(id)?;
        self.txns.finish(id);
        self.txns.aborted.fetch_add(1, Ordering::Relaxed);
        self.txns.duration.record(state.started.elapsed());
        Ok(())
    }

    /// True while transaction `id` is open (idle or busy).
    pub fn txn_is_active(&self, id: u64) -> bool {
        self.txns.registry.lock().contains_key(&id)
    }

    /// Transaction counters since open.
    pub fn txn_stats(&self) -> TxnStats {
        self.txns.stats()
    }

    /// Latency distribution of finished transactions (begin → commit or
    /// rollback), for the server's `txn_duration` histogram.
    pub fn txn_duration(&self) -> HistogramSnapshot {
        self.txns.duration.snapshot()
    }
}
