//! Snapshot-isolated storage and planner view.
//!
//! A [`ReadView`] wraps the engine state with a snapshot timestamp and
//! (for statements inside a transaction) the transaction's own write-set,
//! and implements both [`StorageAccess`] and [`PlannerContext`], so the
//! ordinary planner and executor run unmodified against it.
//!
//! **Fast path**: a table nothing committed to since the snapshot, and
//! that the transaction has not written, scans exactly like a latest-read
//! — straight delegation, no per-row checks.
//!
//! **Versioned path**: a *dirty* table (committed-to after the snapshot,
//! or carrying overlay writes) scans with per-rid visibility filtering,
//! and appends one *virtual page* past the real heap serving (a) prior
//! images visible to the snapshot but already superseded in the heap and
//! (b) the transaction's own updated/inserted rows. The planner side
//! reports no usable indexes for dirty tables, forcing sequential scans —
//! index entries reflect latest state, not the snapshot, so rid-based
//! access paths would be wrong.

use crate::catalog::{Catalog, EquiDepthHistogram};
use crate::datum::Datum;
use crate::db::{Inner, TableStorage};
use crate::error::{DbError, DbResult};
use crate::exec::{ScanProgress, ScanSpec, StorageAccess};
use crate::expr::func::FunctionRegistry;
use crate::plan::planner::PlannerContext;
use crate::storage::heap::Rid;
use crate::tuple::{decode_row_cols_into, Row};
use crate::txn::{TableWrites, WriteSet};
use std::ops::Bound;
use std::sync::atomic::Ordering;

pub(crate) struct ReadView<'a> {
    pub(crate) inner: &'a Inner,
    /// Rows are visible iff their commit timestamp is at or below this.
    pub(crate) snapshot: u64,
    /// The running transaction's own writes (`None` for a bare snapshot
    /// read with no transaction overlay).
    pub(crate) writes: Option<&'a WriteSet>,
}

impl<'a> ReadView<'a> {
    pub(crate) fn new(inner: &'a Inner, snapshot: u64, writes: Option<&'a WriteSet>) -> Self {
        ReadView { inner, snapshot, writes }
    }

    fn overlay(&self, table_id: u32) -> Option<&'a TableWrites> {
        self.writes.and_then(|w| w.table(table_id))
    }

    /// A table needs versioned scanning if anything committed to it after
    /// the snapshot, or if the transaction has buffered writes against it.
    fn dirty(&self, table_id: u32) -> bool {
        self.overlay(table_id).is_some()
            || self.inner.table_gens.get(&table_id).copied().unwrap_or(0) > self.snapshot
    }

    fn storage(&self, table_id: u32) -> DbResult<&'a TableStorage> {
        self.inner
            .tables
            .get(&table_id)
            .ok_or_else(|| DbError::Internal("missing table storage".into()))
    }

    /// Is the heap row at `rid` part of this view's base relation? Own
    /// updates and deletes hide the heap row (updates re-serve the new
    /// contents from the virtual page); rows born after the snapshot are
    /// invisible.
    fn rid_visible(&self, storage: &TableStorage, overlay: Option<&TableWrites>, rid: Rid) -> bool {
        if let Some(tw) = overlay {
            if tw.deleted.contains(&rid) || tw.updated.contains_key(&rid) {
                return false;
            }
        }
        storage.born.get(&rid).copied().unwrap_or(0) <= self.snapshot
    }

    /// Rows served by the virtual page appended after the real heap:
    /// snapshot-visible prior images, then the overlay's updated and
    /// inserted rows.
    fn visit_virtual_page(
        &self,
        storage: &TableStorage,
        overlay: Option<&TableWrites>,
        max_fields: usize,
        on_row: &mut dyn FnMut(&[Datum]) -> DbResult<()>,
    ) -> DbResult<()> {
        let mut emit = |row: &Row| on_row(&row[..max_fields.min(row.len())]);
        for v in &storage.old_versions {
            if v.born <= self.snapshot && self.snapshot < v.died {
                // A prior image whose rid this transaction already wrote
                // is superseded by the overlay entry emitted below —
                // serving both would duplicate the logical row.
                if let Some(tw) = overlay {
                    if tw.updated.contains_key(&v.rid) || tw.deleted.contains(&v.rid) {
                        continue;
                    }
                }
                emit(&v.row)?;
            }
        }
        if let Some(tw) = overlay {
            for row in tw.updated.values() {
                emit(row)?;
            }
            for row in tw.inserted.iter().flatten() {
                emit(row)?;
            }
        }
        Ok(())
    }
}

impl StorageAccess for ReadView<'_> {
    fn scan_batches(
        &self,
        table_id: u32,
        first_page: u32,
        max_pages: u32,
        spec: &ScanSpec,
        on_row: &mut dyn FnMut(&[Datum]) -> DbResult<()>,
    ) -> DbResult<ScanProgress> {
        if !self.dirty(table_id) {
            return self.inner.scan_batches(table_id, first_page, max_pages, spec, on_row);
        }
        // Versioned path: no zone-map pruning. Zones describe the latest
        // heap, while this view filters per-rid and serves prior images
        // from the virtual page; visiting every page keeps the soundness
        // argument local. The path choice depends only on table state,
        // never on parallelism, so counters stay deterministic.
        let storage = self.storage(table_id)?;
        let overlay = self.overlay(table_id);
        let real = storage.heap.num_pages();
        // One virtual page past the heap carries prior images and the
        // overlay, so morsel-parallel scans pick it up like any other page.
        let total = real.saturating_add(1);
        if first_page >= total {
            return Ok(ScanProgress {
                next_page: None,
                pages_read: 0,
                pages_skipped: 0,
                segments_decoded: 0,
            });
        }
        let end = first_page.saturating_add(max_pages).min(total);
        let mut segments = 0u64;
        let mut scratch: Row = Vec::new();
        for page_no in first_page..end.min(real) {
            let (mut rows_on_page, mut referenced) = (0u64, 0u64);
            storage.heap.page_visit_rows_rid(page_no, &mut |rid, bytes| {
                if !self.rid_visible(storage, overlay, rid) {
                    return Ok(());
                }
                decode_row_cols_into(&mut scratch, bytes, spec.prefix, spec.mask.as_deref())?;
                if rows_on_page == 0 {
                    referenced = match spec.mask.as_deref() {
                        Some(m) => m.iter().take(scratch.len()).filter(|b| **b).count() as u64,
                        None => scratch.len() as u64,
                    };
                }
                rows_on_page += 1;
                on_row(&scratch)
            })?;
            if rows_on_page > 0 {
                segments += referenced;
            }
        }
        if end == total {
            // The virtual page serves pre-materialized rows; it decodes
            // no segments, identically at any parallelism.
            self.visit_virtual_page(storage, overlay, spec.prefix, on_row)?;
        }
        let real_visited = end.min(real).saturating_sub(first_page.min(real));
        if real_visited > 0 {
            self.inner.scan_pages.fetch_add(u64::from(real_visited), Ordering::Relaxed);
        }
        Ok(ScanProgress {
            next_page: if end < total { Some(end) } else { None },
            pages_read: end - first_page,
            pages_skipped: 0,
            segments_decoded: segments,
        })
    }

    fn fetch_rids(&self, table_id: u32, rids: &[Rid]) -> DbResult<Vec<Row>> {
        if !self.dirty(table_id) {
            return self.inner.fetch_rids(table_id, rids);
        }
        // Defensive: the planner never emits rid-based access paths for
        // dirty tables (no indexes are reported below), but filter by
        // visibility anyway so a stale plan cannot leak future rows.
        let storage = self.storage(table_id)?;
        let overlay = self.overlay(table_id);
        let visible: Vec<Rid> =
            rids.iter().copied().filter(|&rid| self.rid_visible(storage, overlay, rid)).collect();
        self.inner.fetch_rids(table_id, &visible)
    }

    fn btree_eq(&self, table_id: u32, column: &str, key: &Datum) -> DbResult<Vec<Rid>> {
        self.inner.btree_eq(table_id, column, key)
    }

    fn btree_range(
        &self,
        table_id: u32,
        column: &str,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
    ) -> DbResult<Vec<Rid>> {
        self.inner.btree_range(table_id, column, lo, hi)
    }

    fn udi_probe(
        &self,
        table_id: u32,
        column: &str,
        func: &str,
        args: &[Datum],
    ) -> DbResult<Vec<Rid>> {
        self.inner.udi_probe(table_id, column, func, args)
    }
}

impl PlannerContext for ReadView<'_> {
    fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    fn funcs(&self) -> &FunctionRegistry {
        &self.inner.funcs
    }

    fn btree_columns(&self, table_id: u32) -> Vec<(String, usize)> {
        // Index entries describe the *latest* heap, not the snapshot:
        // dirty tables must plan as sequential scans over the view.
        if self.dirty(table_id) {
            return Vec::new();
        }
        self.inner.btree_columns(table_id)
    }

    fn row_count(&self, table_id: u32) -> u64 {
        // A cardinality estimate for costing; latest count is close enough.
        self.inner.row_count(table_id)
    }

    fn column_ndv(&self, table_id: u32, column: &str) -> Option<u64> {
        // NDV only steers build-side choice and join order; like
        // `row_count`, the latest sketch is close enough for a snapshot.
        self.inner.column_ndv(table_id, column)
    }

    fn column_histogram(&self, table_id: u32, column: &str) -> Option<EquiDepthHistogram> {
        // Histograms only rank access paths and order filters; the
        // latest sample is close enough for a snapshot.
        self.inner.column_histogram(table_id, column)
    }

    fn column_null_frac(&self, table_id: u32, column: &str) -> Option<f64> {
        self.inner.column_null_frac(table_id, column)
    }

    fn udi_selectivity(
        &self,
        table_id: u32,
        column: &str,
        func: &str,
        args: &[Datum],
    ) -> Option<f64> {
        if self.dirty(table_id) {
            return None;
        }
        self.inner.udi_selectivity(table_id, column, func, args)
    }
}
