//! An arena-based B+-tree mapping datum keys to record ids.
//!
//! * Non-unique by default: each key holds a posting list of rids; a
//!   unique index rejects a second rid for an existing key.
//! * Leaves are chained for range scans.
//! * Deletion is lazy (no rebalancing): emptied entries are removed from
//!   their leaf but underflowing leaves are tolerated. Lookups remain
//!   correct; space is reclaimed when the key is reinserted.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::storage::heap::Rid;
use std::ops::Bound;

/// Maximum keys per node before a split.
const MAX_KEYS: usize = 32;

#[derive(Debug)]
enum Node {
    Internal { keys: Vec<Datum>, children: Vec<u32> },
    Leaf { keys: Vec<Datum>, postings: Vec<Vec<Rid>>, next: Option<u32> },
}

/// A B+-tree secondary index.
#[derive(Debug)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: u32,
    entries: usize,
    unique: bool,
}

impl BTreeIndex {
    /// An empty index. A unique index rejects duplicate keys.
    pub fn new(unique: bool) -> Self {
        BTreeIndex {
            nodes: vec![Node::Leaf { keys: Vec::new(), postings: Vec::new(), next: None }],
            root: 0,
            entries: 0,
            unique,
        }
    }

    /// Number of (key, rid) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Whether this index enforces key uniqueness.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Insert an entry.
    pub fn insert(&mut self, key: Datum, rid: Rid) -> DbResult<()> {
        if self.unique && !self.get(&key).is_empty() {
            return Err(DbError::Constraint(format!("duplicate key {key} in unique index")));
        }
        if let Some((sep, right)) = self.insert_rec(self.root, key, rid)? {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            self.nodes.push(Node::Internal { keys: vec![sep], children: vec![old_root, right] });
            self.root = self.nodes.len() as u32 - 1;
        }
        self.entries += 1;
        Ok(())
    }

    /// Remove one (key, rid) entry; returns whether it existed.
    pub fn remove(&mut self, key: &Datum, rid: Rid) -> bool {
        let leaf = self.find_leaf(key);
        let Node::Leaf { keys, postings, .. } = &mut self.nodes[leaf as usize] else {
            unreachable!("find_leaf returns leaves")
        };
        let Ok(pos) = keys.binary_search(key) else { return false };
        let list = &mut postings[pos];
        let Some(at) = list.iter().position(|r| *r == rid) else { return false };
        list.swap_remove(at);
        if list.is_empty() {
            keys.remove(pos);
            postings.remove(pos);
        }
        self.entries -= 1;
        true
    }

    /// The rids stored under `key`.
    pub fn get(&self, key: &Datum) -> Vec<Rid> {
        let leaf = self.find_leaf(key);
        let Node::Leaf { keys, postings, .. } = &self.nodes[leaf as usize] else {
            unreachable!("find_leaf returns leaves")
        };
        match keys.binary_search(key) {
            Ok(pos) => postings[pos].clone(),
            Err(_) => Vec::new(),
        }
    }

    /// Range scan over `(lo, hi)` bounds, ascending by key.
    pub fn range(&self, lo: Bound<&Datum>, hi: Bound<&Datum>) -> Vec<(Datum, Rid)> {
        let mut out = Vec::new();
        // Find the starting leaf.
        let mut leaf = match lo {
            Bound::Included(k) | Bound::Excluded(k) => self.find_leaf(k),
            Bound::Unbounded => self.leftmost_leaf(),
        };
        loop {
            let Node::Leaf { keys, postings, next } = &self.nodes[leaf as usize] else {
                unreachable!("leaf chain only contains leaves")
            };
            for (k, list) in keys.iter().zip(postings) {
                let after_lo = match lo {
                    Bound::Included(b) => k >= b,
                    Bound::Excluded(b) => k > b,
                    Bound::Unbounded => true,
                };
                if !after_lo {
                    continue;
                }
                let before_hi = match hi {
                    Bound::Included(b) => k <= b,
                    Bound::Excluded(b) => k < b,
                    Bound::Unbounded => true,
                };
                if !before_hi {
                    return out;
                }
                for rid in list {
                    out.push((k.clone(), *rid));
                }
            }
            match next {
                Some(n) => leaf = *n,
                None => return out,
            }
        }
    }

    /// All entries in key order.
    pub fn iter_all(&self) -> Vec<(Datum, Rid)> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Number of distinct keys (used for selectivity estimation).
    pub fn distinct_keys(&self) -> usize {
        let mut count = 0;
        let mut leaf = self.leftmost_leaf();
        loop {
            let Node::Leaf { keys, next, .. } = &self.nodes[leaf as usize] else {
                unreachable!("leaf chain only contains leaves")
            };
            count += keys.len();
            match next {
                Some(n) => leaf = *n,
                None => return count,
            }
        }
    }

    /// Height of the tree (1 = just a root leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    // -- internals -----------------------------------------------------------

    fn find_leaf(&self, key: &Datum) -> u32 {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { .. } => return node,
                Node::Internal { keys, children } => {
                    // children[i] covers keys < keys[i]; the last child
                    // covers the rest.
                    let idx = keys.partition_point(|k| k <= key);
                    node = children[idx];
                }
            }
        }
    }

    fn leftmost_leaf(&self) -> u32 {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { .. } => return node,
                Node::Internal { children, .. } => node = children[0],
            }
        }
    }

    /// Recursive insert; returns `Some((separator, new_right_node))` when
    /// the child split.
    fn insert_rec(&mut self, node: u32, key: Datum, rid: Rid) -> DbResult<Option<(Datum, u32)>> {
        // Decide the path with a short immutable borrow so recursion can
        // re-borrow the arena.
        let descend = match &self.nodes[node as usize] {
            Node::Leaf { .. } => None,
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= &key);
                Some((idx, children[idx]))
            }
        };
        match descend {
            None => {
                let Node::Leaf { keys, postings, .. } = &mut self.nodes[node as usize] else {
                    unreachable!("checked above")
                };
                let needs_split = match keys.binary_search(&key) {
                    Ok(pos) => {
                        postings[pos].push(rid);
                        false
                    }
                    Err(pos) => {
                        keys.insert(pos, key);
                        postings.insert(pos, vec![rid]);
                        keys.len() > MAX_KEYS
                    }
                };
                Ok(needs_split.then(|| self.split_leaf(node)))
            }
            Some((idx, child)) => {
                if let Some((sep, right)) = self.insert_rec(child, key, rid)? {
                    let Node::Internal { keys, children } = &mut self.nodes[node as usize] else {
                        unreachable!("node kind is stable")
                    };
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > MAX_KEYS {
                        return Ok(Some(self.split_internal(node)));
                    }
                }
                Ok(None)
            }
        }
    }

    fn split_leaf(&mut self, node: u32) -> (Datum, u32) {
        let new_idx = self.nodes.len() as u32;
        let Node::Leaf { keys, postings, next } = &mut self.nodes[node as usize] else {
            unreachable!("split_leaf called on a leaf")
        };
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_postings = postings.split_off(mid);
        let right_next = next.take();
        *next = Some(new_idx);
        let sep = right_keys[0].clone();
        self.nodes.push(Node::Leaf {
            keys: right_keys,
            postings: right_postings,
            next: right_next,
        });
        (sep, new_idx)
    }

    fn split_internal(&mut self, node: u32) -> (Datum, u32) {
        let new_idx = self.nodes.len() as u32;
        let Node::Internal { keys, children } = &mut self.nodes[node as usize] else {
            unreachable!("split_internal called on an internal node")
        };
        let mid = keys.len() / 2;
        // The middle key moves up; right node takes keys after it.
        let right_keys = keys.split_off(mid + 1);
        let sep = keys.pop().expect("mid < len");
        let right_children = children.split_off(mid + 1);
        self.nodes.push(Node::Internal { keys: right_keys, children: right_children });
        (sep, new_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> Rid {
        Rid { page: n, slot: 0 }
    }

    #[test]
    fn insert_and_get() {
        let mut idx = BTreeIndex::new(false);
        idx.insert(Datum::Int(5), rid(1)).unwrap();
        idx.insert(Datum::Int(3), rid(2)).unwrap();
        idx.insert(Datum::Int(5), rid(3)).unwrap();
        assert_eq!(idx.get(&Datum::Int(5)), vec![rid(1), rid(3)]);
        assert_eq!(idx.get(&Datum::Int(3)), vec![rid(2)]);
        assert!(idx.get(&Datum::Int(9)).is_empty());
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut idx = BTreeIndex::new(true);
        idx.insert(Datum::Text("a".into()), rid(1)).unwrap();
        assert!(idx.insert(Datum::Text("a".into()), rid(2)).is_err());
        assert!(idx.is_unique());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let mut idx = BTreeIndex::new(false);
        // Insert in a scrambled order.
        let n = 2000i64;
        let mut keys: Vec<i64> = (0..n).collect();
        // Deterministic shuffle.
        for i in 0..keys.len() {
            let j = (i * 7919) % keys.len();
            keys.swap(i, j);
        }
        for &k in &keys {
            idx.insert(Datum::Int(k), rid(k as u32)).unwrap();
        }
        assert_eq!(idx.len(), n as usize);
        assert!(idx.height() > 1, "tree should have split");
        let all = idx.iter_all();
        assert_eq!(all.len(), n as usize);
        for (i, (k, r)) in all.iter().enumerate() {
            assert_eq!(*k, Datum::Int(i as i64));
            assert_eq!(*r, rid(i as u32));
        }
        // Point lookups all work.
        for k in [0, 1, 999, 1999] {
            assert_eq!(idx.get(&Datum::Int(k)), vec![rid(k as u32)]);
        }
        assert_eq!(idx.distinct_keys(), n as usize);
    }

    #[test]
    fn range_scans() {
        let mut idx = BTreeIndex::new(false);
        for k in 0..100i64 {
            idx.insert(Datum::Int(k), rid(k as u32)).unwrap();
        }
        let lo = Datum::Int(10);
        let hi = Datum::Int(20);
        let inclusive = idx.range(Bound::Included(&lo), Bound::Included(&hi));
        assert_eq!(inclusive.len(), 11);
        assert_eq!(inclusive[0].0, Datum::Int(10));
        assert_eq!(inclusive[10].0, Datum::Int(20));
        let exclusive = idx.range(Bound::Excluded(&lo), Bound::Excluded(&hi));
        assert_eq!(exclusive.len(), 9);
        let from = idx.range(Bound::Included(&Datum::Int(95)), Bound::Unbounded);
        assert_eq!(from.len(), 5);
        let upto = idx.range(Bound::Unbounded, Bound::Excluded(&Datum::Int(5)));
        assert_eq!(upto.len(), 5);
    }

    #[test]
    fn remove_entries() {
        let mut idx = BTreeIndex::new(false);
        for k in 0..200i64 {
            idx.insert(Datum::Int(k % 50), rid(k as u32)).unwrap();
        }
        assert_eq!(idx.get(&Datum::Int(7)).len(), 4);
        assert!(idx.remove(&Datum::Int(7), rid(7)));
        assert_eq!(idx.get(&Datum::Int(7)).len(), 3);
        assert!(!idx.remove(&Datum::Int(7), rid(7)), "already removed");
        assert!(!idx.remove(&Datum::Int(999), rid(0)));
        // Remove every posting of one key.
        for r in [57, 107, 157] {
            assert!(idx.remove(&Datum::Int(7), rid(r)));
        }
        assert!(idx.get(&Datum::Int(7)).is_empty());
        // The key is gone from range scans too.
        let hits = idx.range(Bound::Included(&Datum::Int(7)), Bound::Included(&Datum::Int(7)));
        assert!(hits.is_empty());
    }

    #[test]
    fn mixed_type_keys_order_consistently() {
        let mut idx = BTreeIndex::new(false);
        idx.insert(Datum::Text("b".into()), rid(1)).unwrap();
        idx.insert(Datum::Int(10), rid(2)).unwrap();
        idx.insert(Datum::Null, rid(3)).unwrap();
        idx.insert(Datum::Float(2.5), rid(4)).unwrap();
        let all = idx.iter_all();
        // Null < numerics < text per Datum's total order.
        assert_eq!(all[0].1, rid(3));
        assert_eq!(all[1].1, rid(4));
        assert_eq!(all[2].1, rid(2));
        assert_eq!(all[3].1, rid(1));
    }

    #[test]
    fn reinsert_after_full_removal() {
        let mut idx = BTreeIndex::new(true);
        idx.insert(Datum::Int(1), rid(1)).unwrap();
        assert!(idx.remove(&Datum::Int(1), rid(1)));
        // Unique constraint sees the key as free again.
        idx.insert(Datum::Int(1), rid(2)).unwrap();
        assert_eq!(idx.get(&Datum::Int(1)), vec![rid(2)]);
    }
}
