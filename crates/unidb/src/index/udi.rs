//! User-defined index access methods (§6.5).
//!
//! "As we add the ability to store genomic data, a need arises for indexing
//! these data by using domain-specific indexing techniques. The DBMS must
//! then offer a mechanism to integrate these user-defined index
//! structures." This trait is that mechanism: an access method maintains
//! itself on every insert/delete of the indexed column and may volunteer to
//! answer a *function predicate* (e.g. `contains(seq, pattern)`) with a
//! candidate rid list plus a selectivity estimate for the optimizer.
//!
//! The contract is filter-semantics: a probe may return false positives
//! (the executor re-checks the predicate on each candidate row) but must
//! never miss a true match.

use crate::datum::Datum;
use crate::storage::heap::Rid;

/// A pluggable domain index over one column of one table.
///
/// `Send + Sync` because registered methods live inside the database and are
/// probed under the shared read lock by concurrent sessions.
pub trait AccessMethod: Send + Sync {
    /// Name for EXPLAIN output and diagnostics.
    fn name(&self) -> &str;

    /// Maintain the index on insert of a row (called with the indexed
    /// column's value).
    fn on_insert(&mut self, rid: Rid, value: &Datum);

    /// Maintain the index on delete of a row.
    fn on_delete(&mut self, rid: Rid, value: &Datum);

    /// Can this method answer probes for the named function predicate?
    /// Consulted by the planner before committing to a UDI scan.
    fn supports(&self, func: &str) -> bool;

    /// Offer candidates for `func(indexed_column, args...)`. `args` holds
    /// the non-column arguments. Return `None` if this method cannot help
    /// with the predicate (the planner falls back to a scan).
    fn probe(&self, func: &str, args: &[Datum]) -> Option<Vec<Rid>>;

    /// Estimated fraction of rows satisfying the predicate, if estimable.
    /// Feeds the optimizer's cost model (§6.5).
    fn selectivity(&self, func: &str, args: &[Datum]) -> Option<f64> {
        let _ = (func, args);
        None
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::collections::HashMap;

    /// A toy access method indexing text values by their first byte —
    /// answers `starts_with(col, prefix)` probes. Used by planner tests.
    #[derive(Default)]
    pub struct FirstByteIndex {
        by_first: HashMap<u8, Vec<Rid>>,
    }

    impl AccessMethod for FirstByteIndex {
        fn name(&self) -> &str {
            "first_byte"
        }

        fn on_insert(&mut self, rid: Rid, value: &Datum) {
            if let Some(text) = value.as_text() {
                if let Some(&b) = text.as_bytes().first() {
                    self.by_first.entry(b).or_default().push(rid);
                }
            }
        }

        fn on_delete(&mut self, rid: Rid, value: &Datum) {
            if let Some(text) = value.as_text() {
                if let Some(&b) = text.as_bytes().first() {
                    if let Some(v) = self.by_first.get_mut(&b) {
                        v.retain(|r| *r != rid);
                    }
                }
            }
        }

        fn supports(&self, func: &str) -> bool {
            func == "starts_with"
        }

        fn probe(&self, func: &str, args: &[Datum]) -> Option<Vec<Rid>> {
            if func != "starts_with" {
                return None;
            }
            let prefix = args.first()?.as_text()?;
            let first = *prefix.as_bytes().first()?;
            Some(self.by_first.get(&first).cloned().unwrap_or_default())
        }

        fn selectivity(&self, func: &str, args: &[Datum]) -> Option<f64> {
            let hits = self.probe(func, args)?.len();
            let total: usize = self.by_first.values().map(Vec::len).sum();
            Some(if total == 0 { 0.0 } else { hits as f64 / total as f64 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::FirstByteIndex;
    use super::*;

    fn rid(n: u32) -> Rid {
        Rid { page: n, slot: 0 }
    }

    #[test]
    fn maintains_and_probes() {
        let mut idx = FirstByteIndex::default();
        idx.on_insert(rid(1), &Datum::Text("apple".into()));
        idx.on_insert(rid(2), &Datum::Text("avocado".into()));
        idx.on_insert(rid(3), &Datum::Text("banana".into()));
        idx.on_insert(rid(4), &Datum::Int(7)); // non-text ignored

        let hits = idx.probe("starts_with", &[Datum::Text("apri".into())]).unwrap();
        assert_eq!(hits, vec![rid(1), rid(2)]);
        assert!(idx.probe("contains", &[Datum::Text("x".into())]).is_none());
        let sel = idx.selectivity("starts_with", &[Datum::Text("a".into())]).unwrap();
        assert!((sel - 2.0 / 3.0).abs() < 1e-12);

        idx.on_delete(rid(1), &Datum::Text("apple".into()));
        let hits = idx.probe("starts_with", &[Datum::Text("a".into())]).unwrap();
        assert_eq!(hits, vec![rid(2)]);
        assert_eq!(idx.name(), "first_byte");
    }
}
