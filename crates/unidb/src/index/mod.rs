//! Index structures: built-in B+-trees plus the user-defined index
//! mechanism (§6.5) that lets the adapter plug genomic indexes into plans.

pub mod btree;
pub mod udi;

pub use btree::BTreeIndex;
pub use udi::AccessMethod;
