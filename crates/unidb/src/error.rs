//! Error type for the database engine.

use std::fmt;

/// Result alias used throughout `unidb`.
pub type DbResult<T> = std::result::Result<T, DbError>;

/// Errors produced by the database engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text failed to lex or parse.
    Parse(String),
    /// A name (table, column, function, type, space) could not be resolved.
    NotFound { kind: &'static str, name: String },
    /// A name already exists where a fresh one is required.
    AlreadyExists { kind: &'static str, name: String },
    /// A value's type does not match the column or operator expectation.
    TypeMismatch(String),
    /// An unqualified column reference matches more than one table binding.
    /// A planning-time error: qualify the column to disambiguate.
    AmbiguousColumn(String),
    /// A statement violates access control (e.g. writing the public space
    /// without the maintainer role).
    AccessDenied(String),
    /// Constraint violation (arity, NOT NULL, duplicate key, …).
    Constraint(String),
    /// A registered external function reported an error.
    External(String),
    /// Storage-layer failure (page corruption, invalid WAL frames).
    Storage(String),
    /// An I/O operation failed (disk full, failed fsync, injected fault).
    /// The database stays reopenable: recovery replays the WAL to the last
    /// durable prefix.
    Io(String),
    /// The statement is recognized but not supported by this engine.
    Unsupported(String),
    /// A prepared statement outlived the catalog it was planned against
    /// (DDL ran in between). Callers should re-prepare and retry.
    Stale(String),
    /// Transaction-state error: `COMMIT` without `BEGIN`, nested `BEGIN`,
    /// a statement sent to a transaction that is busy on another thread,
    /// or an expired/unknown transaction id.
    Txn(String),
    /// Serialization failure under snapshot isolation: the transaction
    /// touched a row that a concurrent transaction committed first. The
    /// transaction has been aborted; callers should retry it from `BEGIN`.
    Conflict(String),
    /// Internal invariant violation — indicates a bug, not user error.
    Internal(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::NotFound { kind, name } => write!(f, "{kind} {name:?} not found"),
            DbError::AlreadyExists { kind, name } => write!(f, "{kind} {name:?} already exists"),
            DbError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            DbError::AmbiguousColumn(name) => write!(f, "ambiguous column {name:?}"),
            DbError::AccessDenied(m) => write!(f, "access denied: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::External(m) => write!(f, "external function error: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::Stale(m) => write!(f, "stale plan: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::Conflict(m) => write!(f, "serialization conflict: {m}"),
            DbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DbError::Parse("x".into()).to_string().contains("parse"));
        assert!(DbError::NotFound { kind: "table", name: "t".into() }
            .to_string()
            .contains("table"));
        assert!(DbError::AmbiguousColumn("id".into()).to_string().contains("ambiguous"));
        assert!(DbError::Txn("COMMIT without BEGIN".into())
            .to_string()
            .contains("transaction error"));
        assert!(DbError::Conflict("row moved".into())
            .to_string()
            .contains("serialization conflict"));
        let io = std::io::Error::other("disk gone");
        assert!(matches!(DbError::from(io), DbError::Io(_)));
        assert!(DbError::Io("enospc".into()).to_string().contains("io error"));
    }
}
