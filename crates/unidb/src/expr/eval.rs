//! Expression evaluation with SQL three-valued logic.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::expr::func::FunctionRegistry;
use crate::sql::ast::{BinOp, Expr, UnaryOp};
use std::cmp::Ordering;

/// How a column of the current row is addressable from SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnBinding {
    /// Table binding (alias or table name), lower-cased.
    pub table: String,
    /// Column name, lower-cased.
    pub column: String,
}

impl ColumnBinding {
    pub fn new(table: &str, column: &str) -> Self {
        ColumnBinding { table: table.to_ascii_lowercase(), column: column.to_ascii_lowercase() }
    }
}

/// Everything needed to evaluate an expression against one row.
pub struct EvalContext<'a> {
    pub bindings: &'a [ColumnBinding],
    pub row: &'a [Datum],
    pub funcs: &'a FunctionRegistry,
}

impl<'a> EvalContext<'a> {
    /// Resolve a column reference to its position.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> DbResult<usize> {
        let name = name.to_ascii_lowercase();
        let table = table.map(str::to_ascii_lowercase);
        let mut hit = None;
        for (i, b) in self.bindings.iter().enumerate() {
            if b.column != name {
                continue;
            }
            if let Some(t) = &table {
                if &b.table != t {
                    continue;
                }
            }
            if hit.is_some() {
                return Err(DbError::AmbiguousColumn(name));
            }
            hit = Some(i);
        }
        hit.ok_or(DbError::NotFound { kind: "column", name })
    }
}

/// Evaluate an expression. Aggregate calls are rejected here — the planner
/// rewrites them into aggregate-result column references before any
/// per-row evaluation happens.
pub fn eval(expr: &Expr, ctx: &EvalContext) -> DbResult<Datum> {
    match expr {
        Expr::Literal(d) => Ok(d.clone()),
        Expr::Column { table, name } => {
            let idx = ctx.resolve(table.as_deref(), name)?;
            Ok(ctx.row[idx].clone())
        }
        Expr::Wildcard => Err(DbError::TypeMismatch("* is only valid inside count(*)".into())),
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Datum::Null => Datum::Null,
                    Datum::Bool(b) => Datum::Bool(!b),
                    other => {
                        return Err(DbError::TypeMismatch(format!("NOT expects BOOL, got {other}")))
                    }
                }),
                UnaryOp::Neg => match v {
                    Datum::Null => Ok(Datum::Null),
                    Datum::Int(i) => i
                        .checked_neg()
                        .map(Datum::Int)
                        .ok_or_else(|| DbError::TypeMismatch("integer overflow".into())),
                    Datum::Float(f) => Ok(Datum::Float(-f)),
                    other => Err(DbError::TypeMismatch(format!("- expects a number, got {other}"))),
                },
            }
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, ctx),
        Expr::Func { name, args, .. } => {
            if ctx.funcs.is_aggregate(name) {
                return Err(DbError::TypeMismatch(format!(
                    "aggregate {name}() is not allowed in this context"
                )));
            }
            let f = ctx
                .funcs
                .scalar(name)
                .ok_or(DbError::NotFound { kind: "function", name: name.clone() })?
                .clone();
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval(a, ctx)?);
            }
            f(&values)
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Datum::Bool(v.is_null() != *negated))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Datum::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, ctx)?;
                match v.sql_eq(&w) {
                    Some(true) => return Ok(Datum::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Datum::Null)
            } else {
                Ok(Datum::Bool(*negated))
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, ctx)?;
            let lo = eval(low, ctx)?;
            let hi = eval(high, ctx)?;
            // `v BETWEEN lo AND hi` is `v >= lo AND v <= hi` under
            // three-valued logic, so a NULL bound only yields NULL when the
            // other comparison doesn't already force the AND to FALSE
            // (e.g. `6 BETWEEN NULL AND 5` is FALSE, not NULL).
            let ge = cmp3(&v, &lo).map(|o| o != Ordering::Less);
            let le = cmp3(&v, &hi).map(|o| o != Ordering::Greater);
            let inside = match (ge, le) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            };
            Ok(inside.map_or(Datum::Null, |b| Datum::Bool(b != *negated)))
        }
        Expr::Like { expr, pattern, negated, escape } => {
            let v = eval(expr, ctx)?;
            let p = eval(pattern, ctx)?;
            match (v, p) {
                (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
                (Datum::Text(s), Datum::Text(pat)) => {
                    Ok(Datum::Bool(like_match(&s, &pat, *escape)? != *negated))
                }
                _ => Err(DbError::TypeMismatch("LIKE expects TEXT operands".into())),
            }
        }
    }
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, ctx: &EvalContext) -> DbResult<Datum> {
    // AND/OR need lazy NULL handling.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval(left, ctx)?;
        let l = to_bool3(l)?;
        // Short-circuit where the result is already determined.
        match (op, l) {
            (BinOp::And, Some(false)) => return Ok(Datum::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Datum::Bool(true)),
            _ => {}
        }
        let r = to_bool3(eval(right, ctx)?)?;
        let result = match op {
            BinOp::And => match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!("only AND/OR here"),
        };
        return Ok(result.map_or(Datum::Null, Datum::Bool));
    }

    let l = eval(left, ctx)?;
    let r = eval(right, ctx)?;
    if l.is_null() || r.is_null() {
        return Ok(Datum::Null);
    }
    match op {
        BinOp::Eq => Ok(Datum::Bool(l.sql_eq(&r).expect("nulls handled"))),
        BinOp::NotEq => Ok(Datum::Bool(!l.sql_eq(&r).expect("nulls handled"))),
        BinOp::Lt => Ok(Datum::Bool(l.total_cmp(&r) == Ordering::Less)),
        BinOp::LtEq => Ok(Datum::Bool(l.total_cmp(&r) != Ordering::Greater)),
        BinOp::Gt => Ok(Datum::Bool(l.total_cmp(&r) == Ordering::Greater)),
        BinOp::GtEq => Ok(Datum::Bool(l.total_cmp(&r) != Ordering::Less)),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &l, &r),
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

pub(crate) fn arith(op: BinOp, l: &Datum, r: &Datum) -> DbResult<Datum> {
    // TEXT + TEXT is concatenation, a convenience for the output language.
    if op == BinOp::Add {
        if let (Datum::Text(a), Datum::Text(b)) = (l, r) {
            return Ok(Datum::Text(format!("{a}{b}")));
        }
    }
    match (l, r) {
        (Datum::Int(a), Datum::Int(b)) => {
            let result = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(DbError::TypeMismatch("division by zero".into()));
                    }
                    a.checked_div(*b)
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(DbError::TypeMismatch("division by zero".into()));
                    }
                    a.checked_rem(*b)
                }
                _ => unreachable!("arith ops only"),
            };
            result.map(Datum::Int).ok_or_else(|| DbError::TypeMismatch("integer overflow".into()))
        }
        _ => {
            let a =
                l.as_float().ok_or_else(|| DbError::TypeMismatch(format!("arithmetic on {l}")))?;
            let b =
                r.as_float().ok_or_else(|| DbError::TypeMismatch(format!("arithmetic on {r}")))?;
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(DbError::TypeMismatch("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Err(DbError::TypeMismatch("division by zero".into()));
                    }
                    a % b
                }
                _ => unreachable!("arith ops only"),
            };
            Ok(Datum::Float(v))
        }
    }
}

fn to_bool3(d: Datum) -> DbResult<Option<bool>> {
    match d {
        Datum::Null => Ok(None),
        Datum::Bool(b) => Ok(Some(b)),
        other => Err(DbError::TypeMismatch(format!("expected BOOL, got {other}"))),
    }
}

/// Three-valued comparison: `None` when either side is NULL.
fn cmp3(a: &Datum, b: &Datum) -> Option<Ordering> {
    if a.is_null() || b.is_null() {
        None
    } else {
        Some(a.total_cmp(b))
    }
}

/// One element of a compiled LIKE pattern.
enum PatTok {
    /// `%`: any run of characters, including empty.
    Any,
    /// `_`: exactly one character.
    One,
    /// A character that must match literally.
    Lit(char),
}

/// A LIKE pattern tokenized once, reusable across rows. The expression
/// compiler builds one of these per literal pattern so matching does no
/// per-row pattern parsing.
pub struct LikePattern {
    toks: Vec<PatTok>,
}

impl LikePattern {
    /// Tokenize a pattern: `%` matches any run, `_` matches one character.
    /// With an `ESCAPE` character, escape followed by any character makes
    /// that character literal (so `\%` with `ESCAPE '\'` matches a percent
    /// sign); a pattern ending in a bare escape character is an error.
    pub fn compile(pattern: &str, escape: Option<char>) -> DbResult<LikePattern> {
        let mut toks: Vec<PatTok> = Vec::with_capacity(pattern.len());
        let mut chars = pattern.chars();
        while let Some(c) = chars.next() {
            if Some(c) == escape {
                match chars.next() {
                    Some(next) => toks.push(PatTok::Lit(next)),
                    None => {
                        return Err(DbError::TypeMismatch(
                            "LIKE pattern ends with its escape character".into(),
                        ))
                    }
                }
            } else {
                toks.push(match c {
                    '%' => PatTok::Any,
                    '_' => PatTok::One,
                    other => PatTok::Lit(other),
                });
            }
        }
        Ok(LikePattern { toks })
    }

    pub fn matches(&self, text: &str) -> bool {
        let p = &self.toks;
        let t: Vec<char> = text.chars().collect();
        // Iterative two-pointer with backtracking on the last '%'.
        let (mut ti, mut pi) = (0usize, 0usize);
        let (mut star_p, mut star_t) = (usize::MAX, 0usize);
        while ti < t.len() {
            match p.get(pi) {
                Some(PatTok::Any) => {
                    star_p = pi;
                    star_t = ti;
                    pi += 1;
                }
                Some(PatTok::One) => {
                    ti += 1;
                    pi += 1;
                }
                Some(PatTok::Lit(c)) if *c == t[ti] => {
                    ti += 1;
                    pi += 1;
                }
                _ if star_p != usize::MAX => {
                    pi = star_p + 1;
                    star_t += 1;
                    ti = star_t;
                }
                _ => return false,
            }
        }
        while matches!(p.get(pi), Some(PatTok::Any)) {
            pi += 1;
        }
        pi == p.len()
    }
}

/// One-shot SQL LIKE over an uncompiled pattern (see [`LikePattern`]).
pub fn like_match(text: &str, pattern: &str, escape: Option<char>) -> DbResult<bool> {
    Ok(LikePattern::compile(pattern, escape)?.matches(text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::{Projection, Stmt};
    use crate::sql::parser::parse;

    fn expr(sql: &str) -> Expr {
        let stmt = parse(&format!("SELECT {sql}")).unwrap();
        let Stmt::Select(s) = stmt else { panic!() };
        let Projection::Expr { expr, .. } = s.projections.into_iter().next().unwrap() else {
            panic!()
        };
        expr
    }

    fn eval_str(sql: &str) -> DbResult<Datum> {
        let funcs = FunctionRegistry::with_builtins();
        let ctx = EvalContext { bindings: &[], row: &[], funcs: &funcs };
        eval(&expr(sql), &ctx)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3").unwrap(), Datum::Int(7));
        assert_eq!(eval_str("7 / 2").unwrap(), Datum::Int(3));
        assert_eq!(eval_str("7.0 / 2").unwrap(), Datum::Float(3.5));
        assert_eq!(eval_str("7 % 3").unwrap(), Datum::Int(1));
        assert_eq!(eval_str("-(2 + 3)").unwrap(), Datum::Int(-5));
        assert_eq!(eval_str("'a' + 'b'").unwrap(), Datum::Text("ab".into()));
        assert!(eval_str("1 / 0").is_err());
        assert!(eval_str("true + 1").is_err());
        assert_eq!(eval_str("1 + NULL").unwrap(), Datum::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_str("1 < 2").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("2 <= 2").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("1 = 1.0").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("'a' <> 'b'").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("NULL = NULL").unwrap(), Datum::Null);
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_str("false AND NULL").unwrap(), Datum::Bool(false));
        assert_eq!(eval_str("true AND NULL").unwrap(), Datum::Null);
        assert_eq!(eval_str("true OR NULL").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("false OR NULL").unwrap(), Datum::Null);
        assert_eq!(eval_str("NOT NULL").unwrap(), Datum::Null);
        assert_eq!(eval_str("NOT false").unwrap(), Datum::Bool(true));
    }

    #[test]
    fn short_circuit_skips_errors() {
        // The right side would error (aggregate in scalar context), but the
        // left side already decides.
        assert_eq!(eval_str("false AND count(1) = 1").unwrap(), Datum::Bool(false));
        assert_eq!(eval_str("true OR count(1) = 1").unwrap(), Datum::Bool(true));
    }

    #[test]
    fn special_predicates() {
        assert_eq!(eval_str("NULL IS NULL").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("1 IS NOT NULL").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("2 IN (1, 2, 3)").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("4 IN (1, 2, 3)").unwrap(), Datum::Bool(false));
        assert_eq!(eval_str("4 NOT IN (1, 2, 3)").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("4 IN (1, NULL)").unwrap(), Datum::Null);
        assert_eq!(eval_str("2 BETWEEN 1 AND 3").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("5 NOT BETWEEN 1 AND 3").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("NULL BETWEEN 1 AND 3").unwrap(), Datum::Null);
    }

    /// A NULL BETWEEN bound behaves like the `>= AND <=` it desugars to:
    /// the non-NULL comparison can still force the result to FALSE.
    #[test]
    fn between_three_valued_bounds() {
        assert_eq!(eval_str("6 BETWEEN NULL AND 5").unwrap(), Datum::Bool(false));
        assert_eq!(eval_str("6 NOT BETWEEN NULL AND 5").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("0 BETWEEN 1 AND NULL").unwrap(), Datum::Bool(false));
        assert_eq!(eval_str("3 BETWEEN NULL AND 5").unwrap(), Datum::Null);
        assert_eq!(eval_str("3 BETWEEN 1 AND NULL").unwrap(), Datum::Null);
        assert_eq!(eval_str("3 BETWEEN NULL AND NULL").unwrap(), Datum::Null);
    }

    #[test]
    fn negation_overflow_is_an_error() {
        // -(i64::MIN) does not fit in i64; it must be a structured error,
        // not a wrap or a panic.
        assert!(eval_str("-(-9223372036854775807 - 1)").is_err());
        assert_eq!(eval_str("-(-9223372036854775807)").unwrap(), Datum::Int(i64::MAX));
    }

    fn lm(text: &str, pattern: &str) -> bool {
        like_match(text, pattern, None).unwrap()
    }

    #[test]
    fn like_patterns() {
        assert!(lm("kinase", "kin%"));
        assert!(lm("kinase", "%ase"));
        assert!(lm("kinase", "k_nase"));
        assert!(lm("kinase", "%"));
        assert!(!lm("kinase", "kin"));
        assert!(lm("", "%"));
        assert!(!lm("", "_"));
        assert!(lm("abc", "a%c"));
        assert!(lm("axxxyc", "a%c"));
        assert_eq!(eval_str("'kinase' LIKE 'kin%'").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("'kinase' NOT LIKE '%zz%'").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("NULL LIKE 'x'").unwrap(), Datum::Null);
    }

    #[test]
    fn like_escape_semantics() {
        let esc = Some('\\');
        // Escaped wildcards are literal.
        assert!(like_match("100%", "100\\%", esc).unwrap());
        assert!(!like_match("100x", "100\\%", esc).unwrap());
        assert!(like_match("a_b", "a\\_b", esc).unwrap());
        assert!(!like_match("axb", "a\\_b", esc).unwrap());
        // The escape character escapes itself.
        assert!(like_match("a\\b", "a\\\\b", esc).unwrap());
        // Unescaped wildcards still work alongside escaped ones.
        assert!(like_match("50% off", "%\\%%", esc).unwrap());
        // Escape before an ordinary character makes it literal.
        assert!(like_match("ab", "a\\b", esc).unwrap());
        // A trailing escape is an error.
        assert!(like_match("x", "x\\", esc).is_err());
        // Without ESCAPE, a backslash is an ordinary character.
        assert!(lm("a\\b", "a\\_"));
        assert!(!lm("100%", "100\\%"));
        // End-to-end through the parser and evaluator.
        assert_eq!(eval_str(r"'100%' LIKE '100\%' ESCAPE '\'").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str(r"'100x' LIKE '100\%' ESCAPE '\'").unwrap(), Datum::Bool(false));
        assert!(eval_str(r"'x' LIKE 'x\' ESCAPE '\'").is_err());
    }

    #[test]
    fn like_unicode_and_empty_patterns() {
        // `_` consumes one character, not one byte.
        assert!(lm("héllo", "h_llo"));
        assert!(lm("🧬🧬", "__"));
        assert!(!lm("🧬🧬", "_"));
        assert!(lm("naïve", "na%e"));
        // Empty pattern matches only the empty string.
        assert!(lm("", ""));
        assert!(!lm("a", ""));
        // Unicode escape characters work too.
        assert!(like_match("100%", "100é%", Some('é')).unwrap());
    }

    #[test]
    fn column_resolution() {
        let funcs = FunctionRegistry::with_builtins();
        let bindings = vec![
            ColumnBinding::new("g", "id"),
            ColumnBinding::new("g", "name"),
            ColumnBinding::new("p", "id"),
        ];
        let row = vec![Datum::Int(1), Datum::Text("tp53".into()), Datum::Int(9)];
        let ctx = EvalContext { bindings: &bindings, row: &row, funcs: &funcs };

        assert_eq!(eval(&expr("name"), &ctx).unwrap(), Datum::Text("tp53".into()));
        assert_eq!(eval(&expr("p.id"), &ctx).unwrap(), Datum::Int(9));
        // Unqualified ambiguous column errors.
        assert!(eval(&expr("id"), &ctx).is_err());
        assert!(eval(&expr("missing"), &ctx).is_err());
    }

    #[test]
    fn functions_through_eval() {
        assert_eq!(eval_str("upper('ab')").unwrap(), Datum::Text("AB".into()));
        assert_eq!(eval_str("coalesce(NULL, lower('X'))").unwrap(), Datum::Text("x".into()));
        assert!(eval_str("no_such_fn(1)").is_err());
        // Aggregates are rejected in scalar contexts.
        assert!(eval_str("count(1)").is_err());
    }
}
