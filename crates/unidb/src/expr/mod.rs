//! Expression evaluation and the extensible function registry.

pub mod func;
pub mod eval;

pub use eval::{eval, ColumnBinding, EvalContext};
pub use func::{Accumulator, AggregateFn, FunctionRegistry, ScalarFn};
