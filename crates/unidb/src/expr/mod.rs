//! Expression evaluation and the extensible function registry.

pub mod eval;
pub mod func;

pub use eval::{eval, ColumnBinding, EvalContext};
pub use func::{Accumulator, AggregateFn, FunctionRegistry, ScalarFn};
