//! Expression evaluation and the extensible function registry.
//!
//! Two evaluators share one semantics contract: the tree-walking
//! interpreter in [`mod@eval`] (used by one-shot contexts like INSERT values
//! and tests) and the compiled form in [`mod@compile`] (used wherever an
//! expression runs once per row, so per-row name resolution would
//! dominate).

pub mod compile;
pub mod eval;
pub mod func;

pub use compile::{compile, infallible, CompiledExpr};
pub use eval::{eval, ColumnBinding, EvalContext, LikePattern};
pub use func::{Accumulator, AggregateFn, FunctionRegistry, ScalarFn};
