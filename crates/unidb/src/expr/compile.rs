//! Plan-time expression compilation.
//!
//! [`compile`] lowers an [`Expr`] into a [`CompiledExpr`]: column references
//! become positional indices into the operator's input row, scalar function
//! names become direct [`ScalarFn`] handles, and literal LIKE patterns are
//! tokenized once. Evaluating a compiled program therefore does zero string
//! work per row — the interpreter's per-row, per-reference lower-cased name
//! scan (see [`EvalContext::resolve`]) happens exactly once, before the
//! first row flows. Resolution errors (unknown or ambiguous columns,
//! unknown functions, aggregates in scalar position) surface at plan time
//! instead of on the first evaluated row.
//!
//! Compiled programs are `Send + Sync` (they hold only data and `Arc`'d
//! function handles), so morsel workers can share one program across
//! threads.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::expr::eval::{ColumnBinding, EvalContext, LikePattern};
use crate::expr::func::{FunctionRegistry, ScalarFn};
use crate::sql::ast::{BinOp, Expr, UnaryOp};
use crate::storage::colpage::ColBound;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// An executable expression with all names resolved.
pub enum CompiledExpr {
    Literal(Datum),
    /// Load the input row's column at this position.
    Column(usize),
    Unary {
        op: UnaryOp,
        expr: Box<CompiledExpr>,
    },
    Binary {
        op: BinOp,
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
    },
    Func {
        f: ScalarFn,
        args: Vec<CompiledExpr>,
    },
    IsNull {
        expr: Box<CompiledExpr>,
        negated: bool,
    },
    InList {
        expr: Box<CompiledExpr>,
        list: Vec<CompiledExpr>,
        negated: bool,
    },
    Between {
        expr: Box<CompiledExpr>,
        low: Box<CompiledExpr>,
        high: Box<CompiledExpr>,
        negated: bool,
    },
    /// LIKE with a literal pattern, tokenized at compile time.
    LikePre {
        expr: Box<CompiledExpr>,
        pattern: LikePattern,
        negated: bool,
    },
    /// LIKE whose pattern is itself computed per row.
    LikeDyn {
        expr: Box<CompiledExpr>,
        pattern: Box<CompiledExpr>,
        negated: bool,
        escape: Option<char>,
    },
}

/// Lower `expr` against the input schema `bindings`. Name resolution
/// follows [`EvalContext::resolve`] exactly: lower-cased comparison, an
/// optional table qualifier narrows candidates, more than one match is
/// [`DbError::AmbiguousColumn`].
pub fn compile(
    expr: &Expr,
    bindings: &[ColumnBinding],
    funcs: &FunctionRegistry,
) -> DbResult<CompiledExpr> {
    match expr {
        Expr::Literal(d) => Ok(CompiledExpr::Literal(d.clone())),
        Expr::Column { table, name } => {
            let ctx = EvalContext { bindings, row: &[], funcs };
            Ok(CompiledExpr::Column(ctx.resolve(table.as_deref(), name)?))
        }
        Expr::Wildcard => Err(DbError::TypeMismatch("* is only valid inside count(*)".into())),
        Expr::Unary { op, expr } => {
            Ok(CompiledExpr::Unary { op: *op, expr: Box::new(compile(expr, bindings, funcs)?) })
        }
        Expr::Binary { op, left, right } => Ok(CompiledExpr::Binary {
            op: *op,
            left: Box::new(compile(left, bindings, funcs)?),
            right: Box::new(compile(right, bindings, funcs)?),
        }),
        Expr::Func { name, args, .. } => {
            if funcs.is_aggregate(name) {
                return Err(DbError::TypeMismatch(format!(
                    "aggregate {name}() is not allowed in this context"
                )));
            }
            let f = funcs
                .scalar(name)
                .ok_or(DbError::NotFound { kind: "function", name: name.clone() })?
                .clone();
            let args =
                args.iter().map(|a| compile(a, bindings, funcs)).collect::<DbResult<Vec<_>>>()?;
            Ok(CompiledExpr::Func { f, args })
        }
        Expr::IsNull { expr, negated } => Ok(CompiledExpr::IsNull {
            expr: Box::new(compile(expr, bindings, funcs)?),
            negated: *negated,
        }),
        Expr::InList { expr, list, negated } => Ok(CompiledExpr::InList {
            expr: Box::new(compile(expr, bindings, funcs)?),
            list: list.iter().map(|e| compile(e, bindings, funcs)).collect::<DbResult<Vec<_>>>()?,
            negated: *negated,
        }),
        Expr::Between { expr, low, high, negated } => Ok(CompiledExpr::Between {
            expr: Box::new(compile(expr, bindings, funcs)?),
            low: Box::new(compile(low, bindings, funcs)?),
            high: Box::new(compile(high, bindings, funcs)?),
            negated: *negated,
        }),
        Expr::Like { expr, pattern, negated, escape } => {
            let expr = Box::new(compile(expr, bindings, funcs)?);
            // A literal pattern (the overwhelmingly common case) is
            // tokenized here; only its NULL-ness must still be decided per
            // row against the left operand.
            if let Expr::Literal(Datum::Text(p)) = pattern.as_ref() {
                return Ok(CompiledExpr::LikePre {
                    expr,
                    pattern: LikePattern::compile(p, *escape)?,
                    negated: *negated,
                });
            }
            Ok(CompiledExpr::LikeDyn {
                expr,
                pattern: Box::new(compile(pattern, bindings, funcs)?),
                negated: *negated,
                escape: *escape,
            })
        }
    }
}

impl CompiledExpr {
    /// Evaluate against one row. Matches the interpreter's semantics
    /// (three-valued logic, checked arithmetic) exactly — the qdiff oracle
    /// pins the two against each other.
    pub fn eval(&self, row: &[Datum]) -> DbResult<Datum> {
        match self {
            CompiledExpr::Literal(d) => Ok(d.clone()),
            CompiledExpr::Column(i) => Ok(row[*i].clone()),
            CompiledExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnaryOp::Not => match v {
                        Datum::Null => Ok(Datum::Null),
                        Datum::Bool(b) => Ok(Datum::Bool(!b)),
                        other => {
                            Err(DbError::TypeMismatch(format!("NOT expects BOOL, got {other}")))
                        }
                    },
                    UnaryOp::Neg => match v {
                        Datum::Null => Ok(Datum::Null),
                        Datum::Int(i) => i
                            .checked_neg()
                            .map(Datum::Int)
                            .ok_or_else(|| DbError::TypeMismatch("integer overflow".into())),
                        Datum::Float(f) => Ok(Datum::Float(-f)),
                        other => {
                            Err(DbError::TypeMismatch(format!("- expects a number, got {other}")))
                        }
                    },
                }
            }
            CompiledExpr::Binary { op, left, right } => eval_binary(*op, left, right, row),
            CompiledExpr::Func { f, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(row)?);
                }
                f(&values)
            }
            CompiledExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Datum::Bool(v.is_null() != *negated))
            }
            CompiledExpr::InList { expr, list, negated } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Datum::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let w = item.eval(row)?;
                    match v.sql_eq(&w) {
                        Some(true) => return Ok(Datum::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Datum::Null)
                } else {
                    Ok(Datum::Bool(*negated))
                }
            }
            CompiledExpr::Between { expr, low, high, negated } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                // Desugars to `v >= lo AND v <= hi` under three-valued
                // logic: a NULL bound yields NULL only when the other
                // comparison doesn't already force the AND to FALSE.
                let ge = cmp3(&v, &lo).map(|o| o != Ordering::Less);
                let le = cmp3(&v, &hi).map(|o| o != Ordering::Greater);
                let inside = match (ge, le) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                };
                Ok(inside.map_or(Datum::Null, |b| Datum::Bool(b != *negated)))
            }
            CompiledExpr::LikePre { expr, pattern, negated } => match expr.eval(row)? {
                Datum::Null => Ok(Datum::Null),
                Datum::Text(s) => Ok(Datum::Bool(pattern.matches(&s) != *negated)),
                _ => Err(DbError::TypeMismatch("LIKE expects TEXT operands".into())),
            },
            CompiledExpr::LikeDyn { expr, pattern, negated, escape } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                match (v, p) {
                    (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
                    (Datum::Text(s), Datum::Text(pat)) => Ok(Datum::Bool(
                        LikePattern::compile(&pat, *escape)?.matches(&s) != *negated,
                    )),
                    _ => Err(DbError::TypeMismatch("LIKE expects TEXT operands".into())),
                }
            }
        }
    }

    /// True when the predicate accepts the row (NULL and FALSE both
    /// reject, per SQL WHERE semantics).
    pub fn accepts(&self, row: &[Datum]) -> DbResult<bool> {
        Ok(self.eval(row)? == Datum::Bool(true))
    }

    /// Highest column position this expression reads, if any. A fused scan
    /// decodes only positions `0..=max` across its expressions, skipping
    /// trailing columns no expression touches.
    pub fn max_column(&self) -> Option<usize> {
        fn opt_max(a: Option<usize>, b: Option<usize>) -> Option<usize> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (x, None) | (None, x) => x,
            }
        }
        match self {
            CompiledExpr::Literal(_) => None,
            CompiledExpr::Column(i) => Some(*i),
            CompiledExpr::Unary { expr, .. }
            | CompiledExpr::IsNull { expr, .. }
            | CompiledExpr::LikePre { expr, .. } => expr.max_column(),
            CompiledExpr::Binary { left, right, .. } => {
                opt_max(left.max_column(), right.max_column())
            }
            CompiledExpr::Func { args, .. } => {
                args.iter().fold(None, |m, a| opt_max(m, a.max_column()))
            }
            CompiledExpr::InList { expr, list, .. } => {
                list.iter().fold(expr.max_column(), |m, e| opt_max(m, e.max_column()))
            }
            CompiledExpr::Between { expr, low, high, .. } => {
                opt_max(expr.max_column(), opt_max(low.max_column(), high.max_column()))
            }
            CompiledExpr::LikeDyn { expr, pattern, .. } => {
                opt_max(expr.max_column(), pattern.max_column())
            }
        }
    }

    /// Record every column position this expression reads into `out`
    /// (sparse scans decode exactly these positions).
    pub fn collect_columns(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            CompiledExpr::Literal(_) => {}
            CompiledExpr::Column(i) => {
                out.insert(*i);
            }
            CompiledExpr::Unary { expr, .. }
            | CompiledExpr::IsNull { expr, .. }
            | CompiledExpr::LikePre { expr, .. } => expr.collect_columns(out),
            CompiledExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            CompiledExpr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            CompiledExpr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            CompiledExpr::Between { expr, low, high, .. } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            CompiledExpr::LikeDyn { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
        }
    }

    /// Can [`CompiledExpr::eval`] *never* return an error for this
    /// expression, whatever datums the row holds? This is the gate for
    /// zone-map page skipping and for reordering AND conjuncts: an
    /// expression that can error must be evaluated on every row it would
    /// have seen, or the engine would stop raising errors it owes the
    /// caller (and the qdiff oracle would flag the divergence).
    ///
    /// Deliberately conservative: arithmetic (overflow/division), scalar
    /// functions, LIKE (errors on non-TEXT operands — column types are
    /// not statically known here) and NOT/AND/OR over operands not
    /// *guaranteed* boolean all answer `false`.
    pub fn error_free(&self) -> bool {
        match self {
            CompiledExpr::Literal(_) | CompiledExpr::Column(_) => true,
            CompiledExpr::IsNull { expr, .. } => expr.error_free(),
            CompiledExpr::Unary { op: UnaryOp::Not, expr } => {
                expr.error_free() && expr.bool_typed()
            }
            CompiledExpr::Unary { op: UnaryOp::Neg, .. } => false,
            CompiledExpr::Binary { op, left, right } => match op {
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                    left.error_free() && right.error_free()
                }
                BinOp::And | BinOp::Or => {
                    left.error_free()
                        && left.bool_typed()
                        && right.error_free()
                        && right.bool_typed()
                }
                _ => false,
            },
            CompiledExpr::InList { expr, list, .. } => {
                expr.error_free() && list.iter().all(CompiledExpr::error_free)
            }
            CompiledExpr::Between { expr, low, high, .. } => {
                expr.error_free() && low.error_free() && high.error_free()
            }
            CompiledExpr::Func { .. }
            | CompiledExpr::LikePre { .. }
            | CompiledExpr::LikeDyn { .. } => false,
        }
    }

    /// Is this expression guaranteed to evaluate to `Bool` or `Null`
    /// (assuming it evaluates at all)? Needed by [`error_free`] because
    /// NOT/AND/OR error on non-boolean operands.
    fn bool_typed(&self) -> bool {
        match self {
            CompiledExpr::Literal(Datum::Bool(_)) | CompiledExpr::Literal(Datum::Null) => true,
            CompiledExpr::IsNull { .. }
            | CompiledExpr::InList { .. }
            | CompiledExpr::Between { .. }
            | CompiledExpr::LikePre { .. }
            | CompiledExpr::LikeDyn { .. } => true,
            CompiledExpr::Unary { op: UnaryOp::Not, .. } => true,
            CompiledExpr::Binary { op, .. } => matches!(
                op,
                BinOp::Eq
                    | BinOp::NotEq
                    | BinOp::Lt
                    | BinOp::LtEq
                    | BinOp::Gt
                    | BinOp::GtEq
                    | BinOp::And
                    | BinOp::Or
            ),
            _ => false,
        }
    }

    /// Extract per-column zone-map bounds from the top-level AND
    /// conjuncts of a filter. Only leaves of the shape
    /// `column <op> literal` (either orientation), `column BETWEEN
    /// literal AND literal`, `column IN (literals)` and
    /// `column IS [NOT] NULL` contribute; everything else is ignored
    /// (conservative — never refutes what it cannot prove).
    ///
    /// Callers must gate page skipping on [`CompiledExpr::error_free`]:
    /// the bounds alone say nothing about whether *other* conjuncts
    /// could raise errors on the skipped rows.
    pub fn zone_bounds(&self) -> Vec<ColBound> {
        let mut by_col: BTreeMap<usize, ColBound> = BTreeMap::new();
        self.gather_bounds(&mut by_col);
        by_col.into_values().collect()
    }

    fn gather_bounds(&self, by_col: &mut BTreeMap<usize, ColBound>) {
        match self {
            CompiledExpr::Binary { op: BinOp::And, left, right } => {
                left.gather_bounds(by_col);
                right.gather_bounds(by_col);
            }
            CompiledExpr::Binary { op, left, right } => {
                // Normalize to column-on-the-left; a NULL literal makes
                // the comparison unknown for every row, which zone maps
                // do not model — skip it.
                let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                    (CompiledExpr::Column(c), CompiledExpr::Literal(v)) => (*c, v, *op),
                    (CompiledExpr::Literal(v), CompiledExpr::Column(c)) => {
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::LtEq => BinOp::GtEq,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::GtEq => BinOp::LtEq,
                            other => *other,
                        };
                        (*c, v, flipped)
                    }
                    _ => return,
                };
                if lit.is_null() {
                    return;
                }
                let b = by_col.entry(col).or_insert_with(|| ColBound::new(col));
                match op {
                    BinOp::Eq => {
                        b.add_lo(lit.clone(), true);
                        b.add_hi(lit.clone(), true);
                    }
                    BinOp::Lt => b.add_hi(lit.clone(), false),
                    BinOp::LtEq => b.add_hi(lit.clone(), true),
                    BinOp::Gt => b.add_lo(lit.clone(), false),
                    BinOp::GtEq => b.add_lo(lit.clone(), true),
                    _ => {}
                }
            }
            CompiledExpr::Between { expr, low, high, negated: false } => {
                if let (
                    CompiledExpr::Column(c),
                    CompiledExpr::Literal(lo),
                    CompiledExpr::Literal(hi),
                ) = (expr.as_ref(), low.as_ref(), high.as_ref())
                {
                    let b = by_col.entry(*c).or_insert_with(|| ColBound::new(*c));
                    if !lo.is_null() {
                        b.add_lo(lo.clone(), true);
                    }
                    if !hi.is_null() {
                        b.add_hi(hi.clone(), true);
                    }
                }
            }
            CompiledExpr::InList { expr, list, negated: false } => {
                // TRUE requires equality with some non-NULL list value,
                // so [min, max] over the non-NULL literals bounds it.
                let CompiledExpr::Column(c) = expr.as_ref() else { return };
                let mut values: Vec<&Datum> = Vec::with_capacity(list.len());
                for item in list {
                    match item {
                        CompiledExpr::Literal(v) if v.is_null() => {}
                        CompiledExpr::Literal(v) => values.push(v),
                        _ => return,
                    }
                }
                let (Some(min), Some(max)) = (
                    values.iter().min_by(|a, b| a.total_cmp(b)),
                    values.iter().max_by(|a, b| a.total_cmp(b)),
                ) else {
                    return;
                };
                let b = by_col.entry(*c).or_insert_with(|| ColBound::new(*c));
                b.add_lo((*min).clone(), true);
                b.add_hi((*max).clone(), true);
            }
            CompiledExpr::IsNull { expr, negated } => {
                if let CompiledExpr::Column(c) = expr.as_ref() {
                    let b = by_col.entry(*c).or_insert_with(|| ColBound::new(*c));
                    if *negated {
                        b.require_non_null = true;
                    } else {
                        b.require_null = true;
                    }
                }
            }
            _ => {}
        }
    }
}

fn eval_binary(
    op: BinOp,
    left: &CompiledExpr,
    right: &CompiledExpr,
    row: &[Datum],
) -> DbResult<Datum> {
    // AND/OR need lazy NULL handling.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = to_bool3(left.eval(row)?)?;
        // Short-circuit where the result is already determined.
        match (op, l) {
            (BinOp::And, Some(false)) => return Ok(Datum::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Datum::Bool(true)),
            _ => {}
        }
        let r = to_bool3(right.eval(row)?)?;
        let result = match op {
            BinOp::And => match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!("only AND/OR here"),
        };
        return Ok(result.map_or(Datum::Null, Datum::Bool));
    }

    let l = left.eval(row)?;
    let r = right.eval(row)?;
    if l.is_null() || r.is_null() {
        return Ok(Datum::Null);
    }
    match op {
        BinOp::Eq => Ok(Datum::Bool(l.sql_eq(&r).expect("nulls handled"))),
        BinOp::NotEq => Ok(Datum::Bool(!l.sql_eq(&r).expect("nulls handled"))),
        BinOp::Lt => Ok(Datum::Bool(l.total_cmp(&r) == Ordering::Less)),
        BinOp::LtEq => Ok(Datum::Bool(l.total_cmp(&r) != Ordering::Greater)),
        BinOp::Gt => Ok(Datum::Bool(l.total_cmp(&r) == Ordering::Greater)),
        BinOp::GtEq => Ok(Datum::Bool(l.total_cmp(&r) != Ordering::Less)),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            crate::expr::eval::arith(op, &l, &r)
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn to_bool3(d: Datum) -> DbResult<Option<bool>> {
    match d {
        Datum::Null => Ok(None),
        Datum::Bool(b) => Ok(Some(b)),
        other => Err(DbError::TypeMismatch(format!("expected BOOL, got {other}"))),
    }
}

/// Three-valued comparison: `None` when either side is NULL.
fn cmp3(a: &Datum, b: &Datum) -> Option<Ordering> {
    if a.is_null() || b.is_null() {
        None
    } else {
        Some(a.total_cmp(b))
    }
}

/// Can evaluating this expression ever return an error, given that its
/// column references resolved? Deliberately conservative: only shapes with
/// no runtime failure mode at all (column loads, literals, IS NULL) count.
/// The executor uses this to decide when `LIMIT` may stop pulling rows
/// early and when Top-N may project only surviving rows — skipping
/// evaluation of an expression that could error would change which queries
/// fail, which the qdiff oracle would flag.
pub fn infallible(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(_) | Expr::Column { .. } => true,
        Expr::IsNull { expr, .. } => infallible(expr),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::{Projection, Stmt};
    use crate::sql::parser::parse;

    fn expr(sql: &str) -> Expr {
        let stmt = parse(&format!("SELECT {sql}")).unwrap();
        let Stmt::Select(s) = stmt else { panic!() };
        let Projection::Expr { expr, .. } = s.projections.into_iter().next().unwrap() else {
            panic!()
        };
        expr
    }

    fn bindings() -> Vec<ColumnBinding> {
        vec![
            ColumnBinding::new("g", "id"),
            ColumnBinding::new("g", "name"),
            ColumnBinding::new("p", "id"),
        ]
    }

    fn run(sql: &str, row: &[Datum]) -> DbResult<Datum> {
        let funcs = FunctionRegistry::with_builtins();
        let prog = compile(&expr(sql), &bindings(), &funcs)?;
        prog.eval(row)
    }

    #[test]
    fn columns_become_positions() {
        let row = vec![Datum::Int(1), Datum::Text("tp53".into()), Datum::Int(9)];
        assert_eq!(run("name", &row).unwrap(), Datum::Text("tp53".into()));
        assert_eq!(run("p.id", &row).unwrap(), Datum::Int(9));
        assert_eq!(run("g.id + p.id", &row).unwrap(), Datum::Int(10));
    }

    #[test]
    fn resolution_errors_surface_at_compile_time() {
        let funcs = FunctionRegistry::with_builtins();
        assert!(matches!(
            compile(&expr("id"), &bindings(), &funcs),
            Err(DbError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            compile(&expr("missing"), &bindings(), &funcs),
            Err(DbError::NotFound { kind: "column", .. })
        ));
        assert!(matches!(
            compile(&expr("no_such_fn(1)"), &bindings(), &funcs),
            Err(DbError::NotFound { kind: "function", .. })
        ));
        // Aggregates are rejected in scalar contexts at compile time too.
        assert!(compile(&expr("count(name)"), &bindings(), &funcs).is_err());
    }

    /// The compiled evaluator and the tree interpreter must agree on every
    /// expression shape — sweep a grid of expressions over a grid of rows.
    #[test]
    fn compiled_matches_interpreter() {
        let funcs = FunctionRegistry::with_builtins();
        let b = bindings();
        let exprs = [
            "g.id + p.id * 2",
            "g.id / p.id",
            "-g.id",
            "g.id % p.id",
            "name + '!'",
            "g.id < p.id AND name IS NOT NULL",
            "g.id > p.id OR name LIKE 't%'",
            "NOT (g.id = p.id)",
            "g.id IN (1, 2, NULL)",
            "g.id BETWEEN p.id AND 10",
            "name LIKE 'tp_3'",
            "name LIKE name",
            "upper(name)",
            "coalesce(NULL, name)",
            "length(name) + g.id",
        ];
        let rows: Vec<Vec<Datum>> = vec![
            vec![Datum::Int(1), Datum::Text("tp53".into()), Datum::Int(9)],
            vec![Datum::Int(2), Datum::Null, Datum::Int(0)],
            vec![Datum::Null, Datum::Text("t".into()), Datum::Int(2)],
        ];
        for sql in exprs {
            let e = expr(sql);
            let prog = compile(&e, &b, &funcs).unwrap();
            for row in &rows {
                let ctx = EvalContext { bindings: &b, row, funcs: &funcs };
                let interp = crate::expr::eval::eval(&e, &ctx);
                let compiled = prog.eval(row);
                match (interp, compiled) {
                    (Ok(a), Ok(c)) => assert_eq!(a, c, "{sql} over {row:?}"),
                    (Err(_), Err(_)) => {}
                    (a, c) => panic!("{sql} over {row:?}: interp {a:?} vs compiled {c:?}"),
                }
            }
        }
    }

    #[test]
    fn error_free_is_conservative() {
        let funcs = FunctionRegistry::with_builtins();
        let b = bindings();
        let ef = |sql: &str| compile(&expr(sql), &b, &funcs).unwrap().error_free();
        assert!(ef("g.id"));
        assert!(ef("g.id > 5"));
        assert!(ef("g.id = 1 AND p.id < 3"));
        assert!(ef("NOT (g.id = 1)"));
        assert!(ef("g.id IS NULL OR p.id BETWEEN 1 AND 9"));
        assert!(ef("g.id IN (1, 2, NULL)"));
        // Arithmetic can overflow/divide-by-zero; functions and LIKE can
        // type-error; AND over a bare column can type-error.
        assert!(!ef("g.id + 1 > 2"));
        assert!(!ef("g.id / p.id = 1"));
        assert!(!ef("-g.id < 0"));
        assert!(!ef("upper(name) = 'X'"));
        assert!(!ef("name LIKE 't%'"));
        assert!(!ef("g.id AND p.id"));
        assert!(!ef("NOT name"));
    }

    #[test]
    fn collect_columns_finds_every_reference() {
        let funcs = FunctionRegistry::with_builtins();
        let b = bindings();
        let prog = compile(&expr("g.id > 1 AND p.id IN (2, 3)"), &b, &funcs).unwrap();
        let mut cols = std::collections::BTreeSet::new();
        prog.collect_columns(&mut cols);
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn zone_bounds_extraction() {
        let funcs = FunctionRegistry::with_builtins();
        let b = bindings();
        let bounds = |sql: &str| compile(&expr(sql), &b, &funcs).unwrap().zone_bounds();

        // Range conjuncts merge per column; literal-on-the-left flips.
        let bs = bounds("g.id >= 5 AND 10 > g.id");
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].col, 0);
        assert_eq!(bs[0].lo, Some((Datum::Int(5), true)));
        assert_eq!(bs[0].hi, Some((Datum::Int(10), false)));

        // Equality folds to lo == hi inclusive.
        let bs = bounds("p.id = 7");
        assert_eq!(bs[0].col, 2);
        assert_eq!(bs[0].lo, Some((Datum::Int(7), true)));
        assert_eq!(bs[0].hi, Some((Datum::Int(7), true)));

        // BETWEEN and IN contribute [min, max]; NULL list items drop out.
        let bs = bounds("g.id BETWEEN 2 AND 4");
        assert_eq!(bs[0].lo, Some((Datum::Int(2), true)));
        assert_eq!(bs[0].hi, Some((Datum::Int(4), true)));
        let bs = bounds("g.id IN (9, 3, NULL, 6)");
        assert_eq!(bs[0].lo, Some((Datum::Int(3), true)));
        assert_eq!(bs[0].hi, Some((Datum::Int(9), true)));

        // IS NULL / IS NOT NULL set the null-side requirements.
        let bs = bounds("g.id IS NULL");
        assert!(bs[0].require_null && !bs[0].require_non_null);
        let bs = bounds("g.id IS NOT NULL");
        assert!(bs[0].require_non_null);

        // NULL comparisons, OR, NOT and non-leaf shapes extract nothing.
        assert!(bounds("g.id > NULL").is_empty());
        assert!(bounds("g.id > 1 OR p.id < 2").is_empty());
        assert!(bounds("NOT (g.id > 1)").is_empty());
        assert!(bounds("g.id + 1 > 2").is_empty());
        assert!(bounds("g.id NOT BETWEEN 1 AND 2").is_empty());
        assert!(bounds("g.id NOT IN (1, 2)").is_empty());
        assert!(bounds("g.id IN (NULL)").is_empty());
    }

    #[test]
    fn infallible_is_conservative() {
        assert!(infallible(&expr("a")));
        assert!(infallible(&expr("1")));
        assert!(infallible(&expr("a IS NOT NULL")));
        assert!(!infallible(&expr("a + 1")));
        assert!(!infallible(&expr("upper(a)")));
        assert!(!infallible(&expr("a = 1")));
    }
}
