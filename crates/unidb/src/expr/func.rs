//! The function registry: built-in and user-defined scalar functions and
//! aggregates.
//!
//! This is the paper's §6.3 mechanism: "the UDT mechanism also allows us to
//! specify and include user-defined operators as external functions …
//! User-defined operators can be invoked anywhere built-in operators can be
//! used." Registered names are resolved at planning time and evaluated
//! wherever expressions occur.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar function implementation.
pub type ScalarFn = Arc<dyn Fn(&[Datum]) -> DbResult<Datum> + Send + Sync>;

/// Per-group aggregate state.
pub trait Accumulator: Send {
    /// Fold one input value (NULLs are filtered by the executor except for
    /// `count(*)`, which feeds a non-null marker per row).
    fn update(&mut self, value: &Datum) -> DbResult<()>;
    /// Produce the aggregate result.
    fn finish(&self) -> Datum;
}

/// Factory producing a fresh accumulator per group.
pub type AggregateFn = Arc<dyn Fn() -> Box<dyn Accumulator> + Send + Sync>;

/// Registry of scalar functions and aggregates.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    scalars: HashMap<String, ScalarFn>,
    aggregates: HashMap<String, AggregateFn>,
}

impl FunctionRegistry {
    /// A registry preloaded with the SQL built-ins.
    pub fn with_builtins() -> Self {
        let mut r = FunctionRegistry::default();
        r.install_builtins();
        r
    }

    /// Register a scalar function; rejects duplicate names so extensions
    /// cannot silently shadow built-ins.
    pub fn register_scalar(&mut self, name: &str, f: ScalarFn) -> DbResult<()> {
        let key = name.to_ascii_lowercase();
        if self.scalars.contains_key(&key) || self.aggregates.contains_key(&key) {
            return Err(DbError::AlreadyExists { kind: "function", name: key });
        }
        self.scalars.insert(key, f);
        Ok(())
    }

    /// Register an aggregate (user-defined aggregates are requirement C14).
    pub fn register_aggregate(&mut self, name: &str, f: AggregateFn) -> DbResult<()> {
        let key = name.to_ascii_lowercase();
        if self.scalars.contains_key(&key) || self.aggregates.contains_key(&key) {
            return Err(DbError::AlreadyExists { kind: "function", name: key });
        }
        self.aggregates.insert(key, f);
        Ok(())
    }

    /// Look up a scalar function.
    pub fn scalar(&self, name: &str) -> Option<&ScalarFn> {
        self.scalars.get(&name.to_ascii_lowercase())
    }

    /// Look up an aggregate factory.
    pub fn aggregate(&self, name: &str) -> Option<&AggregateFn> {
        self.aggregates.get(&name.to_ascii_lowercase())
    }

    /// Is this name an aggregate?
    pub fn is_aggregate(&self, name: &str) -> bool {
        self.aggregates.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered scalar functions, sorted.
    pub fn scalar_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.scalars.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    fn install_builtins(&mut self) {
        self.scalars.insert(
            "upper".into(),
            Arc::new(|args| {
                text_arg(args, "upper")
                    .map(|s| s.map_or(Datum::Null, |s| Datum::Text(s.to_uppercase())))
            }),
        );
        self.scalars.insert(
            "lower".into(),
            Arc::new(|args| {
                text_arg(args, "lower")
                    .map(|s| s.map_or(Datum::Null, |s| Datum::Text(s.to_lowercase())))
            }),
        );
        self.scalars.insert(
            "length".into(),
            Arc::new(|args| {
                arity(args, 1, "length")?;
                Ok(match &args[0] {
                    Datum::Null => Datum::Null,
                    Datum::Text(s) => Datum::Int(s.chars().count() as i64),
                    Datum::Blob(b) => Datum::Int(b.len() as i64),
                    other => {
                        return Err(DbError::TypeMismatch(format!(
                            "length() expects TEXT or BLOB, got {other}"
                        )))
                    }
                })
            }),
        );
        self.scalars.insert(
            "abs".into(),
            Arc::new(|args| {
                arity(args, 1, "abs")?;
                Ok(match &args[0] {
                    Datum::Null => Datum::Null,
                    Datum::Int(i) => Datum::Int(
                        i.checked_abs()
                            .ok_or_else(|| DbError::TypeMismatch("integer overflow".into()))?,
                    ),
                    Datum::Float(f) => Datum::Float(f.abs()),
                    other => {
                        return Err(DbError::TypeMismatch(format!(
                            "abs() expects a number, got {other}"
                        )))
                    }
                })
            }),
        );
        self.scalars.insert(
            "coalesce".into(),
            Arc::new(|args| Ok(args.iter().find(|d| !d.is_null()).cloned().unwrap_or(Datum::Null))),
        );
        self.scalars.insert(
            "substr".into(),
            Arc::new(|args| {
                arity(args, 3, "substr")?;
                if args.iter().any(Datum::is_null) {
                    return Ok(Datum::Null);
                }
                let s = args[0]
                    .as_text()
                    .ok_or_else(|| DbError::TypeMismatch("substr() expects TEXT".into()))?;
                let start = args[1]
                    .as_int()
                    .ok_or_else(|| DbError::TypeMismatch("substr() start must be INT".into()))?
                    .max(0) as usize;
                let len = args[2]
                    .as_int()
                    .ok_or_else(|| DbError::TypeMismatch("substr() length must be INT".into()))?
                    .max(0) as usize;
                Ok(Datum::Text(s.chars().skip(start).take(len).collect()))
            }),
        );

        self.aggregates.insert("count".into(), Arc::new(|| Box::new(CountAcc(0))));
        self.aggregates.insert("sum".into(), Arc::new(|| Box::new(SumAcc::default())));
        self.aggregates.insert("avg".into(), Arc::new(|| Box::new(AvgAcc::default())));
        self.aggregates
            .insert("min".into(), Arc::new(|| Box::new(ExtremeAcc { best: None, want_min: true })));
        self.aggregates.insert(
            "max".into(),
            Arc::new(|| Box::new(ExtremeAcc { best: None, want_min: false })),
        );
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("scalars", &self.scalars.len())
            .field("aggregates", &self.aggregates.len())
            .finish()
    }
}

fn arity(args: &[Datum], n: usize, name: &str) -> DbResult<()> {
    if args.len() != n {
        return Err(DbError::TypeMismatch(format!(
            "{name}() takes {n} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

fn text_arg<'a>(args: &'a [Datum], name: &str) -> DbResult<Option<&'a str>> {
    arity(args, 1, name)?;
    match &args[0] {
        Datum::Null => Ok(None),
        Datum::Text(s) => Ok(Some(s)),
        other => Err(DbError::TypeMismatch(format!("{name}() expects TEXT, got {other}"))),
    }
}

struct CountAcc(i64);

impl Accumulator for CountAcc {
    fn update(&mut self, value: &Datum) -> DbResult<()> {
        if !value.is_null() {
            self.0 += 1;
        }
        Ok(())
    }

    fn finish(&self) -> Datum {
        Datum::Int(self.0)
    }
}

/// Integer inputs accumulate in i128 so no realistic row count can
/// overflow mid-sum; if the final total doesn't fit i64 the result widens
/// to FLOAT (documented in DESIGN.md) rather than wrapping or panicking.
#[derive(Default)]
struct SumAcc {
    int_sum: i128,
    float_sum: f64,
    saw_float: bool,
    saw_any: bool,
}

impl Accumulator for SumAcc {
    fn update(&mut self, value: &Datum) -> DbResult<()> {
        match value {
            Datum::Null => {}
            Datum::Int(i) => {
                self.int_sum = self
                    .int_sum
                    .checked_add(*i as i128)
                    .ok_or_else(|| DbError::TypeMismatch("integer overflow".into()))?;
                self.saw_any = true;
            }
            Datum::Float(f) => {
                self.float_sum += f;
                self.saw_float = true;
                self.saw_any = true;
            }
            other => {
                return Err(DbError::TypeMismatch(format!("sum() expects numbers, got {other}")))
            }
        }
        Ok(())
    }

    fn finish(&self) -> Datum {
        if !self.saw_any {
            Datum::Null
        } else if self.saw_float {
            Datum::Float(self.float_sum + self.int_sum as f64)
        } else if let Ok(i) = i64::try_from(self.int_sum) {
            Datum::Int(i)
        } else {
            Datum::Float(self.int_sum as f64)
        }
    }
}

/// Like [`SumAcc`], integers accumulate exactly in i128; the division
/// happens once at finish so int-only averages don't lose precision to
/// incremental float rounding.
#[derive(Default)]
struct AvgAcc {
    int_sum: i128,
    float_sum: f64,
    n: u64,
}

impl Accumulator for AvgAcc {
    fn update(&mut self, value: &Datum) -> DbResult<()> {
        match value {
            Datum::Null => {}
            Datum::Int(i) => {
                self.int_sum = self
                    .int_sum
                    .checked_add(*i as i128)
                    .ok_or_else(|| DbError::TypeMismatch("integer overflow".into()))?;
                self.n += 1;
            }
            Datum::Float(f) => {
                self.float_sum += f;
                self.n += 1;
            }
            other => {
                return Err(DbError::TypeMismatch(format!("avg() expects numbers, got {other}")))
            }
        }
        Ok(())
    }

    fn finish(&self) -> Datum {
        if self.n == 0 {
            Datum::Null
        } else {
            Datum::Float((self.int_sum as f64 + self.float_sum) / self.n as f64)
        }
    }
}

struct ExtremeAcc {
    best: Option<Datum>,
    want_min: bool,
}

impl Accumulator for ExtremeAcc {
    fn update(&mut self, value: &Datum) -> DbResult<()> {
        if value.is_null() {
            return Ok(());
        }
        let better = match &self.best {
            None => true,
            Some(b) => {
                let ord = value.total_cmp(b);
                if self.want_min {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                }
            }
        };
        if better {
            self.best = Some(value.clone());
        }
        Ok(())
    }

    fn finish(&self) -> Datum {
        self.best.clone().unwrap_or(Datum::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FunctionRegistry {
        FunctionRegistry::with_builtins()
    }

    #[test]
    fn scalar_builtins() {
        let r = reg();
        let upper = r.scalar("UPPER").unwrap();
        assert_eq!(upper(&[Datum::Text("abc".into())]).unwrap(), Datum::Text("ABC".into()));
        assert_eq!(upper(&[Datum::Null]).unwrap(), Datum::Null);
        assert!(upper(&[Datum::Int(1)]).is_err());

        let length = r.scalar("length").unwrap();
        assert_eq!(length(&[Datum::Text("héllo".into())]).unwrap(), Datum::Int(5));
        assert_eq!(length(&[Datum::Blob(vec![1, 2])]).unwrap(), Datum::Int(2));

        let abs = r.scalar("abs").unwrap();
        assert_eq!(abs(&[Datum::Int(-3)]).unwrap(), Datum::Int(3));
        assert_eq!(abs(&[Datum::Float(-1.5)]).unwrap(), Datum::Float(1.5));

        let coalesce = r.scalar("coalesce").unwrap();
        assert_eq!(coalesce(&[Datum::Null, Datum::Int(2), Datum::Int(3)]).unwrap(), Datum::Int(2));
        assert_eq!(coalesce(&[]).unwrap(), Datum::Null);

        let substr = r.scalar("substr").unwrap();
        assert_eq!(
            substr(&[Datum::Text("genomics".into()), Datum::Int(3), Datum::Int(4)]).unwrap(),
            Datum::Text("omic".into())
        );
    }

    #[test]
    fn aggregates() {
        let r = reg();
        let mut count = r.aggregate("count").unwrap()();
        count.update(&Datum::Int(1)).unwrap();
        count.update(&Datum::Null).unwrap();
        count.update(&Datum::Text("x".into())).unwrap();
        assert_eq!(count.finish(), Datum::Int(2));

        let mut sum = r.aggregate("sum").unwrap()();
        sum.update(&Datum::Int(2)).unwrap();
        sum.update(&Datum::Int(3)).unwrap();
        assert_eq!(sum.finish(), Datum::Int(5));
        sum.update(&Datum::Float(0.5)).unwrap();
        assert_eq!(sum.finish(), Datum::Float(5.5));
        assert!(sum.update(&Datum::Text("x".into())).is_err());

        let empty_sum = r.aggregate("sum").unwrap()();
        assert_eq!(empty_sum.finish(), Datum::Null);

        let mut avg = r.aggregate("avg").unwrap()();
        for i in 1..=4 {
            avg.update(&Datum::Int(i)).unwrap();
        }
        assert_eq!(avg.finish(), Datum::Float(2.5));

        let mut min = r.aggregate("min").unwrap()();
        let mut max = r.aggregate("max").unwrap()();
        for d in [Datum::Int(5), Datum::Int(1), Datum::Null, Datum::Int(9)] {
            min.update(&d).unwrap();
            max.update(&d).unwrap();
        }
        assert_eq!(min.finish(), Datum::Int(1));
        assert_eq!(max.finish(), Datum::Int(9));
    }

    /// Regression: SUM over large INT values used to accumulate in i64 and
    /// panic (debug) or wrap (release). It now accumulates in i128 and
    /// widens to FLOAT when the total doesn't fit i64.
    #[test]
    fn sum_avg_do_not_overflow() {
        let r = reg();
        let mut sum = r.aggregate("sum").unwrap()();
        sum.update(&Datum::Int(i64::MAX)).unwrap();
        sum.update(&Datum::Int(i64::MAX)).unwrap();
        assert_eq!(sum.finish(), Datum::Float(i64::MAX as f64 * 2.0));
        // A sum that dips past i64::MAX and comes back still returns INT.
        let mut sum = r.aggregate("sum").unwrap()();
        sum.update(&Datum::Int(i64::MAX)).unwrap();
        sum.update(&Datum::Int(5)).unwrap();
        sum.update(&Datum::Int(-6)).unwrap();
        assert_eq!(sum.finish(), Datum::Int(i64::MAX - 1));

        let mut avg = r.aggregate("avg").unwrap()();
        avg.update(&Datum::Int(i64::MAX)).unwrap();
        avg.update(&Datum::Int(i64::MAX)).unwrap();
        assert_eq!(avg.finish(), Datum::Float(i64::MAX as f64));
        // Int-only averages are exact: no incremental float rounding.
        let mut avg = r.aggregate("avg").unwrap()();
        avg.update(&Datum::Int(1)).unwrap();
        avg.update(&Datum::Int(2)).unwrap();
        assert_eq!(avg.finish(), Datum::Float(1.5));
    }

    #[test]
    fn abs_overflow_is_an_error() {
        let r = reg();
        let abs = r.scalar("abs").unwrap();
        assert!(abs(&[Datum::Int(i64::MIN)]).is_err());
        assert_eq!(abs(&[Datum::Int(i64::MIN + 1)]).unwrap(), Datum::Int(i64::MAX));
    }

    #[test]
    fn user_registration_and_conflicts() {
        let mut r = reg();
        r.register_scalar(
            "reverse_text",
            Arc::new(|args| {
                Ok(match &args[0] {
                    Datum::Text(s) => Datum::Text(s.chars().rev().collect()),
                    _ => Datum::Null,
                })
            }),
        )
        .unwrap();
        let f = r.scalar("reverse_text").unwrap();
        assert_eq!(f(&[Datum::Text("abc".into())]).unwrap(), Datum::Text("cba".into()));
        // Duplicates rejected, including against aggregates.
        assert!(r.register_scalar("UPPER", Arc::new(|_| Ok(Datum::Null))).is_err());
        assert!(r.register_scalar("count", Arc::new(|_| Ok(Datum::Null))).is_err());
        assert!(r.register_aggregate("upper", Arc::new(|| Box::new(CountAcc(0)))).is_err());
        assert!(r.is_aggregate("COUNT"));
        assert!(!r.is_aggregate("upper"));
        assert!(r.scalar_names().contains(&"reverse_text"));
    }
}
