//! The system catalog: spaces, tables, columns, and opaque UDT registry.
//!
//! The paper's Unifying Database separates the **public space** — the
//! integrated, read-only external data — from updatable per-user spaces
//! (§5.1): "The schema containing the external data is read-only to
//! facilitate maintenance of the warehouse; user-owned entities are
//! updateable by their owners." Writes to the public space require the
//! maintainer role (held by the ETL loader).

use crate::datum::{DataType, Datum};
use crate::error::{DbError, DbResult};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Rendering hook an adapter registers for an opaque type's payloads.
pub type DisplayHook = Arc<dyn Fn(&[u8]) -> String + Send + Sync>;

/// Who is issuing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// The warehouse maintainer (the ETL loader); may write every space.
    Maintainer,
    /// An ordinary user; may write only spaces they own.
    User(String),
}

impl Role {
    /// The space a user's unqualified table names resolve to.
    pub fn default_space(&self) -> &str {
        match self {
            Role::Maintainer => "public",
            Role::User(name) => name,
        }
    }
}

/// A namespace within the warehouse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Space {
    pub name: String,
    /// Owner; `None` marks the shared public space.
    pub owner: Option<String>,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub id: u32,
    pub space: String,
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// `space.name`, the canonical key.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.space, self.name)
    }

    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// Sketch size: the K smallest hashes kept per column. 256 keeps the
/// estimate within a few percent while costing 2 KiB per column.
const NDV_SKETCH_K: usize = 256;

/// A KMV (k-minimum-values) distinct-count sketch.
///
/// Feed it the 64-bit hash of every observed value; it keeps only the K
/// smallest distinct hashes. If fewer than K have been seen the count is
/// exact; otherwise the classic KMV estimator extrapolates from how
/// tightly the K minima crowd the bottom of the hash space. Insert-only:
/// deletes are not un-observed, so the estimate is an upper bound on a
/// shrinking table (the planner only needs relative magnitudes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NdvSketch {
    mins: BTreeSet<u64>,
}

impl NdvSketch {
    /// Observe one value by its 64-bit hash.
    pub fn observe(&mut self, hash: u64) {
        if self.mins.len() < NDV_SKETCH_K {
            self.mins.insert(hash);
        } else if let Some(&max) = self.mins.last() {
            if hash < max && self.mins.insert(hash) {
                self.mins.pop_last();
            }
        }
    }

    /// Estimated number of distinct values observed.
    pub fn estimate(&self) -> u64 {
        if self.mins.len() < NDV_SKETCH_K {
            return self.mins.len() as u64;
        }
        // KMV: with the K-th smallest hash at fraction x of the hash
        // space, NDV ≈ (K-1)/x. Computed in f64 to dodge u64 overflow.
        let kth = (*self.mins.last().expect("sketch is full")).max(1);
        ((NDV_SKETCH_K - 1) as f64 * (u64::MAX as f64) / kth as f64) as u64
    }
}

/// Reservoir sample size per column. 256 values bound the equi-depth
/// histogram's memory while keeping bucket boundaries within a few
/// percent of the true quantiles for the table sizes this engine serves.
const SAMPLE_CAP: usize = 256;

/// Maximum equi-depth histogram buckets built from a sample.
const HIST_BUCKETS: usize = 16;

/// A fixed-size uniform random sample of a column's non-NULL values
/// (Vitter's reservoir algorithm R).
///
/// The RNG is a seeded xorshift64 — *deterministic*, which matters more
/// here than statistical polish: WAL replay re-observes the same values
/// in the same order, so a recovered database lands on byte-identical
/// samples (and therefore identical histograms and plans).
#[derive(Debug, Clone)]
pub struct ReservoirSample {
    values: Vec<Datum>,
    seen: u64,
    rng: u64,
}

impl ReservoirSample {
    fn new(column: usize) -> Self {
        // Per-column seed so sibling columns don't share an RNG stream.
        ReservoirSample {
            values: Vec::new(),
            seen: 0,
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((column as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D)),
        }
    }

    fn observe(&mut self, d: &Datum) {
        self.seen += 1;
        if self.values.len() < SAMPLE_CAP {
            self.values.push(d.clone());
            return;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let j = self.rng % self.seen;
        if (j as usize) < SAMPLE_CAP {
            self.values[j as usize] = d.clone();
        }
    }
}

/// One column's statistics: distinct-value sketch, NULL count, and the
/// sample the equi-depth histogram is built from.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    ndv: NdvSketch,
    sample: ReservoirSample,
    nulls: u64,
}

impl ColumnStats {
    fn new(column: usize) -> Self {
        ColumnStats { ndv: NdvSketch::default(), sample: ReservoirSample::new(column), nulls: 0 }
    }
}

/// Per-table statistics maintained at insert/update time.
///
/// Row counts live in the heap (always exact); this adds the per-column
/// distinct-value sketches, NULL counts, and histogram samples the
/// planner uses for join ordering and filter selectivity. Stats are
/// runtime-only state: like the rest of the catalog they are rebuilt by
/// WAL replay on recovery, so they never need their own persistence.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// One entry per column position. NULLs are counted but never fed to
    /// the sketch or sample — the estimates describe the non-NULL
    /// population, which is exactly what join keys and comparisons match.
    columns: Vec<ColumnStats>,
    /// Rows observed (inserts and post-update images) since the last
    /// reset.
    observed: u64,
    /// Deletes since the last reset. Sketches and samples are insert-only,
    /// so heavy deletion drifts them away from the live data; past a
    /// threshold ([`Catalog::observe_delete`]) the engine rebuilds.
    deleted: u64,
}

/// An equi-depth histogram over one column's sampled non-NULL values:
/// every bucket holds the same number of sampled values, so bucket
/// *boundaries* (not counts) carry the shape of the distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// Smallest sampled value: anything below it selects nothing.
    min: Datum,
    /// Bucket upper bounds, nondecreasing, at most [`HIST_BUCKETS`].
    bounds: Vec<Datum>,
    /// The full sorted sample, kept for exact-match selectivity.
    sorted: Vec<Datum>,
}

impl EquiDepthHistogram {
    /// Build from a (not necessarily sorted) sample; `None` when empty.
    pub fn from_sample(values: &[Datum]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let buckets = HIST_BUCKETS.min(n);
        let bounds = (1..=buckets).map(|b| sorted[b * n / buckets - 1].clone()).collect();
        Some(EquiDepthHistogram { min: sorted[0].clone(), bounds, sorted })
    }

    /// Bucket upper bounds (equal depth each).
    pub fn buckets(&self) -> &[Datum] {
        &self.bounds
    }

    /// Estimated fraction of non-NULL values at or below `v` (strictly
    /// below when `inclusive` is false). Bucket-granular with half-bucket
    /// interpolation for values landing inside a bucket.
    fn frac_at_most(&self, v: &Datum, inclusive: bool) -> f64 {
        match v.total_cmp(&self.min) {
            Ordering::Less => return 0.0,
            Ordering::Equal if !inclusive => return 0.0,
            _ => {}
        }
        let k = self.bounds.len() as f64;
        // Repeated values can share several bucket bounds; an inclusive
        // probe equal to a bound covers every bucket ending at it.
        let mut eq_through: Option<usize> = None;
        for (i, ub) in self.bounds.iter().enumerate() {
            match v.total_cmp(ub) {
                Ordering::Less => {
                    return match eq_through {
                        Some(n) => n as f64 / k,
                        None => (i as f64 + 0.5) / k,
                    };
                }
                Ordering::Equal if inclusive => eq_through = Some(i + 1),
                Ordering::Equal => return (i as f64 + 0.5) / k,
                Ordering::Greater => {}
            }
        }
        match eq_through {
            Some(n) => n as f64 / k,
            None => 1.0,
        }
    }

    /// Estimated selectivity of `lo < / <= col < / <= hi` over the
    /// non-NULL population (either side optional; the bool is
    /// "inclusive").
    pub fn range_selectivity(&self, lo: Option<(&Datum, bool)>, hi: Option<(&Datum, bool)>) -> f64 {
        let hi_f = hi.map_or(1.0, |(v, incl)| self.frac_at_most(v, incl));
        let lo_f = lo.map_or(0.0, |(v, incl)| self.frac_at_most(v, !incl));
        (hi_f - lo_f).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `col = v` over the non-NULL population:
    /// the exact match fraction within the sample.
    pub fn eq_selectivity(&self, v: &Datum) -> f64 {
        let lo = self.sorted.partition_point(|x| x.total_cmp(v) == Ordering::Less);
        let hi = self.sorted.partition_point(|x| x.total_cmp(v) != Ordering::Greater);
        (hi - lo) as f64 / self.sorted.len() as f64
    }
}

/// A registered opaque user-defined type (§6.2).
///
/// The engine never inspects the payload; the registering adapter may
/// provide a display hook so query results render meaningfully.
#[derive(Clone)]
pub struct OpaqueTypeDef {
    pub id: u32,
    pub name: String,
    pub display: Option<DisplayHook>,
}

impl fmt::Debug for OpaqueTypeDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpaqueTypeDef")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("display", &self.display.is_some())
            .finish()
    }
}

/// The catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    spaces: HashMap<String, Space>,
    tables: HashMap<String, TableDef>,
    types_by_name: HashMap<String, OpaqueTypeDef>,
    types_by_id: HashMap<u32, OpaqueTypeDef>,
    stats: HashMap<u32, TableStats>,
    next_table_id: u32,
    next_type_id: u32,
}

impl Catalog {
    /// A catalog with the `public` space pre-created.
    pub fn new() -> Self {
        let mut c = Catalog { next_table_id: 1, next_type_id: 1, ..Default::default() };
        c.spaces.insert("public".into(), Space { name: "public".into(), owner: None });
        c
    }

    // -- spaces -------------------------------------------------------------

    /// Create a user space owned by `owner`.
    pub fn create_space(&mut self, name: &str, owner: &str) -> DbResult<()> {
        let key = name.to_ascii_lowercase();
        if self.spaces.contains_key(&key) {
            return Err(DbError::AlreadyExists { kind: "space", name: name.into() });
        }
        self.spaces.insert(key.clone(), Space { name: key, owner: Some(owner.to_string()) });
        Ok(())
    }

    /// Ensure a user's default space exists (created lazily on first write).
    pub fn ensure_user_space(&mut self, user: &str) {
        let key = user.to_ascii_lowercase();
        self.spaces
            .entry(key.clone())
            .or_insert_with(|| Space { name: key, owner: Some(user.to_string()) });
    }

    /// Look up a space.
    pub fn space(&self, name: &str) -> Option<&Space> {
        self.spaces.get(&name.to_ascii_lowercase())
    }

    /// May `role` write into `space`?
    pub fn can_write(&self, role: &Role, space: &str) -> bool {
        match role {
            Role::Maintainer => true,
            Role::User(user) => self
                .space(space)
                .and_then(|s| s.owner.as_deref())
                .is_some_and(|owner| owner.eq_ignore_ascii_case(user)),
        }
    }

    // -- tables -------------------------------------------------------------

    /// Create a table; the space must exist.
    pub fn create_table(
        &mut self,
        space: &str,
        name: &str,
        columns: Vec<ColumnDef>,
    ) -> DbResult<&TableDef> {
        let space_key = space.to_ascii_lowercase();
        if self.space(&space_key).is_none() {
            return Err(DbError::NotFound { kind: "space", name: space.into() });
        }
        if columns.is_empty() {
            return Err(DbError::Constraint("a table needs at least one column".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(DbError::Constraint(format!("duplicate column {:?}", c.name)));
            }
        }
        let key = format!("{space_key}.{}", name.to_ascii_lowercase());
        if self.tables.contains_key(&key) {
            return Err(DbError::AlreadyExists { kind: "table", name: key });
        }
        let def = TableDef {
            id: self.next_table_id,
            space: space_key,
            name: name.to_ascii_lowercase(),
            columns,
        };
        self.next_table_id += 1;
        Ok(self.tables.entry(key).or_insert(def))
    }

    /// Drop a table (and its statistics).
    pub fn drop_table(&mut self, space: &str, name: &str) -> DbResult<TableDef> {
        let key = format!("{}.{}", space.to_ascii_lowercase(), name.to_ascii_lowercase());
        let def = self.tables.remove(&key).ok_or(DbError::NotFound { kind: "table", name: key })?;
        self.stats.remove(&def.id);
        Ok(def)
    }

    // -- statistics ---------------------------------------------------------

    /// Fold one inserted (or post-update) row into the table's per-column
    /// statistics. Called from the row mutators, including WAL replay,
    /// so recovery rebuilds statistics along with the data.
    pub fn observe_row(&mut self, table_id: u32, row: &[Datum]) {
        let stats = self.stats.entry(table_id).or_default();
        stats.observed += 1;
        while stats.columns.len() < row.len() {
            let pos = stats.columns.len();
            stats.columns.push(ColumnStats::new(pos));
        }
        for (col, datum) in stats.columns.iter_mut().zip(row) {
            if datum.is_null() {
                col.nulls += 1;
            } else {
                col.ndv.observe(crate::fxhash::hash_one(datum));
                col.sample.observe(datum);
            }
        }
    }

    /// Record one deleted row. Returns `true` when deletion has outpaced
    /// the insert-only statistics badly enough that the caller should
    /// rebuild them from the live rows: at least 64 deletes since the
    /// last reset, and deletes make up half of everything observed.
    pub fn observe_delete(&mut self, table_id: u32) -> bool {
        let Some(stats) = self.stats.get_mut(&table_id) else { return false };
        stats.deleted += 1;
        stats.deleted >= 64 && stats.deleted * 2 >= stats.observed
    }

    /// Discard a table's statistics so the caller can re-observe the live
    /// rows from scratch (fresh sketches, samples, and churn counters).
    pub fn reset_stats(&mut self, table_id: u32) {
        self.stats.remove(&table_id);
    }

    /// Estimated count of distinct non-NULL values in a column, or `None`
    /// when the column has never been observed (pre-existing data, or a
    /// table with no inserts yet) — callers fall back to the row count.
    pub fn column_ndv(&self, table_id: u32, column: usize) -> Option<u64> {
        let sketch = &self.stats.get(&table_id)?.columns.get(column)?.ndv;
        match sketch.estimate() {
            0 => None,
            n => Some(n),
        }
    }

    /// Fraction of observed rows whose value in `column` is NULL, or
    /// `None` when nothing has been observed.
    pub fn column_null_frac(&self, table_id: u32, column: usize) -> Option<f64> {
        let stats = self.stats.get(&table_id)?;
        if stats.observed == 0 {
            return None;
        }
        let col = stats.columns.get(column)?;
        Some(col.nulls as f64 / stats.observed as f64)
    }

    /// Equi-depth histogram over a column's sampled non-NULL values, or
    /// `None` when the sample is empty. Built on demand — the sample is
    /// at most `SAMPLE_CAP` values, so the sort is cheap relative to
    /// planning.
    pub fn column_histogram(&self, table_id: u32, column: usize) -> Option<EquiDepthHistogram> {
        let col = self.stats.get(&table_id)?.columns.get(column)?;
        EquiDepthHistogram::from_sample(&col.sample.values)
    }

    /// Order-sensitive fingerprint of a table's statistics: sketches,
    /// samples, NULL counts, and churn counters. Two databases that
    /// applied the same logical history (e.g. a clean run and a
    /// crash-recovered WAL replay) must produce the same value; `0` for a
    /// table with no statistics.
    pub fn stats_fingerprint(&self, table_id: u32) -> u64 {
        let Some(stats) = self.stats.get(&table_id) else { return 0 };
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mix = |h: &mut u64, v: u64| *h = (*h ^ v).wrapping_mul(0x100_0000_01b3);
        mix(&mut h, stats.observed);
        mix(&mut h, stats.deleted);
        for col in &stats.columns {
            mix(&mut h, col.nulls);
            mix(&mut h, col.sample.seen);
            for m in &col.ndv.mins {
                mix(&mut h, *m);
            }
            for v in &col.sample.values {
                mix(&mut h, crate::fxhash::hash_one(v));
            }
        }
        h
    }

    /// Resolve a possibly qualified table name against the session's
    /// default space, falling back to `public`.
    pub fn resolve_table(&self, default_space: &str, name: &str) -> DbResult<&TableDef> {
        let lower = name.to_ascii_lowercase();
        if let Some((space, table)) = lower.split_once('.') {
            let key = format!("{space}.{table}");
            return self.tables.get(&key).ok_or(DbError::NotFound { kind: "table", name: key });
        }
        let own = format!("{}.{lower}", default_space.to_ascii_lowercase());
        if let Some(t) = self.tables.get(&own) {
            return Ok(t);
        }
        let public = format!("public.{lower}");
        self.tables.get(&public).ok_or(DbError::NotFound { kind: "table", name: name.into() })
    }

    /// Find a table by qualified name, or by bare name when it is
    /// unambiguous across spaces (used by API-level registration calls
    /// that have no session space).
    pub fn find_table(&self, name: &str) -> DbResult<&TableDef> {
        let lower = name.to_ascii_lowercase();
        if lower.contains('.') {
            return self.tables.get(&lower).ok_or(DbError::NotFound { kind: "table", name: lower });
        }
        let hits: Vec<&TableDef> = self.tables.values().filter(|t| t.name == lower).collect();
        match hits.as_slice() {
            [one] => Ok(one),
            [] => Err(DbError::NotFound { kind: "table", name: lower }),
            _ => Err(DbError::Constraint(format!(
                "table name {lower:?} is ambiguous across spaces; qualify it"
            ))),
        }
    }

    /// Look a table up by its numeric id.
    pub fn table_by_id(&self, id: u32) -> Option<&TableDef> {
        self.tables.values().find(|t| t.id == id)
    }

    /// All tables, sorted by qualified name.
    pub fn tables(&self) -> Vec<&TableDef> {
        let mut v: Vec<&TableDef> = self.tables.values().collect();
        v.sort_by_key(|t| t.qualified_name());
        v
    }

    // -- opaque types ---------------------------------------------------------

    /// Register an opaque UDT; returns its assigned type id.
    pub fn register_opaque_type(
        &mut self,
        name: &str,
        display: Option<DisplayHook>,
    ) -> DbResult<u32> {
        let key = name.to_ascii_lowercase();
        if self.types_by_name.contains_key(&key) {
            return Err(DbError::AlreadyExists { kind: "type", name: name.into() });
        }
        let id = self.next_type_id;
        self.next_type_id += 1;
        let def = OpaqueTypeDef { id, name: key.clone(), display };
        self.types_by_name.insert(key, def.clone());
        self.types_by_id.insert(id, def);
        Ok(id)
    }

    /// Look up an opaque type by name (how `CREATE TABLE` refers to it).
    pub fn opaque_type_by_name(&self, name: &str) -> Option<&OpaqueTypeDef> {
        self.types_by_name.get(&name.to_ascii_lowercase())
    }

    /// Look up an opaque type by id (how datums refer to it).
    pub fn opaque_type_by_id(&self, id: u32) -> Option<&OpaqueTypeDef> {
        self.types_by_id.get(&id)
    }

    /// Parse a column type name: builtin or registered opaque type.
    pub fn parse_type(&self, name: &str) -> DbResult<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Ok(DataType::Text),
            "BLOB" | "BYTEA" => Ok(DataType::Blob),
            _ => self
                .opaque_type_by_name(name)
                .map(|t| DataType::Opaque(t.id))
                .ok_or(DbError::NotFound { kind: "type", name: name.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef { name: "id".into(), ty: DataType::Int, nullable: false },
            ColumnDef { name: "name".into(), ty: DataType::Text, nullable: true },
        ]
    }

    #[test]
    fn create_and_resolve_tables() {
        let mut c = Catalog::new();
        c.ensure_user_space("alice");
        c.create_table("public", "genes", cols()).unwrap();
        c.create_table("alice", "notes", cols()).unwrap();

        // Unqualified resolution prefers the user's space, falls back to public.
        assert_eq!(c.resolve_table("alice", "notes").unwrap().space, "alice");
        assert_eq!(c.resolve_table("alice", "genes").unwrap().space, "public");
        assert_eq!(c.resolve_table("alice", "public.genes").unwrap().space, "public");
        assert!(c.resolve_table("alice", "missing").is_err());
        assert_eq!(c.tables().len(), 2);
    }

    #[test]
    fn duplicate_and_invalid_tables_rejected() {
        let mut c = Catalog::new();
        c.create_table("public", "t", cols()).unwrap();
        assert!(matches!(
            c.create_table("public", "T", cols()),
            Err(DbError::AlreadyExists { .. })
        ));
        assert!(c.create_table("nosuch", "t2", cols()).is_err());
        assert!(c.create_table("public", "t3", vec![]).is_err());
        let dup = vec![
            ColumnDef { name: "a".into(), ty: DataType::Int, nullable: true },
            ColumnDef { name: "A".into(), ty: DataType::Int, nullable: true },
        ];
        assert!(c.create_table("public", "t4", dup).is_err());
    }

    #[test]
    fn access_control() {
        let mut c = Catalog::new();
        c.ensure_user_space("alice");
        c.create_space("shared", "alice").unwrap();
        assert!(c.can_write(&Role::Maintainer, "public"));
        assert!(!c.can_write(&Role::User("alice".into()), "public"));
        assert!(c.can_write(&Role::User("alice".into()), "alice"));
        assert!(c.can_write(&Role::User("alice".into()), "shared"));
        assert!(!c.can_write(&Role::User("bob".into()), "alice"));
    }

    #[test]
    fn opaque_type_registry() {
        let mut c = Catalog::new();
        let id = c
            .register_opaque_type("dna", Some(Arc::new(|b: &[u8]| format!("{} bytes", b.len()))))
            .unwrap();
        assert_eq!(c.opaque_type_by_name("DNA").unwrap().id, id);
        assert_eq!(c.opaque_type_by_id(id).unwrap().name, "dna");
        assert!(c.register_opaque_type("dna", None).is_err());
        assert_eq!(c.parse_type("dna").unwrap(), DataType::Opaque(id));
        assert_eq!(c.parse_type("INT").unwrap(), DataType::Int);
        assert!(c.parse_type("nonsense").is_err());
        let disp = c.opaque_type_by_id(id).unwrap().display.clone().unwrap();
        assert_eq!(disp(&[1, 2, 3]), "3 bytes");
    }

    #[test]
    fn table_column_lookup() {
        let mut c = Catalog::new();
        let t = c.create_table("public", "t", cols()).unwrap();
        assert_eq!(t.column_index("ID"), Some(0));
        assert_eq!(t.column_index("name"), Some(1));
        assert_eq!(t.column_index("zz"), None);
        assert_eq!(t.qualified_name(), "public.t");
    }

    #[test]
    fn drop_table() {
        let mut c = Catalog::new();
        c.create_table("public", "t", cols()).unwrap();
        assert!(c.drop_table("public", "t").is_ok());
        assert!(c.drop_table("public", "t").is_err());
    }

    #[test]
    fn ndv_sketch_exact_below_k_and_close_above() {
        let mut s = NdvSketch::default();
        for i in 0..100u64 {
            s.observe(crate::fxhash::hash_one(&i));
            s.observe(crate::fxhash::hash_one(&i)); // duplicates don't count
        }
        assert_eq!(s.estimate(), 100);

        let mut big = NdvSketch::default();
        for i in 0..100_000u64 {
            big.observe(crate::fxhash::hash_one(&i));
        }
        let est = big.estimate() as f64;
        assert!((est - 100_000.0).abs() / 100_000.0 < 0.25, "estimate {est} too far from 100000");
    }

    #[test]
    fn reservoir_and_fingerprint_are_deterministic() {
        let build = || {
            let mut c = Catalog::new();
            let id = c.create_table("public", "t", cols()).unwrap().id;
            for i in 0..2000i64 {
                let name =
                    if i % 5 == 0 { Datum::Null } else { Datum::Text(format!("g{}", i % 7)) };
                c.observe_row(id, &[Datum::Int(i), name]);
            }
            (c, id)
        };
        let (a, ia) = build();
        let (b, ib) = build();
        assert_ne!(a.stats_fingerprint(ia), 0);
        assert_eq!(a.stats_fingerprint(ia), b.stats_fingerprint(ib));
        assert_eq!(a.column_histogram(ia, 0), b.column_histogram(ib, 0));
        // Different history ⇒ different fingerprint.
        let (mut c, ic) = build();
        c.observe_row(ic, &[Datum::Int(9999), Datum::Null]);
        assert_ne!(a.stats_fingerprint(ia), c.stats_fingerprint(ic));
    }

    #[test]
    fn equi_depth_histogram_selectivity() {
        let mut c = Catalog::new();
        let id = c.create_table("public", "t", cols()).unwrap().id;
        for i in 0..200i64 {
            c.observe_row(id, &[Datum::Int(i), Datum::Null]);
        }
        let h = c.column_histogram(id, 0).unwrap();
        assert!(h.buckets().len() <= 16);
        assert!(h.buckets().windows(2).all(|w| w[0].total_cmp(&w[1]) != Ordering::Greater));
        // Below the minimum: nothing qualifies.
        assert_eq!(h.range_selectivity(Some((&Datum::Int(500), true)), None), 0.0);
        // Top ~10% of a uniform column.
        let sel = h.range_selectivity(Some((&Datum::Int(180), true)), None);
        assert!(sel > 0.02 && sel < 0.25, "selectivity {sel} not near 0.1");
        // Whole range.
        assert_eq!(h.range_selectivity(None, None), 1.0);
        // Exact match on a 200-distinct-values column is rare.
        assert!(h.eq_selectivity(&Datum::Int(42)) <= 0.05);
        // No histogram for the all-NULL column.
        assert!(c.column_histogram(id, 1).is_none());
        let nf = c.column_null_frac(id, 1).unwrap();
        assert!((nf - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn observe_delete_flags_heavy_churn() {
        let mut c = Catalog::new();
        let id = c.create_table("public", "t", cols()).unwrap().id;
        // No stats yet: deletes against an unobserved table never flag.
        assert!(!c.observe_delete(id));
        for i in 0..100i64 {
            c.observe_row(id, &[Datum::Int(i), Datum::Null]);
        }
        for n in 1..=100u64 {
            let flagged = c.observe_delete(id);
            assert_eq!(flagged, n >= 64, "delete #{n}");
            if flagged {
                break;
            }
        }
        // A reset clears the churn counters.
        c.reset_stats(id);
        assert!(!c.observe_delete(id));
    }

    #[test]
    fn table_stats_observe_and_lookup() {
        let mut c = Catalog::new();
        let id = c.create_table("public", "t", cols()).unwrap().id;
        assert_eq!(c.column_ndv(id, 0), None); // nothing observed yet
        for i in 0..10i64 {
            c.observe_row(id, &[Datum::Int(i % 3), Datum::Null]);
        }
        assert_eq!(c.column_ndv(id, 0), Some(3));
        assert_eq!(c.column_ndv(id, 1), None); // all-NULL column: no estimate
        assert_eq!(c.column_ndv(id, 9), None); // out-of-range column
        c.drop_table("public", "t").unwrap();
        assert_eq!(c.column_ndv(id, 0), None); // stats dropped with the table
    }
}
