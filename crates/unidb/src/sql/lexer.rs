//! SQL tokenizer.

use crate::error::{DbError, DbResult};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword; the parser decides by context. Stored as
    /// written, compared case-insensitively.
    Word(String),
    Int(i64),
    Float(f64),
    Str(String),
    Comma,
    LParen,
    RParen,
    Dot,
    Star,
    Semicolon,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Slash,
    Percent,
}

impl Token {
    /// True if this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => f.write_str(","),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Dot => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::Semicolon => f.write_str(";"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
        }
    }
}

/// Tokenize SQL text. String literals use single quotes with `''` escaping;
/// `--` starts a line comment.
pub fn lex(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    // Decode chars, not bytes: multi-byte UTF-8 must survive.
                    match input[i..].chars().next() {
                        None => return Err(DbError::Parse("unterminated string literal".into())),
                        Some('\'') if input[i + 1..].starts_with('\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(
                        text.parse()
                            .map_err(|_| DbError::Parse(format!("bad float literal {text:?}")))?,
                    ));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| {
                        DbError::Parse(format!("integer literal {text:?} out of range"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Word(input[start..i].to_string()));
            }
            other => return Err(DbError::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = lex("SELECT id, name FROM t WHERE x >= 1.5 AND y <> 'it''s'").unwrap();
        assert!(toks.contains(&Token::Word("SELECT".into())));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::Str("it's".into())));
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("4.25").unwrap(), vec![Token::Float(4.25)]);
        assert_eq!(lex("1e3").unwrap(), vec![Token::Float(1000.0)]);
        assert_eq!(lex("2E-2").unwrap(), vec![Token::Float(0.02)]);
        // A trailing dot is member access, not a float.
        assert_eq!(lex("1.x").unwrap().len(), 3);
    }

    #[test]
    fn comments_and_whitespace() {
        let toks = lex("SELECT -- the projection\n  1").unwrap();
        assert_eq!(toks, vec![Token::Word("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn operators() {
        let toks = lex("= != <> < <= > >= + - * / %").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn unicode_string_literals() {
        assert_eq!(lex("'héllo'").unwrap(), vec![Token::Str("héllo".into())]);
        assert_eq!(lex("'αβ''γ'").unwrap(), vec![Token::Str("αβ'γ".into())]);
        assert_eq!(lex("'🧬'").unwrap(), vec![Token::Str("🧬".into())]);
        assert!(lex("'é").is_err());
    }

    #[test]
    fn keyword_check_case_insensitive() {
        let toks = lex("select").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(!toks[0].is_kw("FROM"));
    }
}
