//! Abstract syntax tree for the SQL dialect.

use crate::datum::Datum;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Select(SelectStmt),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    Delete {
        table: String,
        filter: Option<Expr>,
    },
    CreateTable {
        table: String,
        /// `(name, type name, nullable)` — type names resolve against the
        /// catalog, so opaque UDT names work here.
        columns: Vec<(String, String, bool)>,
    },
    DropTable {
        table: String,
    },
    CreateIndex {
        table: String,
        column: String,
        unique: bool,
    },
    CreateSpace {
        name: String,
    },
    Begin,
    Commit,
    Rollback,
    Explain {
        stmt: Box<Stmt>,
        /// `EXPLAIN ANALYZE`: execute the statement and annotate the plan
        /// with per-operator runtime counters.
        analyze: bool,
    },
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projections: Vec<Projection>,
    pub from: Option<FromClause>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<(Expr, bool)>,
    pub limit: Option<u64>,
    /// Rows to skip before the limit applies (`LIMIT n OFFSET m`).
    pub offset: Option<u64>,
}

/// One item of a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`.
    Star,
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// `FROM` clause: a base table plus joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    pub base: TableRef,
    pub joins: Vec<Join>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name expressions refer to this table by.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A join step.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: Option<Expr>,
}

/// Join kinds supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// Scalar expressions; user-defined operators appear as [`Expr::Func`],
/// which is how the Genomics Algebra reaches every SQL clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Datum),
    Column {
        table: Option<String>,
        name: String,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Scalar function, user-defined operator, or aggregate call.
    Func {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `*` inside `COUNT(*)`.
    Wildcard,
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
        /// `ESCAPE 'c'`: in the pattern, `c` followed by any character makes
        /// that character literal (so `\%` matches a percent sign).
        escape: Option<char>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl Expr {
    /// Walk the expression tree, visiting every node.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Wildcard => {}
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
        }
    }

    /// True if the expression references any column.
    pub fn references_columns(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Column { .. }) {
                found = true;
            }
        });
        found
    }

    /// Split a conjunction into its AND-ed factors.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary { op: BinOp::And, left, right } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Reassemble factors into a conjunction (`None` for an empty list).
    pub fn conjoin(factors: Vec<Expr>) -> Option<Expr> {
        factors.into_iter().reduce(|acc, e| Expr::Binary {
            op: BinOp::And,
            left: Box::new(acc),
            right: Box::new(e),
        })
    }

    /// A human-readable rendering for EXPLAIN output.
    pub fn render(&self) -> String {
        self.render_impl(false)
    }

    /// Like [`Expr::render`], but every literal value is elided as `?` —
    /// the literal-insensitive *shape* used for plan hashing, so two
    /// executions of one statement fingerprint that differ only in bound
    /// constants hash to the same plan.
    pub fn render_shape(&self) -> String {
        self.render_impl(true)
    }

    fn render_impl(&self, shape: bool) -> String {
        match self {
            Expr::Literal(_) if shape => "?".to_string(),
            Expr::Literal(d) => match d {
                Datum::Text(s) => format!("'{s}'"),
                other => other.to_string(),
            },
            Expr::Column { table: Some(t), name } => format!("{t}.{name}"),
            Expr::Column { table: None, name } => name.clone(),
            Expr::Unary { op: UnaryOp::Not, expr } => format!("NOT {}", expr.render_impl(shape)),
            // Parenthesized so nested negation never renders as `--x`,
            // which the lexer would read as a comment.
            Expr::Unary { op: UnaryOp::Neg, expr } => format!("(-{})", expr.render_impl(shape)),
            Expr::Binary { op, left, right } => {
                let sym = match op {
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                    BinOp::Eq => "=",
                    BinOp::NotEq => "<>",
                    BinOp::Lt => "<",
                    BinOp::LtEq => "<=",
                    BinOp::Gt => ">",
                    BinOp::GtEq => ">=",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                };
                format!("({} {sym} {})", left.render_impl(shape), right.render_impl(shape))
            }
            Expr::Func { name, args, distinct } => {
                let inner: Vec<String> = args.iter().map(|a| a.render_impl(shape)).collect();
                let d = if *distinct { "DISTINCT " } else { "" };
                format!("{name}({d}{})", inner.join(", "))
            }
            Expr::Wildcard => "*".into(),
            Expr::IsNull { expr, negated } => {
                format!("{} IS {}NULL", expr.render_impl(shape), if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                let inner: Vec<String> = list.iter().map(|a| a.render_impl(shape)).collect();
                format!(
                    "{} {}IN ({})",
                    expr.render_impl(shape),
                    if *negated { "NOT " } else { "" },
                    inner.join(", ")
                )
            }
            Expr::Between { expr, low, high, negated } => format!(
                "{} {}BETWEEN {} AND {}",
                expr.render_impl(shape),
                if *negated { "NOT " } else { "" },
                low.render_impl(shape),
                high.render_impl(shape)
            ),
            Expr::Like { expr, pattern, negated, escape } => format!(
                "{} {}LIKE {}{}",
                expr.render_impl(shape),
                if *negated { "NOT " } else { "" },
                pattern.render_impl(shape),
                if shape {
                    escape.map_or(String::new(), |_| " ESCAPE ?".to_string())
                } else {
                    escape.map_or(String::new(), |c| format!(" ESCAPE '{c}'"))
                }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str) -> Expr {
        Expr::Column { table: None, name: name.into() }
    }

    #[test]
    fn conjunct_split_and_join() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(col("a")),
            right: Box::new(Expr::Binary {
                op: BinOp::And,
                left: Box::new(col("b")),
                right: Box::new(col("c")),
            }),
        };
        let parts = e.clone().conjuncts();
        assert_eq!(parts.len(), 3);
        let back = Expr::conjoin(parts).unwrap();
        // Same factors, possibly reassociated.
        assert_eq!(back.clone().conjuncts().len(), 3);
        assert!(Expr::conjoin(vec![]).is_none());
    }

    #[test]
    fn column_detection() {
        assert!(col("x").references_columns());
        assert!(!Expr::Literal(Datum::Int(1)).references_columns());
        let f = Expr::Func { name: "f".into(), args: vec![col("x")], distinct: false };
        assert!(f.references_columns());
    }

    #[test]
    fn rendering() {
        let e = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(col("id")),
            right: Box::new(Expr::Literal(Datum::Int(3))),
        };
        assert_eq!(e.render(), "(id = 3)");
        let f = Expr::Func {
            name: "contains".into(),
            args: vec![col("seq"), Expr::Literal(Datum::Text("ATT".into()))],
            distinct: false,
        };
        assert_eq!(f.render(), "contains(seq, 'ATT')");
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef { name: "genes".into(), alias: Some("g".into()) };
        assert_eq!(t.binding(), "g");
        let t = TableRef { name: "genes".into(), alias: None };
        assert_eq!(t.binding(), "genes");
    }
}
