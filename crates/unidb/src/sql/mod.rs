//! The SQL front-end: lexer, abstract syntax tree, and parser.
//!
//! The supported dialect covers what the paper needs the Unifying Database
//! to express (§6.3): `SELECT` with joins, `WHERE`, `GROUP BY`, `HAVING`,
//! `ORDER BY`, `LIMIT`, `DISTINCT`; `INSERT`/`UPDATE`/`DELETE`; DDL for
//! tables, secondary indexes, and user spaces; transactions; `EXPLAIN` —
//! and crucially, *user-defined operators callable wherever expressions
//! occur*, which is how the Genomics Algebra enters the language.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, FromClause, Join, JoinKind, Projection, SelectStmt, Stmt, TableRef};
pub use parser::parse;
