//! Recursive-descent SQL parser.
//!
//! # Operator precedence
//!
//! Expressions are parsed with one function per precedence level; the table
//! below lists them from loosest-binding to tightest-binding. Each level is
//! left-associative except where noted.
//!
//! | level | operators                                        | notes |
//! |-------|--------------------------------------------------|-------|
//! | 1     | `OR`                                             | left-assoc |
//! | 2     | `AND`                                            | left-assoc |
//! | 3     | `NOT`                                            | prefix; applies to the whole comparison below it, so `NOT a = 1` is `NOT (a = 1)` |
//! | 4     | `=` `<>` `!=` `<` `<=` `>` `>=`, `IS [NOT] NULL`, `[NOT] IN`, `[NOT] BETWEEN … AND …`, `[NOT] LIKE … [ESCAPE 'c']` | **non-associative**: `a = b = c` is a parse error, and a `BETWEEN`/`LIKE`/`IN` form cannot be chained with another comparison without parentheses |
//! | 5     | `+` `-` (binary)                                 | left-assoc; `BETWEEN` bounds parse at this level, so `a BETWEEN 1 AND 2 AND b` keeps the trailing `AND b` at level 2 |
//! | 6     | `*` `/` `%`                                      | left-assoc |
//! | 7     | `-` (unary)                                      | prefix; binds tighter than any binary operator: `-a * b` is `(-a) * b`, `-1 + 2` is `(-1) + 2` |
//! | 8     | literals, columns, `f(args)`, `( expr )`         | |

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::sql::ast::*;
use crate::sql::lexer::{lex, Token};

/// Words that terminate expressions/aliases and may not be identifiers.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "OFFSET", "AS", "JOIN",
    "INNER", "LEFT", "OUTER", "CROSS", "ON", "AND", "OR", "NOT", "SET", "VALUES", "ASC", "DESC",
    "IS", "IN", "BETWEEN", "LIKE", "ESCAPE", "DISTINCT", "INSERT", "INTO", "UPDATE", "DELETE",
    "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE", "SPACE", "NULL", "TRUE", "FALSE", "BEGIN",
    "COMMIT", "ROLLBACK", "EXPLAIN",
];

/// Parse a single SQL statement.
pub fn parse(sql: &str) -> DbResult<Stmt> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_stmt()?;
    p.eat_semicolons();
    if !p.at_end() {
        return Err(DbError::Parse(format!("unexpected trailing token {}", p.peek_display())));
    }
    Ok(stmt)
}

/// Parse a semicolon-separated script.
pub fn parse_many(sql: &str) -> DbResult<Vec<Stmt>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        p.eat_semicolons();
        if p.at_end() {
            return Ok(stmts);
        }
        stmts.push(p.parse_stmt()?);
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_display(&self) -> String {
        self.peek().map_or("end of input".into(), |t| format!("{t}"))
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected {kw}, found {}", self.peek_display())))
        }
    }

    fn eat_tok(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, tok: &Token) -> DbResult<()> {
        if self.eat_tok(tok) {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected {tok}, found {}", self.peek_display())))
        }
    }

    fn eat_semicolons(&mut self) {
        while self.eat_tok(&Token::Semicolon) {}
    }

    /// A non-reserved identifier.
    fn ident(&mut self) -> DbResult<String> {
        match self.peek() {
            Some(Token::Word(w)) if !RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(DbError::Parse(format!("expected identifier, found {}", self.peek_display()))),
        }
    }

    /// A possibly qualified table name (`t` or `space.t`).
    fn table_name(&mut self) -> DbResult<String> {
        let mut name = self.ident()?;
        if self.eat_tok(&Token::Dot) {
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    fn parse_stmt(&mut self) -> DbResult<Stmt> {
        if self.eat_kw("EXPLAIN") {
            // ANALYZE is contextual (valid only right after EXPLAIN), not
            // reserved — `analyze` stays usable as an identifier.
            let analyze = self.eat_kw("ANALYZE");
            return Ok(Stmt::Explain { stmt: Box::new(self.parse_stmt()?), analyze });
        }
        if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
            return Ok(Stmt::Select(self.parse_select()?));
        }
        if self.eat_kw("INSERT") {
            return self.parse_insert();
        }
        if self.eat_kw("UPDATE") {
            return self.parse_update();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.table_name()?;
            let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
            return Ok(Stmt::Delete { table, filter });
        }
        if self.eat_kw("CREATE") {
            return self.parse_create();
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            return Ok(Stmt::DropTable { table: self.table_name()? });
        }
        if self.eat_kw("BEGIN") {
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Stmt::Rollback);
        }
        Err(DbError::Parse(format!("unexpected {}", self.peek_display())))
    }

    fn parse_create(&mut self) -> DbResult<Stmt> {
        if self.eat_kw("TABLE") {
            let table = self.table_name()?;
            self.expect_tok(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let name = self.ident()?;
                let ty = match self.advance() {
                    Some(Token::Word(w)) => w,
                    other => {
                        return Err(DbError::Parse(format!(
                            "expected a type name, found {}",
                            other.map_or("end of input".into(), |t| format!("{t}"))
                        )))
                    }
                };
                let mut nullable = true;
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    nullable = false;
                } else {
                    let _ = self.eat_kw("NULL");
                }
                columns.push((name, ty, nullable));
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(&Token::RParen)?;
            return Ok(Stmt::CreateTable { table, columns });
        }
        if self.eat_kw("SPACE") {
            return Ok(Stmt::CreateSpace { name: self.ident()? });
        }
        let unique = self.eat_kw("UNIQUE");
        self.expect_kw("INDEX")?;
        self.expect_kw("ON")?;
        let table = self.table_name()?;
        self.expect_tok(&Token::LParen)?;
        let column = self.ident()?;
        self.expect_tok(&Token::RParen)?;
        Ok(Stmt::CreateIndex { table, column, unique })
    }

    fn parse_insert(&mut self) -> DbResult<Stmt> {
        self.expect_kw("INTO")?;
        let table = self.table_name()?;
        let columns = if self.eat_tok(&Token::LParen) {
            let mut cols = vec![self.ident()?];
            while self.eat_tok(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_tok(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_tok(&Token::LParen)?;
            let mut row = vec![self.parse_expr()?];
            while self.eat_tok(&Token::Comma) {
                row.push(self.parse_expr()?);
            }
            self.expect_tok(&Token::RParen)?;
            rows.push(row);
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert { table, columns, rows })
    }

    fn parse_update(&mut self) -> DbResult<Stmt> {
        let table = self.table_name()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_tok(&Token::Eq)?;
            assignments.push((col, self.parse_expr()?));
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Stmt::Update { table, assignments, filter })
    }

    fn parse_select(&mut self) -> DbResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projections = vec![self.parse_projection()?];
        while self.eat_tok(&Token::Comma) {
            projections.push(self.parse_projection()?);
        }
        let from = if self.eat_kw("FROM") { Some(self.parse_from()?) } else { None };
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat_tok(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    let _ = self.eat_kw("ASC");
                    true
                };
                order_by.push((expr, asc));
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") { Some(self.nonneg_int("LIMIT")?) } else { None };
        let offset = if self.eat_kw("OFFSET") { Some(self.nonneg_int("OFFSET")?) } else { None };
        Ok(SelectStmt {
            distinct,
            projections,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn nonneg_int(&mut self, clause: &str) -> DbResult<u64> {
        match self.advance() {
            Some(Token::Int(n)) if n >= 0 => Ok(n as u64),
            other => Err(DbError::Parse(format!(
                "{clause} expects a non-negative integer, found {}",
                other.map_or("end of input".into(), |t| format!("{t}"))
            ))),
        }
    }

    fn parse_projection(&mut self) -> DbResult<Projection> {
        if self.eat_tok(&Token::Star) {
            return Ok(Projection::Star);
        }
        let expr = self.parse_expr()?;
        let aliasable = self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Word(w)) if !RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r)));
        let alias = if aliasable { Some(self.ident()?) } else { None };
        Ok(Projection::Expr { expr, alias })
    }

    fn parse_from(&mut self) -> DbResult<FromClause> {
        let base = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.eat_tok(&Token::Comma) {
                joins.push(Join {
                    kind: JoinKind::Cross,
                    table: self.parse_table_ref()?,
                    on: None,
                });
            } else if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                joins.push(Join {
                    kind: JoinKind::Cross,
                    table: self.parse_table_ref()?,
                    on: None,
                });
            } else if self
                .peek()
                .is_some_and(|t| t.is_kw("JOIN") || t.is_kw("INNER") || t.is_kw("LEFT"))
            {
                let kind = if self.eat_kw("LEFT") {
                    let _ = self.eat_kw("OUTER");
                    JoinKind::Left
                } else {
                    let _ = self.eat_kw("INNER");
                    JoinKind::Inner
                };
                self.expect_kw("JOIN")?;
                let table = self.parse_table_ref()?;
                self.expect_kw("ON")?;
                let on = Some(self.parse_expr()?);
                joins.push(Join { kind, table, on });
            } else {
                break;
            }
        }
        Ok(FromClause { base, joins })
    }

    fn parse_table_ref(&mut self) -> DbResult<TableRef> {
        let name = self.table_name()?;
        let aliasable = self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Word(w)) if !RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r)));
        let alias = if aliasable { Some(self.ident()?) } else { None };
        Ok(TableRef { name, alias })
    }

    // -- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> DbResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> DbResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> DbResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> DbResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> DbResult<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_tok(&Token::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_tok(&Token::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_tok(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            let escape = if self.eat_kw("ESCAPE") {
                match self.advance() {
                    Some(Token::Str(s)) if s.chars().count() == 1 => s.chars().next(),
                    other => {
                        return Err(DbError::Parse(format!(
                            "ESCAPE expects a single-character string, found {}",
                            other.map_or("end of input".into(), |t| format!("{t}"))
                        )))
                    }
                }
            } else {
                None
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
                escape,
            });
        }
        if negated {
            return Err(DbError::Parse("NOT must be followed by IN, BETWEEN, or LIKE here".into()));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> DbResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> DbResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> DbResult<Expr> {
        if self.eat_tok(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> DbResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Datum::Int(i)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Datum::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Datum::Text(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_tok(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) => {
                if w.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Datum::Null));
                }
                if w.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Datum::Bool(true)));
                }
                if w.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Datum::Bool(false)));
                }
                if RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r)) {
                    return Err(DbError::Parse(format!("unexpected keyword {w}")));
                }
                self.pos += 1;
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        if self.eat_tok(&Token::Star) {
                            args.push(Expr::Wildcard);
                        } else {
                            args.push(self.parse_expr()?);
                            while self.eat_tok(&Token::Comma) {
                                args.push(self.parse_expr()?);
                            }
                        }
                    }
                    self.expect_tok(&Token::RParen)?;
                    return Ok(Expr::Func { name: w.to_ascii_lowercase(), args, distinct });
                }
                // Qualified column?
                if self.eat_tok(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column { table: Some(w), name: col });
                }
                Ok(Expr::Column { table: None, name: w })
            }
            other => Err(DbError::Parse(format!(
                "expected an expression, found {}",
                other.map_or("end of input".into(), |t| format!("{t}"))
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_flagship_query() {
        // §6.3's example, verbatim modulo the string literal.
        let stmt =
            parse("SELECT id FROM DNAFragments WHERE contains(fragment, 'ATTGCCATA')").unwrap();
        let Stmt::Select(s) = stmt else { panic!("not a select") };
        assert_eq!(s.projections.len(), 1);
        assert_eq!(s.from.unwrap().base.name, "DNAFragments");
        let Some(Expr::Func { name, args, .. }) = s.filter else { panic!("no func filter") };
        assert_eq!(name, "contains");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn full_select_clauses() {
        let stmt = parse(
            "SELECT DISTINCT g.id, count(*) AS n FROM genes g \
             INNER JOIN proteins p ON g.id = p.gene_id \
             WHERE g.len > 100 AND p.name LIKE 'kin%' \
             GROUP BY g.id HAVING count(*) >= 2 \
             ORDER BY n DESC, g.id LIMIT 10",
        )
        .unwrap();
        let Stmt::Select(s) = stmt else { panic!() };
        assert!(s.distinct);
        assert_eq!(s.projections.len(), 2);
        let from = s.from.unwrap();
        assert_eq!(from.joins.len(), 1);
        assert_eq!(from.joins[0].kind, JoinKind::Inner);
        assert!(s.filter.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].1, "DESC");
        assert!(s.order_by[1].1, "implicit ASC");
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn joins_variants() {
        let s = parse("SELECT * FROM a, b CROSS JOIN c LEFT JOIN d ON a.x = d.x").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let from = sel.from.unwrap();
        assert_eq!(from.joins.len(), 3);
        assert_eq!(from.joins[0].kind, JoinKind::Cross);
        assert_eq!(from.joins[1].kind, JoinKind::Cross);
        assert_eq!(from.joins[2].kind, JoinKind::Left);
    }

    #[test]
    fn insert_forms() {
        let s = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        let Stmt::Insert { columns, rows, .. } = s else { panic!() };
        assert!(columns.is_none());
        assert_eq!(rows.len(), 2);
        let s = parse("INSERT INTO t (id, name) VALUES (1, upper('x'))").unwrap();
        let Stmt::Insert { columns, .. } = s else { panic!() };
        assert_eq!(columns.unwrap(), vec!["id", "name"]);
    }

    #[test]
    fn update_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        let Stmt::Update { assignments, filter, .. } = s else { panic!() };
        assert_eq!(assignments.len(), 2);
        assert!(filter.is_some());
        let s = parse("DELETE FROM t").unwrap();
        assert!(matches!(s, Stmt::Delete { filter: None, .. }));
    }

    #[test]
    fn ddl() {
        let s =
            parse("CREATE TABLE public.genes (id INT NOT NULL, seq dna, note TEXT NULL)").unwrap();
        let Stmt::CreateTable { table, columns } = s else { panic!() };
        assert_eq!(table, "public.genes");
        assert_eq!(columns.len(), 3);
        assert!(!columns[0].2);
        assert!(columns[1].2);
        assert_eq!(columns[1].1, "dna");

        assert!(matches!(parse("DROP TABLE t").unwrap(), Stmt::DropTable { .. }));
        let s = parse("CREATE UNIQUE INDEX ON t (id)").unwrap();
        assert!(matches!(s, Stmt::CreateIndex { unique: true, .. }));
        assert!(matches!(parse("CREATE SPACE lab").unwrap(), Stmt::CreateSpace { .. }));
    }

    #[test]
    fn transactions_and_explain() {
        assert_eq!(parse("BEGIN").unwrap(), Stmt::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Stmt::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Stmt::Rollback);
        let s = parse("EXPLAIN SELECT 1").unwrap();
        assert!(matches!(s, Stmt::Explain { analyze: false, .. }));
        let s = parse("EXPLAIN ANALYZE SELECT 1").unwrap();
        assert!(matches!(s, Stmt::Explain { analyze: true, .. }));
        // ANALYZE is contextual, not reserved: still fine as a column name.
        assert!(parse("SELECT analyze FROM t").is_ok());
    }

    #[test]
    fn expression_precedence() {
        let s = parse("SELECT 1 + 2 * 3").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let Projection::Expr { expr, .. } = &sel.projections[0] else { panic!() };
        // 1 + (2 * 3)
        assert_eq!(expr.render(), "(1 + (2 * 3))");

        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        // OR is the outermost operator.
        assert_eq!(sel.filter.unwrap().render(), "((a = 1) OR ((b = 2) AND (c = 3)))");
    }

    #[test]
    fn special_predicates() {
        let s = parse("SELECT * FROM t WHERE a IS NOT NULL AND b IN (1,2) AND c NOT BETWEEN 1 AND 5 AND d NOT LIKE 'x%'").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let factors = sel.filter.unwrap().conjuncts();
        assert_eq!(factors.len(), 4);
        assert!(matches!(factors[0], Expr::IsNull { negated: true, .. }));
        assert!(matches!(factors[1], Expr::InList { negated: false, .. }));
        assert!(matches!(factors[2], Expr::Between { negated: true, .. }));
        assert!(matches!(factors[3], Expr::Like { negated: true, .. }));
    }

    #[test]
    fn count_star_and_distinct_agg() {
        let s = parse("SELECT count(*), sum(DISTINCT x) FROM t").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let Projection::Expr { expr: Expr::Func { name, args, .. }, .. } = &sel.projections[0]
        else {
            panic!()
        };
        assert_eq!(name, "count");
        assert_eq!(args, &[Expr::Wildcard]);
        let Projection::Expr { expr: Expr::Func { distinct, .. }, .. } = &sel.projections[1] else {
            panic!()
        };
        assert!(*distinct);
    }

    #[test]
    fn select_without_from() {
        let s = parse("SELECT 1 + 1 AS two").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert!(sel.from.is_none());
        let Projection::Expr { alias, .. } = &sel.projections[0] else { panic!() };
        assert_eq!(alias.as_deref(), Some("two"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELEKT 1").is_err());
        assert!(parse("SELECT 1 extra garbage ,").is_err());
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("SELECT * FROM t LIMIT 'x'").is_err());
        assert!(parse("SELECT * FROM t WHERE a NOT = 1").is_err());
    }

    #[test]
    fn parse_many_script() {
        let stmts = parse_many("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn negative_numbers_and_unary() {
        let s = parse("SELECT -3, -(1 + 2)").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.projections.len(), 2);
    }

    /// Golden parses pinning the precedence table in the module doc: each
    /// input must render to exactly the parenthesization documented there.
    #[test]
    fn golden_precedence_renders() {
        let golden: &[(&str, &str)] = &[
            // NOT applies to the whole comparison, not just the left operand.
            ("NOT a = 1", "NOT (a = 1)"),
            ("NOT a LIKE 'x%'", "NOT a LIKE 'x%'"),
            ("NOT a = 1 OR b = 2", "(NOT (a = 1) OR (b = 2))"),
            ("NOT NOT a", "NOT NOT a"),
            // Unary minus binds tighter than every binary operator, on
            // literals and columns alike.
            ("-a * b", "((-a) * b)"),
            ("-1 + 2", "((-1) + 2)"),
            ("2 - -3", "(2 - (-3))"),
            ("-a.b + c", "((-a.b) + c)"),
            // BETWEEN bounds parse at the additive level, so a trailing AND
            // belongs to the conjunction, and arithmetic stays inside.
            ("a BETWEEN 1 + 1 AND 2 * 3 AND b", "(a BETWEEN (1 + 1) AND (2 * 3) AND b)"),
            ("a NOT BETWEEN -1 AND c - 1", "a NOT BETWEEN (-1) AND (c - 1)"),
            // AND binds tighter than OR.
            ("a OR b AND c", "(a OR (b AND c))"),
            // Comparison chains with arithmetic on both sides.
            ("a + 1 < b * 2", "((a + 1) < (b * 2))"),
            // != is an alias for <>.
            ("a != 1", "(a <> 1)"),
            // LIKE with an escape clause round-trips through render().
            ("a LIKE '100\\%' ESCAPE '\\'", "a LIKE '100\\%' ESCAPE '\\'"),
        ];
        for (input, want) in golden {
            let s = parse(&format!("SELECT * FROM t WHERE {input}")).unwrap();
            let Stmt::Select(sel) = s else { panic!() };
            assert_eq!(&sel.filter.unwrap().render(), want, "input: {input}");
        }
    }

    /// Comparisons are non-associative: chaining them without parentheses
    /// is a parse error rather than a silent left-fold.
    #[test]
    fn comparison_non_associative() {
        assert!(parse("SELECT * FROM t WHERE a = b = c").is_err());
        assert!(parse("SELECT * FROM t WHERE a < b < c").is_err());
        assert!(parse("SELECT * FROM t WHERE a BETWEEN 1 AND 2 BETWEEN 3 AND 4").is_err());
        // ...but explicit parentheses make the intent parseable.
        assert!(parse("SELECT * FROM t WHERE (a = b) = c").is_ok());
    }

    #[test]
    fn limit_offset() {
        let s = parse("SELECT * FROM t ORDER BY a LIMIT 10 OFFSET 5").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.limit, Some(10));
        assert_eq!(sel.offset, Some(5));
        let s = parse("SELECT * FROM t LIMIT 3").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.offset, None);
        assert!(parse("SELECT * FROM t OFFSET 2").unwrap() != Stmt::Begin); // OFFSET without LIMIT parses
        assert!(parse("SELECT * FROM t LIMIT 10 OFFSET 'x'").is_err());
        assert!(parse("SELECT * FROM t LIMIT 10 OFFSET -1").is_err());
    }

    #[test]
    fn like_escape_clause() {
        let s = parse("SELECT * FROM t WHERE a LIKE 'x#%%' ESCAPE '#'").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let Some(Expr::Like { escape, negated, .. }) = sel.filter else { panic!() };
        assert_eq!(escape, Some('#'));
        assert!(!negated);
        // ESCAPE requires a single-character string literal.
        assert!(parse("SELECT * FROM t WHERE a LIKE 'x' ESCAPE 'ab'").is_err());
        assert!(parse("SELECT * FROM t WHERE a LIKE 'x' ESCAPE ''").is_err());
        assert!(parse("SELECT * FROM t WHERE a LIKE 'x' ESCAPE 5").is_err());
    }
}
