//! The planner: SELECT → physical plan.

use crate::catalog::Catalog;
use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::expr::eval::ColumnBinding;
use crate::expr::func::FunctionRegistry;
use crate::plan::{AggCall, PhysicalPlan};
use crate::sql::ast::{BinOp, Expr, JoinKind, Projection, SelectStmt};
use std::collections::HashSet;
use std::ops::Bound;

/// What the planner needs to know about the database. Implemented by the
/// engine; a test double drives the planner tests.
pub trait PlannerContext {
    fn catalog(&self) -> &Catalog;
    fn funcs(&self) -> &FunctionRegistry;
    /// `(column, distinct_keys)` for every B-tree-indexed column.
    fn btree_columns(&self, table_id: u32) -> Vec<(String, usize)>;
    /// Live row count of a table.
    fn row_count(&self, table_id: u32) -> u64;
    /// Selectivity if a UDI on `(table, column)` can answer `func(args)`.
    fn udi_selectivity(
        &self,
        table_id: u32,
        column: &str,
        func: &str,
        args: &[Datum],
    ) -> Option<f64>;
}

#[derive(Debug, Clone)]
struct TableInfo {
    table_id: u32,
    qualified: String,
    binding: String,
    columns: Vec<ColumnBinding>,
    /// Right side of a LEFT JOIN: WHERE pushdown is not allowed.
    null_padded: bool,
}

/// Plan a SELECT statement. Returns the plan and output column names.
pub fn plan_select(
    ctx: &dyn PlannerContext,
    default_space: &str,
    s: &SelectStmt,
) -> DbResult<(PhysicalPlan, Vec<String>)> {
    // ---- resolve FROM ------------------------------------------------------
    let mut tables: Vec<TableInfo> = Vec::new();
    if let Some(from) = &s.from {
        tables.push(resolve_table(
            ctx,
            default_space,
            &from.base.name,
            from.base.binding(),
            false,
        )?);
        for j in &from.joins {
            tables.push(resolve_table(
                ctx,
                default_space,
                &j.table.name,
                j.table.binding(),
                j.kind == JoinKind::Left,
            )?);
        }
        let mut seen = HashSet::new();
        for t in &tables {
            if !seen.insert(t.binding.clone()) {
                return Err(DbError::Parse(format!("duplicate table binding {:?}", t.binding)));
            }
        }
    }

    // ---- split WHERE and push down -----------------------------------------
    let conjuncts: Vec<Expr> = s.filter.clone().map_or_else(Vec::new, Expr::conjuncts);
    let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); tables.len()];
    let mut post_join: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let target = attribute(&c, &tables).filter(|&i| !tables[i].null_padded);
        match target {
            Some(i) => pushed[i].push(c),
            None => post_join.push(c),
        }
    }

    // ---- scans and joins ----------------------------------------------------
    let mut plan = if tables.is_empty() {
        PhysicalPlan::Nothing
    } else {
        build_scan(ctx, &tables[0], std::mem::take(&mut pushed[0]))
    };
    if let Some(from) = &s.from {
        for (idx, j) in from.joins.iter().enumerate() {
            let t = &tables[idx + 1];
            let right = build_scan(ctx, t, std::mem::take(&mut pushed[idx + 1]));
            plan = plan_join(plan, right, j.kind, j.on.clone(), &tables[..idx + 2])?;
        }
    }
    if let Some(filter) = Expr::conjoin(post_join) {
        plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: filter };
    }

    // ---- aggregation ----------------------------------------------------------
    let mut calls: Vec<AggCall> = Vec::new();
    for p in &s.projections {
        if let Projection::Expr { expr, .. } = p {
            collect_aggs(expr, ctx.funcs(), &mut calls);
        }
    }
    if let Some(h) = &s.having {
        collect_aggs(h, ctx.funcs(), &mut calls);
    }
    for (e, _) in &s.order_by {
        collect_aggs(e, ctx.funcs(), &mut calls);
    }
    let has_agg = !calls.is_empty() || !s.group_by.is_empty();
    if has_agg {
        if s.projections.iter().any(|p| matches!(p, Projection::Star)) {
            return Err(DbError::Unsupported("SELECT * with GROUP BY or aggregates".into()));
        }
        plan = PhysicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: s.group_by.clone(),
            calls: calls.clone(),
        };
        if let Some(h) = &s.having {
            let rewritten = rewrite_post_agg(h.clone(), &s.group_by, &calls, ctx.funcs())?;
            plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: rewritten };
        }
    } else if s.having.is_some() {
        return Err(DbError::Parse("HAVING without GROUP BY or aggregates".into()));
    }

    // ---- projection list -------------------------------------------------------
    let input_bindings = plan.bindings();
    let mut out_exprs: Vec<Expr> = Vec::new();
    let mut out_names: Vec<String> = Vec::new();
    for p in &s.projections {
        match p {
            Projection::Star => {
                for b in &input_bindings {
                    out_exprs.push(Expr::Column {
                        table: Some(b.table.clone()),
                        name: b.column.clone(),
                    });
                    out_names.push(b.column.clone());
                }
            }
            Projection::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr));
                let e = if has_agg {
                    rewrite_post_agg(expr.clone(), &s.group_by, &calls, ctx.funcs())?
                } else {
                    expr.clone()
                };
                out_exprs.push(e);
                out_names.push(name);
            }
        }
    }

    // ---- order by -----------------------------------------------------------------
    if !s.order_by.is_empty() {
        let mut keys = Vec::with_capacity(s.order_by.len());
        for (key, asc) in &s.order_by {
            // Alias reference?
            let resolved = if let Expr::Column { table: None, name } = key {
                out_names
                    .iter()
                    .position(|n| n.eq_ignore_ascii_case(name))
                    .map(|i| out_exprs[i].clone())
            } else {
                None
            };
            let e = match resolved {
                Some(e) => e,
                None if has_agg => rewrite_post_agg(key.clone(), &s.group_by, &calls, ctx.funcs())?,
                None => key.clone(),
            };
            keys.push((e, *asc));
        }
        plan = PhysicalPlan::Sort { input: Box::new(plan), keys };
    }

    plan =
        PhysicalPlan::Project { input: Box::new(plan), exprs: out_exprs, names: out_names.clone() };
    if s.distinct {
        plan = PhysicalPlan::Distinct { input: Box::new(plan) };
    }
    if s.limit.is_some() || s.offset.is_some() {
        plan = PhysicalPlan::Limit {
            input: Box::new(plan),
            n: s.limit,
            offset: s.offset.unwrap_or(0),
        };
    }
    Ok((fuse_top_n(plan), out_names))
}

/// Rewrite `Limit(Project(Sort(x)))` into `Project(TopN(x))`: a bounded
/// heap replaces the full sort, and the projection runs only over the
/// surviving `offset + n` rows.
///
/// Fusing is only legal when every projection expression is infallible
/// (column loads, literals, IS NULL): projecting fewer rows must not be
/// able to suppress an evaluation error the unfused pipeline would have
/// raised — the qdiff oracle evaluates the SELECT list on every sorted
/// row and treats a one-sided error as a divergence. DISTINCT blocks the
/// fusion because it changes the cardinality between sort and limit.
fn fuse_top_n(plan: PhysicalPlan) -> PhysicalPlan {
    let PhysicalPlan::Limit { input, n: Some(n), offset } = plan else { return plan };
    match *input {
        PhysicalPlan::Project { input: sort, exprs, names }
            if matches!(*sort, PhysicalPlan::Sort { .. })
                && exprs.iter().all(crate::expr::infallible) =>
        {
            let PhysicalPlan::Sort { input: base, keys } = *sort else { unreachable!() };
            PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::TopN { input: base, keys, n, offset }),
                exprs,
                names,
            }
        }
        other => PhysicalPlan::Limit { input: Box::new(other), n: Some(n), offset },
    }
}

fn resolve_table(
    ctx: &dyn PlannerContext,
    default_space: &str,
    name: &str,
    binding: &str,
    null_padded: bool,
) -> DbResult<TableInfo> {
    let def = ctx.catalog().resolve_table(default_space, name)?;
    let binding = binding.to_ascii_lowercase();
    let columns = def.columns.iter().map(|c| ColumnBinding::new(&binding, &c.name)).collect();
    Ok(TableInfo {
        table_id: def.id,
        qualified: def.qualified_name(),
        binding,
        columns,
        null_padded,
    })
}

/// Which single table does this expression reference? `None` when it spans
/// tables, references nothing, or a column cannot be uniquely attributed.
fn attribute(expr: &Expr, tables: &[TableInfo]) -> Option<usize> {
    let mut target: Option<usize> = None;
    let mut failed = false;
    expr.visit(&mut |e| {
        if failed {
            return;
        }
        if let Expr::Column { table, name } = e {
            let idx = match table {
                Some(t) => tables.iter().position(|ti| ti.binding.eq_ignore_ascii_case(t)),
                None => {
                    let name = name.to_ascii_lowercase();
                    let hits: Vec<usize> = tables
                        .iter()
                        .enumerate()
                        .filter(|(_, ti)| ti.columns.iter().any(|c| c.column == name))
                        .map(|(i, _)| i)
                        .collect();
                    if hits.len() == 1 {
                        Some(hits[0])
                    } else {
                        None
                    }
                }
            };
            match idx {
                None => failed = true,
                Some(i) => match target {
                    None => target = Some(i),
                    Some(t) if t == i => {}
                    Some(_) => failed = true,
                },
            }
        }
    });
    if failed {
        None
    } else {
        target
    }
}

/// Choose the cheapest access path for one table given its pushed conjuncts.
fn build_scan(ctx: &dyn PlannerContext, t: &TableInfo, conjuncts: Vec<Expr>) -> PhysicalPlan {
    let btrees = ctx.btree_columns(t.table_id);
    let rows = ctx.row_count(t.table_id).max(1) as f64;

    #[derive(Debug)]
    enum Path {
        Eq { column: String, key: Datum },
        Range { column: String, lo: Bound<Datum>, hi: Bound<Datum> },
        Udi { column: String, func: String, args: Vec<Datum> },
    }
    // (conjunct index, selectivity, path, exact)
    let mut best: Option<(usize, f64, Path, bool)> = None;
    let consider = |cand: (usize, f64, Path, bool), best: &mut Option<(usize, f64, Path, bool)>| {
        if best.as_ref().is_none_or(|b| cand.1 < b.1) {
            *best = Some(cand);
        }
    };

    for (i, c) in conjuncts.iter().enumerate() {
        // col = literal / literal = col → B-tree equality.
        if let Expr::Binary { op, left, right } = c {
            let pair = match (left.as_ref(), right.as_ref()) {
                (Expr::Column { name, .. }, Expr::Literal(d)) => Some((name, d, *op, false)),
                (Expr::Literal(d), Expr::Column { name, .. }) => Some((name, d, *op, true)),
                _ => None,
            };
            if let Some((name, d, op, flipped)) = pair {
                let name = name.to_ascii_lowercase();
                // `col op NULL` is never true under three-valued logic, but
                // the index *stores* NULL keys, so an eq/range probe built
                // from a NULL literal would wrongly return those rows. Leave
                // the conjunct to the residual filter instead.
                if matches!(d, Datum::Null) {
                    continue;
                }
                if let Some((_, distinct)) = btrees.iter().find(|(c, _)| *c == name) {
                    match op {
                        BinOp::Eq => {
                            let sel = 1.0 / (*distinct).max(1) as f64;
                            consider(
                                (i, sel, Path::Eq { column: name, key: d.clone() }, true),
                                &mut best,
                            );
                        }
                        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                            // Normalize for flipped operands: `5 < col` is `col > 5`.
                            let effective = if flipped {
                                match op {
                                    BinOp::Lt => BinOp::Gt,
                                    BinOp::LtEq => BinOp::GtEq,
                                    BinOp::Gt => BinOp::Lt,
                                    BinOp::GtEq => BinOp::LtEq,
                                    other => other,
                                }
                            } else {
                                op
                            };
                            // NULL keys sort before every real value in the
                            // index, so an open low end must still exclude
                            // them: `col <= k` is never true for NULL.
                            let (lo, hi) = match effective {
                                BinOp::Lt => {
                                    (Bound::Excluded(Datum::Null), Bound::Excluded(d.clone()))
                                }
                                BinOp::LtEq => {
                                    (Bound::Excluded(Datum::Null), Bound::Included(d.clone()))
                                }
                                BinOp::Gt => (Bound::Excluded(d.clone()), Bound::Unbounded),
                                _ => (Bound::Included(d.clone()), Bound::Unbounded),
                            };
                            consider(
                                (i, 0.3, Path::Range { column: name, lo, hi }, true),
                                &mut best,
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
        // col BETWEEN lit AND lit → B-tree range.
        if let Expr::Between { expr, low, high, negated: false } = c {
            if let (Expr::Column { name, .. }, Expr::Literal(lo), Expr::Literal(hi)) =
                (expr.as_ref(), low.as_ref(), high.as_ref())
            {
                let name = name.to_ascii_lowercase();
                // Same NULL-literal trap as above: `x BETWEEN NULL AND k`
                // matches nothing, but Included(Null) would scan NULL keys.
                if matches!(lo, Datum::Null) || matches!(hi, Datum::Null) {
                    continue;
                }
                if btrees.iter().any(|(c, _)| *c == name) {
                    consider(
                        (
                            i,
                            0.25,
                            Path::Range {
                                column: name,
                                lo: Bound::Included(lo.clone()),
                                hi: Bound::Included(hi.clone()),
                            },
                            true,
                        ),
                        &mut best,
                    );
                }
            }
        }
        // func(col, literals…) → UDI probe.
        if let Expr::Func { name: func, args, distinct: false } = c {
            if let Some(Expr::Column { name: col, .. }) = args.first() {
                let rest: Option<Vec<Datum>> = args[1..]
                    .iter()
                    .map(|a| match a {
                        Expr::Literal(d) => Some(d.clone()),
                        _ => None,
                    })
                    .collect();
                if let Some(rest) = rest {
                    let col = col.to_ascii_lowercase();
                    if let Some(sel) = ctx.udi_selectivity(t.table_id, &col, func, &rest) {
                        consider(
                            (
                                i,
                                sel,
                                Path::Udi { column: col, func: func.clone(), args: rest },
                                false,
                            ),
                            &mut best,
                        );
                    }
                }
            }
        }
    }

    let _ = rows; // row count reserved for future join-order costing
    match best {
        None => PhysicalPlan::SeqScan {
            table_id: t.table_id,
            qualified: t.qualified.clone(),
            columns: t.columns.clone(),
            residual: Expr::conjoin(conjuncts),
        },
        Some((chosen, _sel, path, exact)) => {
            let mut residual_parts: Vec<Expr> = Vec::new();
            for (i, c) in conjuncts.into_iter().enumerate() {
                // Exact paths fully satisfy their conjunct; UDI paths are
                // approximate and must re-check it.
                if i != chosen || !exact {
                    residual_parts.push(c);
                }
            }
            let residual = Expr::conjoin(residual_parts);
            match path {
                Path::Eq { column, key } => PhysicalPlan::IndexEqScan {
                    table_id: t.table_id,
                    qualified: t.qualified.clone(),
                    columns: t.columns.clone(),
                    column,
                    key,
                    residual,
                },
                Path::Range { column, lo, hi } => PhysicalPlan::IndexRangeScan {
                    table_id: t.table_id,
                    qualified: t.qualified.clone(),
                    columns: t.columns.clone(),
                    column,
                    lo,
                    hi,
                    residual,
                },
                Path::Udi { column, func, args } => PhysicalPlan::UdiScan {
                    table_id: t.table_id,
                    qualified: t.qualified.clone(),
                    columns: t.columns.clone(),
                    column,
                    func,
                    args,
                    residual,
                },
            }
        }
    }
}

/// Pick a join strategy.
fn plan_join(
    left: PhysicalPlan,
    right: PhysicalPlan,
    kind: JoinKind,
    on: Option<Expr>,
    tables: &[TableInfo],
) -> DbResult<PhysicalPlan> {
    if kind == JoinKind::Inner {
        if let Some(on_expr) = &on {
            let factors = on_expr.clone().conjuncts();
            let left_tables: Vec<TableInfo> = tables[..tables.len() - 1].to_vec();
            let right_table = &tables[tables.len() - 1..];
            let mut equi: Option<(Expr, Expr)> = None;
            let mut rest: Vec<Expr> = Vec::new();
            for f in factors {
                if equi.is_none() {
                    if let Expr::Binary { op: BinOp::Eq, left: l, right: r } = &f {
                        let l_attr = attribute(l, &left_tables);
                        let r_attr = attribute(r, right_table);
                        if l_attr.is_some()
                            && r_attr.is_some()
                            && l.references_columns()
                            && r.references_columns()
                        {
                            equi = Some((l.as_ref().clone(), r.as_ref().clone()));
                            continue;
                        }
                        // Maybe flipped: right side references left tables.
                        let l_attr2 = attribute(r, &left_tables);
                        let r_attr2 = attribute(l, right_table);
                        if l_attr2.is_some()
                            && r_attr2.is_some()
                            && l.references_columns()
                            && r.references_columns()
                        {
                            equi = Some((r.as_ref().clone(), l.as_ref().clone()));
                            continue;
                        }
                    }
                }
                rest.push(f);
            }
            if let Some((lk, rk)) = equi {
                let mut plan = PhysicalPlan::HashJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    left_key: lk,
                    right_key: rk,
                };
                if let Some(f) = Expr::conjoin(rest) {
                    plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: f };
                }
                return Ok(plan);
            }
        }
    }
    Ok(PhysicalPlan::NestedLoopJoin { left: Box::new(left), right: Box::new(right), kind, on })
}

/// Collect aggregate calls, deduplicated.
fn collect_aggs(expr: &Expr, funcs: &FunctionRegistry, out: &mut Vec<AggCall>) {
    match expr {
        Expr::Func { name, args, distinct } if funcs.is_aggregate(name) => {
            let arg = match args.as_slice() {
                [Expr::Wildcard] | [] => None,
                [single] => Some(single.clone()),
                _ => Some(args[0].clone()), // multi-arg aggregates take the first
            };
            let call = AggCall { func: name.clone(), arg, distinct: *distinct };
            if !out.contains(&call) {
                out.push(call);
            }
        }
        other => {
            // Recurse.
            let mut children: Vec<&Expr> = Vec::new();
            match other {
                Expr::Unary { expr, .. } => children.push(expr),
                Expr::Binary { left, right, .. } => {
                    children.push(left);
                    children.push(right);
                }
                Expr::Func { args, .. } => children.extend(args.iter()),
                Expr::IsNull { expr, .. } => children.push(expr),
                Expr::InList { expr, list, .. } => {
                    children.push(expr);
                    children.extend(list.iter());
                }
                Expr::Between { expr, low, high, .. } => {
                    children.extend([expr.as_ref(), low.as_ref(), high.as_ref()]);
                }
                Expr::Like { expr, pattern, .. } => {
                    children.extend([expr.as_ref(), pattern.as_ref()]);
                }
                _ => {}
            }
            for c in children {
                collect_aggs(c, funcs, out);
            }
        }
    }
}

/// Rewrite a post-aggregation expression: group-by expressions become
/// `__grp_i` references, aggregate calls become `__agg_j` references, and
/// any remaining raw column reference is an error (not in GROUP BY).
fn rewrite_post_agg(
    expr: Expr,
    group_by: &[Expr],
    calls: &[AggCall],
    funcs: &FunctionRegistry,
) -> DbResult<Expr> {
    if let Some(i) = group_by.iter().position(|g| *g == expr) {
        return Ok(Expr::Column { table: None, name: format!("__grp_{i}") });
    }
    if let Expr::Func { name, args, distinct } = &expr {
        if funcs.is_aggregate(name) {
            let arg = match args.as_slice() {
                [Expr::Wildcard] | [] => None,
                [single] => Some(single.clone()),
                _ => Some(args[0].clone()),
            };
            let call = AggCall { func: name.clone(), arg, distinct: *distinct };
            let j = calls
                .iter()
                .position(|c| *c == call)
                .ok_or_else(|| DbError::Internal("uncollected aggregate call".into()))?;
            return Ok(Expr::Column { table: None, name: format!("__agg_{j}") });
        }
    }
    // Recurse and then verify no raw column survives.
    let rewritten = match expr {
        Expr::Column { table, name } => {
            return Err(DbError::Parse(format!(
                "column {}{name} must appear in GROUP BY or inside an aggregate",
                table.map_or(String::new(), |t| format!("{t}."))
            )))
        }
        Expr::Unary { op, expr } => {
            Expr::Unary { op, expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?) }
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(rewrite_post_agg(*left, group_by, calls, funcs)?),
            right: Box::new(rewrite_post_agg(*right, group_by, calls, funcs)?),
        },
        Expr::Func { name, args, distinct } => Expr::Func {
            name,
            args: args
                .into_iter()
                .map(|a| rewrite_post_agg(a, group_by, calls, funcs))
                .collect::<DbResult<_>>()?,
            distinct,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?),
            negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?),
            list: list
                .into_iter()
                .map(|e| rewrite_post_agg(e, group_by, calls, funcs))
                .collect::<DbResult<_>>()?,
            negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?),
            low: Box::new(rewrite_post_agg(*low, group_by, calls, funcs)?),
            high: Box::new(rewrite_post_agg(*high, group_by, calls, funcs)?),
            negated,
        },
        Expr::Like { expr, pattern, negated, escape } => Expr::Like {
            expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?),
            pattern: Box::new(rewrite_post_agg(*pattern, group_by, calls, funcs)?),
            negated,
            escape,
        },
        leaf @ (Expr::Literal(_) | Expr::Wildcard) => leaf,
    };
    Ok(rewritten)
}

fn default_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.to_ascii_lowercase(),
        Expr::Func { name, .. } => name.clone(),
        other => other.render(),
    }
}
