//! The planner: SELECT → physical plan.

use crate::catalog::{Catalog, EquiDepthHistogram};
use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::expr::eval::ColumnBinding;
use crate::expr::func::FunctionRegistry;
use crate::plan::{AggCall, PhysicalPlan};
use crate::sql::ast::{BinOp, Expr, JoinKind, Projection, SelectStmt};
use std::collections::HashSet;
use std::ops::Bound;

/// What the planner needs to know about the database. Implemented by the
/// engine; a test double drives the planner tests.
pub trait PlannerContext {
    fn catalog(&self) -> &Catalog;
    fn funcs(&self) -> &FunctionRegistry;
    /// `(column, distinct_keys)` for every B-tree-indexed column.
    fn btree_columns(&self, table_id: u32) -> Vec<(String, usize)>;
    /// Live row count of a table.
    fn row_count(&self, table_id: u32) -> u64;
    /// Estimated count of distinct non-NULL values in a named column, when
    /// the catalog has statistics for it. `None` (the default) makes the
    /// planner fall back to the row count.
    fn column_ndv(&self, _table_id: u32, _column: &str) -> Option<u64> {
        None
    }
    /// Equi-depth histogram over a named column's non-NULL values, when
    /// the catalog has sampled statistics for it. `None` (the default)
    /// makes the planner fall back to fixed per-conjunct selectivities.
    fn column_histogram(&self, _table_id: u32, _column: &str) -> Option<EquiDepthHistogram> {
        None
    }
    /// Fraction of a column's observed values that are NULL.
    fn column_null_frac(&self, _table_id: u32, _column: &str) -> Option<f64> {
        None
    }
    /// Selectivity if a UDI on `(table, column)` can answer `func(args)`.
    fn udi_selectivity(
        &self,
        table_id: u32,
        column: &str,
        func: &str,
        args: &[Datum],
    ) -> Option<f64>;
}

#[derive(Debug, Clone)]
struct TableInfo {
    table_id: u32,
    qualified: String,
    binding: String,
    columns: Vec<ColumnBinding>,
    /// Right side of a LEFT JOIN: WHERE pushdown is not allowed.
    null_padded: bool,
}

/// Plan a SELECT statement. Returns the plan and output column names.
pub fn plan_select(
    ctx: &dyn PlannerContext,
    default_space: &str,
    s: &SelectStmt,
) -> DbResult<(PhysicalPlan, Vec<String>)> {
    // ---- resolve FROM ------------------------------------------------------
    let mut tables: Vec<TableInfo> = Vec::new();
    if let Some(from) = &s.from {
        tables.push(resolve_table(
            ctx,
            default_space,
            &from.base.name,
            from.base.binding(),
            false,
        )?);
        for j in &from.joins {
            tables.push(resolve_table(
                ctx,
                default_space,
                &j.table.name,
                j.table.binding(),
                j.kind == JoinKind::Left,
            )?);
        }
        let mut seen = HashSet::new();
        for t in &tables {
            if !seen.insert(t.binding.clone()) {
                return Err(DbError::Parse(format!("duplicate table binding {:?}", t.binding)));
            }
        }
    }

    // ---- split WHERE and push down -----------------------------------------
    let conjuncts: Vec<Expr> = s.filter.clone().map_or_else(Vec::new, Expr::conjuncts);
    let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); tables.len()];
    let mut post_join: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let target = attribute(&c, &tables).filter(|&i| !tables[i].null_padded);
        match target {
            Some(i) => pushed[i].push(c),
            None => post_join.push(c),
        }
    }

    // ---- scans and joins ----------------------------------------------------
    let mut plan = match &s.from {
        None => PhysicalPlan::Nothing,
        Some(from) => plan_from(ctx, from, &tables, &mut pushed)?,
    };
    if let Some(filter) = Expr::conjoin(post_join) {
        plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: filter };
    }

    // ---- aggregation ----------------------------------------------------------
    let mut calls: Vec<AggCall> = Vec::new();
    for p in &s.projections {
        if let Projection::Expr { expr, .. } = p {
            collect_aggs(expr, ctx.funcs(), &mut calls);
        }
    }
    if let Some(h) = &s.having {
        collect_aggs(h, ctx.funcs(), &mut calls);
    }
    for (e, _) in &s.order_by {
        collect_aggs(e, ctx.funcs(), &mut calls);
    }
    let has_agg = !calls.is_empty() || !s.group_by.is_empty();
    if has_agg {
        if s.projections.iter().any(|p| matches!(p, Projection::Star)) {
            return Err(DbError::Unsupported("SELECT * with GROUP BY or aggregates".into()));
        }
        plan = PhysicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: s.group_by.clone(),
            calls: calls.clone(),
        };
        if let Some(h) = &s.having {
            let rewritten = rewrite_post_agg(h.clone(), &s.group_by, &calls, ctx.funcs())?;
            plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: rewritten };
        }
    } else if s.having.is_some() {
        return Err(DbError::Parse("HAVING without GROUP BY or aggregates".into()));
    }

    // ---- projection list -------------------------------------------------------
    let mut out_exprs: Vec<Expr> = Vec::new();
    let mut out_names: Vec<String> = Vec::new();
    for p in &s.projections {
        match p {
            Projection::Star => {
                // Expand from the FROM-order table list, not the plan's
                // bindings: join reordering may permute the plan's column
                // order, but `SELECT *` output order is fixed by FROM.
                for b in tables.iter().flat_map(|t| &t.columns) {
                    out_exprs.push(Expr::Column {
                        table: Some(b.table.clone()),
                        name: b.column.clone(),
                    });
                    out_names.push(b.column.clone());
                }
            }
            Projection::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr));
                let e = if has_agg {
                    rewrite_post_agg(expr.clone(), &s.group_by, &calls, ctx.funcs())?
                } else {
                    expr.clone()
                };
                out_exprs.push(e);
                out_names.push(name);
            }
        }
    }

    // ---- order by -----------------------------------------------------------------
    if !s.order_by.is_empty() {
        let mut keys = Vec::with_capacity(s.order_by.len());
        for (key, asc) in &s.order_by {
            // Alias reference?
            let resolved = if let Expr::Column { table: None, name } = key {
                out_names
                    .iter()
                    .position(|n| n.eq_ignore_ascii_case(name))
                    .map(|i| out_exprs[i].clone())
            } else {
                None
            };
            let e = match resolved {
                Some(e) => e,
                None if has_agg => rewrite_post_agg(key.clone(), &s.group_by, &calls, ctx.funcs())?,
                None => key.clone(),
            };
            keys.push((e, *asc));
        }
        plan = PhysicalPlan::Sort { input: Box::new(plan), keys };
    }

    plan =
        PhysicalPlan::Project { input: Box::new(plan), exprs: out_exprs, names: out_names.clone() };
    if s.distinct {
        plan = PhysicalPlan::Distinct { input: Box::new(plan) };
    }
    if s.limit.is_some() || s.offset.is_some() {
        plan = PhysicalPlan::Limit {
            input: Box::new(plan),
            n: s.limit,
            offset: s.offset.unwrap_or(0),
        };
    }
    Ok((fuse_top_n(plan), out_names))
}

/// Rewrite `Limit(Project(Sort(x)))` into `Project(TopN(x))`: a bounded
/// heap replaces the full sort, and the projection runs only over the
/// surviving `offset + n` rows.
///
/// Fusing is only legal when every projection expression is infallible
/// (column loads, literals, IS NULL): projecting fewer rows must not be
/// able to suppress an evaluation error the unfused pipeline would have
/// raised — the qdiff oracle evaluates the SELECT list on every sorted
/// row and treats a one-sided error as a divergence. DISTINCT blocks the
/// fusion because it changes the cardinality between sort and limit.
fn fuse_top_n(plan: PhysicalPlan) -> PhysicalPlan {
    let PhysicalPlan::Limit { input, n: Some(n), offset } = plan else { return plan };
    match *input {
        PhysicalPlan::Project { input: sort, exprs, names }
            if matches!(*sort, PhysicalPlan::Sort { .. })
                && exprs.iter().all(crate::expr::infallible) =>
        {
            let PhysicalPlan::Sort { input: base, keys } = *sort else { unreachable!() };
            PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::TopN { input: base, keys, n, offset }),
                exprs,
                names,
            }
        }
        other => PhysicalPlan::Limit { input: Box::new(other), n: Some(n), offset },
    }
}

fn resolve_table(
    ctx: &dyn PlannerContext,
    default_space: &str,
    name: &str,
    binding: &str,
    null_padded: bool,
) -> DbResult<TableInfo> {
    let def = ctx.catalog().resolve_table(default_space, name)?;
    let binding = binding.to_ascii_lowercase();
    let columns = def.columns.iter().map(|c| ColumnBinding::new(&binding, &c.name)).collect();
    Ok(TableInfo {
        table_id: def.id,
        qualified: def.qualified_name(),
        binding,
        columns,
        null_padded,
    })
}

/// Which single table does this expression reference? `None` when it spans
/// tables, references nothing, or a column cannot be uniquely attributed.
fn attribute(expr: &Expr, tables: &[TableInfo]) -> Option<usize> {
    let mut target: Option<usize> = None;
    let mut failed = false;
    expr.visit(&mut |e| {
        if failed {
            return;
        }
        if let Expr::Column { table, name } = e {
            let idx = match table {
                Some(t) => tables.iter().position(|ti| ti.binding.eq_ignore_ascii_case(t)),
                None => {
                    let name = name.to_ascii_lowercase();
                    let hits: Vec<usize> = tables
                        .iter()
                        .enumerate()
                        .filter(|(_, ti)| ti.columns.iter().any(|c| c.column == name))
                        .map(|(i, _)| i)
                        .collect();
                    if hits.len() == 1 {
                        Some(hits[0])
                    } else {
                        None
                    }
                }
            };
            match idx {
                None => failed = true,
                Some(i) => match target {
                    None => target = Some(i),
                    Some(t) if t == i => {}
                    Some(_) => failed = true,
                },
            }
        }
    });
    if failed {
        None
    } else {
        target
    }
}

/// A histogram-backed access path expected to touch at least this
/// fraction of the table loses to the fused sequential scan, which
/// streams pages in order and prunes them by zone map. Fixed fallback
/// selectivities (no histogram) never trigger the cutoff, so plans
/// without statistics are unchanged.
const INDEX_WORTHWHILE: f64 = 0.4;

/// Mirror a comparison for flipped operands: `5 < col` is `col > 5`.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// Histogram-backed selectivity of one conjunct, when it is a simple
/// comparison, BETWEEN, or IS [NOT] NULL over a bare column with catalog
/// statistics. `None` otherwise — callers fall back to the pre-stats
/// fixed damping factors.
fn histogram_selectivity(ctx: &dyn PlannerContext, table_id: u32, c: &Expr) -> Option<f64> {
    match c {
        Expr::Binary { op, left, right } => {
            let (name, d, op) = match (left.as_ref(), right.as_ref()) {
                (Expr::Column { name, .. }, Expr::Literal(d)) => (name, d, *op),
                (Expr::Literal(d), Expr::Column { name, .. }) => (name, d, flip_cmp(*op)),
                _ => return None,
            };
            if matches!(d, Datum::Null) {
                // `col op NULL` is never true under three-valued logic.
                return Some(0.0);
            }
            let name = name.to_ascii_lowercase();
            let h = ctx.column_histogram(table_id, &name)?;
            let non_null = 1.0 - ctx.column_null_frac(table_id, &name).unwrap_or(0.0);
            let sel = match op {
                BinOp::Eq => h.eq_selectivity(d),
                BinOp::NotEq => 1.0 - h.eq_selectivity(d),
                BinOp::Lt => h.range_selectivity(None, Some((d, false))),
                BinOp::LtEq => h.range_selectivity(None, Some((d, true))),
                BinOp::Gt => h.range_selectivity(Some((d, false)), None),
                BinOp::GtEq => h.range_selectivity(Some((d, true)), None),
                _ => return None,
            };
            Some((sel * non_null).clamp(0.0, 1.0))
        }
        Expr::Between { expr, low, high, negated: false } => {
            let (Expr::Column { name, .. }, Expr::Literal(lo), Expr::Literal(hi)) =
                (expr.as_ref(), low.as_ref(), high.as_ref())
            else {
                return None;
            };
            if matches!(lo, Datum::Null) || matches!(hi, Datum::Null) {
                return Some(0.0);
            }
            let name = name.to_ascii_lowercase();
            let h = ctx.column_histogram(table_id, &name)?;
            let non_null = 1.0 - ctx.column_null_frac(table_id, &name).unwrap_or(0.0);
            let sel = h.range_selectivity(Some((lo, true)), Some((hi, true)));
            Some((sel * non_null).clamp(0.0, 1.0))
        }
        Expr::IsNull { expr, negated } => {
            let Expr::Column { name, .. } = expr.as_ref() else { return None };
            let name = name.to_ascii_lowercase();
            let f = ctx.column_null_frac(table_id, &name)?;
            Some(if *negated { (1.0 - f).clamp(0.0, 1.0) } else { f })
        }
        _ => None,
    }
}

/// Estimated selectivity of one conjunct: histogram-backed when the
/// catalog can help, else the legacy fixed 0.25 damping.
fn conjunct_selectivity(ctx: &dyn PlannerContext, table_id: u32, c: &Expr) -> f64 {
    histogram_selectivity(ctx, table_id, c).unwrap_or(0.25)
}

/// Can this conjunct never raise an evaluation error? AST-level mirror
/// of `CompiledExpr::error_free`: comparisons over error-free operands
/// compare by total order and never fail, while arithmetic, functions,
/// LIKE, and boolean connectives (whose operands may be non-boolean at
/// runtime) all answer `false`.
fn never_errors(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Column { .. } => true,
        Expr::IsNull { expr, .. } => never_errors(expr),
        Expr::Binary { op, left, right } => {
            matches!(
                op,
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
            ) && never_errors(left)
                && never_errors(right)
        }
        Expr::Between { expr, low, high, .. } => {
            never_errors(expr) && never_errors(low) && never_errors(high)
        }
        Expr::InList { expr, list, .. } => never_errors(expr) && list.iter().all(never_errors),
        _ => false,
    }
}

/// Order residual conjuncts most-selective-first so the fused filter
/// rejects rows as early as possible. Reordering changes which conjunct
/// evaluates first, so it only applies when *every* conjunct is
/// error-free — otherwise a cheap-but-false conjunct hoisted to the
/// front could short-circuit past an error the original order raised.
/// The sort is stable: equal selectivities keep the user's order.
fn order_residual(ctx: &dyn PlannerContext, table_id: u32, parts: Vec<Expr>) -> Vec<Expr> {
    if parts.len() < 2 || !parts.iter().all(never_errors) {
        return parts;
    }
    let mut keyed: Vec<(f64, Expr)> =
        parts.into_iter().map(|c| (conjunct_selectivity(ctx, table_id, &c), c)).collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    keyed.into_iter().map(|(_, c)| c).collect()
}

/// Choose the cheapest access path for one table given its pushed conjuncts.
fn build_scan(ctx: &dyn PlannerContext, t: &TableInfo, conjuncts: Vec<Expr>) -> PhysicalPlan {
    let btrees = ctx.btree_columns(t.table_id);
    let rows = ctx.row_count(t.table_id).max(1) as f64;

    #[derive(Debug)]
    enum Path {
        Eq { column: String, key: Datum },
        Range { column: String, lo: Bound<Datum>, hi: Bound<Datum> },
        Udi { column: String, func: String, args: Vec<Datum> },
    }
    // (conjunct index, selectivity, path, exact)
    let mut best: Option<(usize, f64, Path, bool)> = None;
    let consider = |cand: (usize, f64, Path, bool), best: &mut Option<(usize, f64, Path, bool)>| {
        if best.as_ref().is_none_or(|b| cand.1 < b.1) {
            *best = Some(cand);
        }
    };

    for (i, c) in conjuncts.iter().enumerate() {
        // col = literal / literal = col → B-tree equality.
        if let Expr::Binary { op, left, right } = c {
            let pair = match (left.as_ref(), right.as_ref()) {
                (Expr::Column { name, .. }, Expr::Literal(d)) => Some((name, d, *op, false)),
                (Expr::Literal(d), Expr::Column { name, .. }) => Some((name, d, *op, true)),
                _ => None,
            };
            if let Some((name, d, op, flipped)) = pair {
                let name = name.to_ascii_lowercase();
                // `col op NULL` is never true under three-valued logic, but
                // the index *stores* NULL keys, so an eq/range probe built
                // from a NULL literal would wrongly return those rows. Leave
                // the conjunct to the residual filter instead.
                if matches!(d, Datum::Null) {
                    continue;
                }
                if let Some((_, distinct)) = btrees.iter().find(|(c, _)| *c == name) {
                    let hist = histogram_selectivity(ctx, t.table_id, c);
                    match op {
                        BinOp::Eq => {
                            let sel = hist.unwrap_or(1.0 / (*distinct).max(1) as f64);
                            if hist.is_none() || sel < INDEX_WORTHWHILE {
                                consider(
                                    (i, sel, Path::Eq { column: name, key: d.clone() }, true),
                                    &mut best,
                                );
                            }
                        }
                        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                            // Normalize for flipped operands: `5 < col` is `col > 5`.
                            let effective = if flipped { flip_cmp(op) } else { op };
                            // NULL keys sort before every real value in the
                            // index, so an open low end must still exclude
                            // them: `col <= k` is never true for NULL.
                            let (lo, hi) = match effective {
                                BinOp::Lt => {
                                    (Bound::Excluded(Datum::Null), Bound::Excluded(d.clone()))
                                }
                                BinOp::LtEq => {
                                    (Bound::Excluded(Datum::Null), Bound::Included(d.clone()))
                                }
                                BinOp::Gt => (Bound::Excluded(d.clone()), Bound::Unbounded),
                                _ => (Bound::Included(d.clone()), Bound::Unbounded),
                            };
                            let sel = hist.unwrap_or(0.3);
                            if hist.is_none() || sel < INDEX_WORTHWHILE {
                                consider(
                                    (i, sel, Path::Range { column: name, lo, hi }, true),
                                    &mut best,
                                );
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        // col BETWEEN lit AND lit → B-tree range.
        if let Expr::Between { expr, low, high, negated: false } = c {
            if let (Expr::Column { name, .. }, Expr::Literal(lo), Expr::Literal(hi)) =
                (expr.as_ref(), low.as_ref(), high.as_ref())
            {
                let name = name.to_ascii_lowercase();
                // Same NULL-literal trap as above: `x BETWEEN NULL AND k`
                // matches nothing, but Included(Null) would scan NULL keys.
                if matches!(lo, Datum::Null) || matches!(hi, Datum::Null) {
                    continue;
                }
                if btrees.iter().any(|(c, _)| *c == name) {
                    let hist = histogram_selectivity(ctx, t.table_id, c);
                    let sel = hist.unwrap_or(0.25);
                    if hist.is_none() || sel < INDEX_WORTHWHILE {
                        consider(
                            (
                                i,
                                sel,
                                Path::Range {
                                    column: name,
                                    lo: Bound::Included(lo.clone()),
                                    hi: Bound::Included(hi.clone()),
                                },
                                true,
                            ),
                            &mut best,
                        );
                    }
                }
            }
        }
        // func(col, literals…) → UDI probe.
        if let Expr::Func { name: func, args, distinct: false } = c {
            if let Some(Expr::Column { name: col, .. }) = args.first() {
                let rest: Option<Vec<Datum>> = args[1..]
                    .iter()
                    .map(|a| match a {
                        Expr::Literal(d) => Some(d.clone()),
                        _ => None,
                    })
                    .collect();
                if let Some(rest) = rest {
                    let col = col.to_ascii_lowercase();
                    if let Some(sel) = ctx.udi_selectivity(t.table_id, &col, func, &rest) {
                        consider(
                            (
                                i,
                                sel,
                                Path::Udi { column: col, func: func.clone(), args: rest },
                                false,
                            ),
                            &mut best,
                        );
                    }
                }
            }
        }
    }

    let _ = rows; // row count reserved for future join-order costing
    match best {
        None => PhysicalPlan::SeqScan {
            table_id: t.table_id,
            qualified: t.qualified.clone(),
            columns: t.columns.clone(),
            residual: Expr::conjoin(order_residual(ctx, t.table_id, conjuncts)),
        },
        Some((chosen, _sel, path, exact)) => {
            let mut residual_parts: Vec<Expr> = Vec::new();
            for (i, c) in conjuncts.into_iter().enumerate() {
                // Exact paths fully satisfy their conjunct; UDI paths are
                // approximate and must re-check it.
                if i != chosen || !exact {
                    residual_parts.push(c);
                }
            }
            let residual = Expr::conjoin(order_residual(ctx, t.table_id, residual_parts));
            match path {
                Path::Eq { column, key } => PhysicalPlan::IndexEqScan {
                    table_id: t.table_id,
                    qualified: t.qualified.clone(),
                    columns: t.columns.clone(),
                    column,
                    key,
                    residual,
                },
                Path::Range { column, lo, hi } => PhysicalPlan::IndexRangeScan {
                    table_id: t.table_id,
                    qualified: t.qualified.clone(),
                    columns: t.columns.clone(),
                    column,
                    lo,
                    hi,
                    residual,
                },
                Path::Udi { column, func, args } => PhysicalPlan::UdiScan {
                    table_id: t.table_id,
                    qualified: t.qualified.clone(),
                    columns: t.columns.clone(),
                    column,
                    func,
                    args,
                    residual,
                },
            }
        }
    }
}

/// Plan the FROM clause: scans plus the join tree.
///
/// All-INNER equi-join chains of three or more tables go through the
/// greedy cheapest-first reordering; everything else (single joins, LEFT
/// or CROSS anywhere in the chain) folds in FROM order, with per-join
/// stats still choosing the hash-table build side.
fn plan_from(
    ctx: &dyn PlannerContext,
    from: &crate::sql::ast::FromClause,
    tables: &[TableInfo],
    pushed: &mut [Vec<Expr>],
) -> DbResult<PhysicalPlan> {
    if from.joins.len() >= 2
        && from.joins.iter().all(|j| j.kind == JoinKind::Inner && j.on.is_some())
    {
        if let Some(plan) = reorder_inner_joins(ctx, from, tables, pushed) {
            return Ok(plan);
        }
    }
    let mut est = scan_estimate(ctx, &tables[0], &pushed[0]);
    let mut plan = build_scan(ctx, &tables[0], std::mem::take(&mut pushed[0]));
    for (idx, j) in from.joins.iter().enumerate() {
        let t = &tables[idx + 1];
        let right_est = scan_estimate(ctx, t, &pushed[idx + 1]);
        let right = build_scan(ctx, t, std::mem::take(&mut pushed[idx + 1]));
        (plan, est) =
            plan_join(ctx, plan, right, j.kind, j.on.clone(), &tables[..idx + 2], est, right_est)?;
    }
    Ok(plan)
}

/// Estimated output rows of one table's scan: the live row count damped
/// per pushed-down conjunct — histogram selectivity where the catalog
/// has a sample for the column, a fixed 0.25 otherwise. Coarse on
/// purpose — the planner only compares relative magnitudes.
fn scan_estimate(ctx: &dyn PlannerContext, t: &TableInfo, conjuncts: &[Expr]) -> f64 {
    let sel: f64 = conjuncts.iter().map(|c| conjunct_selectivity(ctx, t.table_id, c)).product();
    ctx.row_count(t.table_id).max(1) as f64 * sel
}

/// NDV of a join key when it is a bare column attributable to one table
/// of `tables` — the hook that feeds catalog statistics into join-size
/// estimates. Non-column keys (expressions) get no estimate.
fn key_ndv(ctx: &dyn PlannerContext, key: &Expr, tables: &[TableInfo]) -> Option<u64> {
    let Expr::Column { table, name } = key else { return None };
    let ti = match table {
        Some(b) => tables.iter().find(|t| t.binding.eq_ignore_ascii_case(b))?,
        None => {
            let lower = name.to_ascii_lowercase();
            let mut hits = tables.iter().filter(|t| t.columns.iter().any(|c| c.column == lower));
            let first = hits.next()?;
            if hits.next().is_some() {
                return None;
            }
            first
        }
    };
    ctx.column_ndv(ti.table_id, name)
}

/// Estimated output rows of an equi-join: `|L| * |R| / max(ndv(keys))`,
/// falling back to the larger side's cardinality as the divisor (the
/// key/foreign-key assumption) when no sketch exists.
fn equi_join_estimate(left_est: f64, right_est: f64, dl: Option<u64>, dr: Option<u64>) -> f64 {
    let d = dl.unwrap_or(0).max(dr.unwrap_or(0)) as f64;
    let d = if d > 0.0 { d } else { left_est.max(right_est) };
    (left_est * right_est / d.max(1.0)).max(1.0)
}

/// Split an ON expression into one hash-key pair (left side attributable
/// to `left_tables`, right side to `right_table`, flipped operands
/// normalized) plus the leftover conjuncts.
fn split_equi(
    on_expr: &Expr,
    left_tables: &[TableInfo],
    right_table: &[TableInfo],
) -> (Option<(Expr, Expr)>, Vec<Expr>) {
    let mut equi: Option<(Expr, Expr)> = None;
    let mut rest: Vec<Expr> = Vec::new();
    for f in on_expr.clone().conjuncts() {
        if equi.is_none() {
            if let Expr::Binary { op: BinOp::Eq, left: l, right: r } = &f {
                if l.references_columns() && r.references_columns() {
                    if attribute(l, left_tables).is_some() && attribute(r, right_table).is_some() {
                        equi = Some((l.as_ref().clone(), r.as_ref().clone()));
                        continue;
                    }
                    // Maybe flipped: right operand references left tables.
                    if attribute(r, left_tables).is_some() && attribute(l, right_table).is_some() {
                        equi = Some((r.as_ref().clone(), l.as_ref().clone()));
                        continue;
                    }
                }
            }
        }
        rest.push(f);
    }
    (equi, rest)
}

/// Pick a join strategy for one FROM-order step; returns the plan and
/// its estimated output rows.
#[allow(clippy::too_many_arguments)]
fn plan_join(
    ctx: &dyn PlannerContext,
    left: PhysicalPlan,
    right: PhysicalPlan,
    kind: JoinKind,
    on: Option<Expr>,
    tables: &[TableInfo],
    left_est: f64,
    right_est: f64,
) -> DbResult<(PhysicalPlan, f64)> {
    if matches!(kind, JoinKind::Inner | JoinKind::Left) {
        if let Some(on_expr) = &on {
            let left_tables = &tables[..tables.len() - 1];
            let right_table = &tables[tables.len() - 1..];
            let (equi, rest) = split_equi(on_expr, left_tables, right_table);
            // A LEFT join can only hash when the single equi conjunct IS
            // the whole ON clause: leftover conjuncts influence which
            // rows get null-padded and cannot become a filter above.
            let hashable = equi.is_some() && (kind == JoinKind::Inner || rest.is_empty());
            if hashable {
                let (lk, rk) = equi.expect("checked above");
                let inner_est = equi_join_estimate(
                    left_est,
                    right_est,
                    key_ndv(ctx, &lk, left_tables),
                    key_ndv(ctx, &rk, right_table),
                );
                // Build on the smaller estimated side; ties keep the
                // right side (the pre-stats default). LEFT joins always
                // build right so probe misses can null-pad.
                let build_left = kind == JoinKind::Inner && left_est < right_est;
                let out_est =
                    if kind == JoinKind::Left { inner_est.max(left_est) } else { inner_est };
                let mut plan = PhysicalPlan::HashJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    left_key: lk,
                    right_key: rk,
                    build_left,
                    kind,
                };
                if let Some(f) = Expr::conjoin(rest) {
                    plan = PhysicalPlan::Filter { input: Box::new(plan), predicate: f };
                }
                return Ok((plan, out_est));
            }
        }
    }
    let out_est = match kind {
        JoinKind::Left => (left_est * right_est * 0.1).max(left_est),
        _ => left_est * right_est,
    };
    let plan =
        PhysicalPlan::NestedLoopJoin { left: Box::new(left), right: Box::new(right), kind, on };
    Ok((plan, out_est))
}

/// Greedy cheapest-first ordering for an all-INNER equi-join chain.
///
/// Inner-join ON conjuncts are semantically WHERE conjuncts, so they pool
/// freely: start from the smallest estimated table, then repeatedly join
/// the connectable table minimizing the estimated intermediate size. Any
/// pooled conjunct not consumed as a hash key becomes a filter at the
/// earliest point all its tables are in scope. Returns `None` — caller
/// falls back to FROM order — when a step has no connecting equi
/// conjunct, or when an ON clause references tables that FROM order has
/// not yet introduced (kept an error, as in the unordered path).
fn reorder_inner_joins(
    ctx: &dyn PlannerContext,
    from: &crate::sql::ast::FromClause,
    tables: &[TableInfo],
    pushed: &mut [Vec<Expr>],
) -> Option<PhysicalPlan> {
    // Pool every ON conjunct, validating FROM-order scoping first.
    let mut pool: Vec<Expr> = Vec::new();
    for (idx, j) in from.joins.iter().enumerate() {
        let on = j.on.as_ref()?;
        for c in on.clone().conjuncts() {
            let targets = column_targets(&c, tables)?;
            if targets.iter().any(|&t| t > idx + 1) {
                return None; // references a table FROM hasn't introduced yet
            }
            pool.push(c);
        }
    }

    let ests: Vec<f64> =
        tables.iter().enumerate().map(|(i, t)| scan_estimate(ctx, t, &pushed[i])).collect();
    let start = (0..tables.len())
        .min_by(|&a, &b| ests[a].total_cmp(&ests[b]).then(a.cmp(&b)))
        .expect("at least three tables");

    let mut included = vec![start];
    let mut order: Vec<(usize, usize, bool)> = Vec::new(); // (table, key conjunct, flipped)
    let mut consumed = vec![false; pool.len()];
    let mut cur_est = ests[start];
    let mut step_ests = Vec::new();
    while included.len() < tables.len() {
        let in_set: Vec<TableInfo> = included.iter().map(|&i| tables[i].clone()).collect();
        // Candidates: excluded tables reachable through a pooled equi
        // conjunct whose sides split cleanly across the frontier.
        let mut best: Option<(f64, usize, usize, bool)> = None;
        for (t, info) in tables.iter().enumerate() {
            if included.contains(&t) {
                continue;
            }
            let t_side = std::slice::from_ref(info);
            for (ci, c) in pool.iter().enumerate() {
                if consumed[ci] {
                    continue;
                }
                let Expr::Binary { op: BinOp::Eq, left: l, right: r } = c else { continue };
                if !l.references_columns() || !r.references_columns() {
                    continue;
                }
                let (key_in, key_new, flipped) =
                    if attribute(l, &in_set).is_some() && attribute(r, t_side).is_some() {
                        (l.as_ref(), r.as_ref(), false)
                    } else if attribute(r, &in_set).is_some() && attribute(l, t_side).is_some() {
                        (r.as_ref(), l.as_ref(), true)
                    } else {
                        continue;
                    };
                let est = equi_join_estimate(
                    cur_est,
                    ests[t],
                    key_ndv(ctx, key_in, &in_set),
                    key_ndv(ctx, key_new, t_side),
                );
                // Strict < keeps ties resolved by (table, conjunct) order,
                // which is deterministic across runs.
                if best.as_ref().is_none_or(|b| est < b.0) {
                    best = Some((est, t, ci, flipped));
                }
            }
        }
        let (est, t, ci, flipped) = best?;
        consumed[ci] = true;
        included.push(t);
        order.push((t, ci, flipped));
        step_ests.push(est);
        cur_est = est;
    }

    // Build the tree in the chosen order.
    let mut plan = build_scan(ctx, &tables[start], std::mem::take(&mut pushed[start]));
    let mut covered = vec![start];
    let mut apply_covered = |plan: PhysicalPlan, covered: &[usize]| {
        let mut residual = Vec::new();
        for (ci, c) in pool.iter().enumerate() {
            if consumed[ci] {
                continue;
            }
            let in_scope =
                column_targets(c, tables).is_some_and(|ts| ts.iter().all(|t| covered.contains(t)));
            if in_scope {
                consumed[ci] = true;
                residual.push(c.clone());
            }
        }
        match Expr::conjoin(residual) {
            Some(f) => PhysicalPlan::Filter { input: Box::new(plan), predicate: f },
            None => plan,
        }
    };
    plan = apply_covered(plan, &covered);
    let mut build_est = ests[start];
    for (step, &(t, ci, flipped)) in order.iter().enumerate() {
        let right = build_scan(ctx, &tables[t], std::mem::take(&mut pushed[t]));
        let Expr::Binary { op: BinOp::Eq, left: l, right: r } = &pool[ci] else { unreachable!() };
        let (lk, rk) = if flipped {
            (r.as_ref().clone(), l.as_ref().clone())
        } else {
            (*l.clone(), *r.clone())
        };
        plan = PhysicalPlan::HashJoin {
            left: Box::new(plan),
            right: Box::new(right),
            left_key: lk,
            right_key: rk,
            build_left: build_est < ests[t],
            kind: JoinKind::Inner,
        };
        covered.push(t);
        plan = apply_covered(plan, &covered);
        build_est = step_ests[step];
    }
    Some(plan)
}

/// Every table index referenced by `expr`'s columns, resolved against the
/// full FROM-order table list (the same resolution the executor's
/// compiler uses). `None` when any reference is unknown or ambiguous.
fn column_targets(expr: &Expr, tables: &[TableInfo]) -> Option<Vec<usize>> {
    let mut targets = Vec::new();
    let mut failed = false;
    expr.visit(&mut |e| {
        if failed {
            return;
        }
        if let Expr::Column { table, name } = e {
            let idx = match table {
                Some(t) => tables.iter().position(|ti| ti.binding.eq_ignore_ascii_case(t)),
                None => {
                    let lower = name.to_ascii_lowercase();
                    let hits: Vec<usize> = tables
                        .iter()
                        .enumerate()
                        .filter(|(_, ti)| ti.columns.iter().any(|c| c.column == lower))
                        .map(|(i, _)| i)
                        .collect();
                    match hits.as_slice() {
                        [one] => Some(*one),
                        _ => None,
                    }
                }
            };
            match idx {
                Some(i) => {
                    if !targets.contains(&i) {
                        targets.push(i);
                    }
                }
                None => failed = true,
            }
        }
    });
    if failed {
        None
    } else {
        Some(targets)
    }
}

/// Collect aggregate calls, deduplicated.
fn collect_aggs(expr: &Expr, funcs: &FunctionRegistry, out: &mut Vec<AggCall>) {
    match expr {
        Expr::Func { name, args, distinct } if funcs.is_aggregate(name) => {
            let arg = match args.as_slice() {
                [Expr::Wildcard] | [] => None,
                [single] => Some(single.clone()),
                _ => Some(args[0].clone()), // multi-arg aggregates take the first
            };
            let call = AggCall { func: name.clone(), arg, distinct: *distinct };
            if !out.contains(&call) {
                out.push(call);
            }
        }
        other => {
            // Recurse.
            let mut children: Vec<&Expr> = Vec::new();
            match other {
                Expr::Unary { expr, .. } => children.push(expr),
                Expr::Binary { left, right, .. } => {
                    children.push(left);
                    children.push(right);
                }
                Expr::Func { args, .. } => children.extend(args.iter()),
                Expr::IsNull { expr, .. } => children.push(expr),
                Expr::InList { expr, list, .. } => {
                    children.push(expr);
                    children.extend(list.iter());
                }
                Expr::Between { expr, low, high, .. } => {
                    children.extend([expr.as_ref(), low.as_ref(), high.as_ref()]);
                }
                Expr::Like { expr, pattern, .. } => {
                    children.extend([expr.as_ref(), pattern.as_ref()]);
                }
                _ => {}
            }
            for c in children {
                collect_aggs(c, funcs, out);
            }
        }
    }
}

/// Rewrite a post-aggregation expression: group-by expressions become
/// `__grp_i` references, aggregate calls become `__agg_j` references, and
/// any remaining raw column reference is an error (not in GROUP BY).
fn rewrite_post_agg(
    expr: Expr,
    group_by: &[Expr],
    calls: &[AggCall],
    funcs: &FunctionRegistry,
) -> DbResult<Expr> {
    if let Some(i) = group_by.iter().position(|g| *g == expr) {
        return Ok(Expr::Column { table: None, name: format!("__grp_{i}") });
    }
    if let Expr::Func { name, args, distinct } = &expr {
        if funcs.is_aggregate(name) {
            let arg = match args.as_slice() {
                [Expr::Wildcard] | [] => None,
                [single] => Some(single.clone()),
                _ => Some(args[0].clone()),
            };
            let call = AggCall { func: name.clone(), arg, distinct: *distinct };
            let j = calls
                .iter()
                .position(|c| *c == call)
                .ok_or_else(|| DbError::Internal("uncollected aggregate call".into()))?;
            return Ok(Expr::Column { table: None, name: format!("__agg_{j}") });
        }
    }
    // Recurse and then verify no raw column survives.
    let rewritten = match expr {
        Expr::Column { table, name } => {
            return Err(DbError::Parse(format!(
                "column {}{name} must appear in GROUP BY or inside an aggregate",
                table.map_or(String::new(), |t| format!("{t}."))
            )))
        }
        Expr::Unary { op, expr } => {
            Expr::Unary { op, expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?) }
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(rewrite_post_agg(*left, group_by, calls, funcs)?),
            right: Box::new(rewrite_post_agg(*right, group_by, calls, funcs)?),
        },
        Expr::Func { name, args, distinct } => Expr::Func {
            name,
            args: args
                .into_iter()
                .map(|a| rewrite_post_agg(a, group_by, calls, funcs))
                .collect::<DbResult<_>>()?,
            distinct,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?),
            negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?),
            list: list
                .into_iter()
                .map(|e| rewrite_post_agg(e, group_by, calls, funcs))
                .collect::<DbResult<_>>()?,
            negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?),
            low: Box::new(rewrite_post_agg(*low, group_by, calls, funcs)?),
            high: Box::new(rewrite_post_agg(*high, group_by, calls, funcs)?),
            negated,
        },
        Expr::Like { expr, pattern, negated, escape } => Expr::Like {
            expr: Box::new(rewrite_post_agg(*expr, group_by, calls, funcs)?),
            pattern: Box::new(rewrite_post_agg(*pattern, group_by, calls, funcs)?),
            negated,
            escape,
        },
        leaf @ (Expr::Literal(_) | Expr::Wildcard) => leaf,
    };
    Ok(rewritten)
}

fn default_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.to_ascii_lowercase(),
        Expr::Func { name, .. } => name.clone(),
        other => other.render(),
    }
}

/// One side of a range probe as `(value, inclusive)` for
/// [`EquiDepthHistogram::range_selectivity`].
fn bound_ref(b: &Bound<Datum>) -> Option<(&Datum, bool)> {
    match b {
        Bound::Included(d) => Some((d, true)),
        Bound::Excluded(d) => Some((d, false)),
        Bound::Unbounded => None,
    }
}

/// Rows a scan emits: live count, damped by the access path's
/// selectivity and then by each residual conjunct.
fn scan_rows(
    ctx: &dyn PlannerContext,
    table_id: u32,
    residual: &Option<Expr>,
    path_sel: f64,
) -> f64 {
    let sel: f64 = residual.as_ref().map_or(1.0, |r| {
        r.clone().conjuncts().iter().map(|c| conjunct_selectivity(ctx, table_id, c)).product()
    });
    ctx.row_count(table_id) as f64 * path_sel * sel
}

/// Best-effort estimate of the rows a plan emits, using the same
/// per-conjunct selectivity model the planner costs scans with. Feeds
/// `EXPLAIN`-style diagnostics and qdiff's estimate-vs-observed
/// cross-check; compare against [`upper_bound_rows`] for a hard ceiling.
pub fn estimate_rows(plan: &PhysicalPlan, ctx: &dyn PlannerContext) -> f64 {
    match plan {
        PhysicalPlan::Nothing => 1.0,
        PhysicalPlan::SeqScan { table_id, residual, .. } => {
            scan_rows(ctx, *table_id, residual, 1.0)
        }
        PhysicalPlan::IndexEqScan { table_id, column, key, residual, .. } => {
            let eq = ctx
                .column_histogram(*table_id, column)
                .map(|h| h.eq_selectivity(key))
                .or_else(|| ctx.column_ndv(*table_id, column).map(|n| 1.0 / n.max(1) as f64))
                .unwrap_or(0.25);
            scan_rows(ctx, *table_id, residual, eq)
        }
        PhysicalPlan::IndexRangeScan { table_id, column, lo, hi, residual, .. } => {
            let range = ctx
                .column_histogram(*table_id, column)
                .map(|h| h.range_selectivity(bound_ref(lo), bound_ref(hi)))
                .unwrap_or(0.3);
            scan_rows(ctx, *table_id, residual, range)
        }
        PhysicalPlan::UdiScan { table_id, column, func, args, residual, .. } => {
            let sel = ctx.udi_selectivity(*table_id, column, func, args).unwrap_or(0.25);
            scan_rows(ctx, *table_id, residual, sel)
        }
        PhysicalPlan::Filter { input, predicate } => {
            // Post-join conjuncts have no single-table attribution, so
            // each gets the fixed damping factor.
            let n = predicate.clone().conjuncts().len();
            estimate_rows(input, ctx) * 0.25f64.powi(n as i32)
        }
        PhysicalPlan::NestedLoopJoin { left, right, kind, on } => {
            let l = estimate_rows(left, ctx);
            let r = estimate_rows(right, ctx);
            let inner = match on {
                Some(_) => (l * r * 0.1).max(1.0),
                None => l * r,
            };
            if *kind == JoinKind::Left {
                inner.max(l)
            } else {
                inner
            }
        }
        PhysicalPlan::HashJoin { left, right, kind, .. } => {
            // Key/foreign-key assumption: the larger side's cardinality
            // divides the cross product.
            let l = estimate_rows(left, ctx);
            let r = estimate_rows(right, ctx);
            let inner = (l * r / l.max(r).max(1.0)).max(1.0);
            if *kind == JoinKind::Left {
                inner.max(l)
            } else {
                inner
            }
        }
        PhysicalPlan::Aggregate { input, group_by, .. } => {
            if group_by.is_empty() {
                1.0
            } else {
                estimate_rows(input, ctx)
            }
        }
        PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Distinct { input } => estimate_rows(input, ctx),
        PhysicalPlan::TopN { input, n, offset, .. } => {
            (estimate_rows(input, ctx) - *offset as f64).clamp(0.0, *n as f64)
        }
        PhysicalPlan::Limit { input, n, offset } => {
            let base = (estimate_rows(input, ctx) - *offset as f64).max(0.0);
            match n {
                Some(n) => base.min(*n as f64),
                None => base,
            }
        }
    }
}

/// A hard ceiling on the rows a plan can emit when executed against the
/// same committed state it was planned from: scans are bounded by the
/// live row count, joins by the product of their inputs (null-padding
/// floors a LEFT join at its left side), limits by `n`. Unlike
/// [`estimate_rows`] this never under-counts, which makes
/// `observed <= upper_bound_rows` a checkable invariant.
pub fn upper_bound_rows(plan: &PhysicalPlan, ctx: &dyn PlannerContext) -> f64 {
    match plan {
        PhysicalPlan::Nothing => 1.0,
        PhysicalPlan::SeqScan { table_id, .. }
        | PhysicalPlan::IndexEqScan { table_id, .. }
        | PhysicalPlan::IndexRangeScan { table_id, .. }
        | PhysicalPlan::UdiScan { table_id, .. } => ctx.row_count(*table_id) as f64,
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Distinct { input } => upper_bound_rows(input, ctx),
        PhysicalPlan::NestedLoopJoin { left, right, kind, .. }
        | PhysicalPlan::HashJoin { left, right, kind, .. } => {
            let l = upper_bound_rows(left, ctx);
            let r = upper_bound_rows(right, ctx);
            match kind {
                JoinKind::Left => (l * r).max(l),
                _ => l * r,
            }
        }
        PhysicalPlan::Aggregate { input, group_by, .. } => {
            if group_by.is_empty() {
                1.0
            } else {
                upper_bound_rows(input, ctx)
            }
        }
        PhysicalPlan::TopN { input, n, offset, .. } => {
            (upper_bound_rows(input, ctx) - *offset as f64).clamp(0.0, *n as f64)
        }
        PhysicalPlan::Limit { input, n, offset } => {
            let base = (upper_bound_rows(input, ctx) - *offset as f64).max(0.0);
            match n {
                Some(n) => base.min(*n as f64),
                None => base,
            }
        }
    }
}
