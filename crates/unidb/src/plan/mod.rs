//! Query planning and optimization.
//!
//! The planner turns a parsed `SELECT` into a tree of physical operators,
//! applying the optimizations §6.5 of the paper calls for:
//!
//! * **predicate pushdown** — WHERE conjuncts that mention a single table
//!   move into that table's scan (never into the null-padded side of a
//!   LEFT JOIN, which would change semantics);
//! * **index selection** — an equality or range conjunct on a B-tree-indexed
//!   column becomes an index scan; a *function predicate* (e.g.
//!   `contains(seq, 'ATT…')`) whose column carries a user-defined access
//!   method becomes a UDI candidate scan with the predicate re-checked as a
//!   residual (filter semantics);
//! * **selectivity estimation** — B-tree distinct-key counts and UDI
//!   selectivity hooks rank alternative access paths;
//! * **join strategy** — equi-joins become hash joins, everything else a
//!   nested loop.

pub mod planner;

use crate::datum::Datum;
use crate::expr::eval::ColumnBinding;
use crate::sql::ast::{Expr, JoinKind};
use std::ops::Bound;

/// One aggregate call collected from the query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Aggregate function name (`count`, `sum`, …).
    pub func: String,
    /// Argument expression; `None` is `count(*)`.
    pub arg: Option<Expr>,
    /// `agg(DISTINCT x)`.
    pub distinct: bool,
}

/// A physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// A single empty row (for `SELECT 1 + 1`).
    Nothing,
    /// Full table scan with an optional pushed-down residual predicate.
    SeqScan {
        table_id: u32,
        qualified: String,
        columns: Vec<ColumnBinding>,
        residual: Option<Expr>,
    },
    /// B-tree equality lookup.
    IndexEqScan {
        table_id: u32,
        qualified: String,
        columns: Vec<ColumnBinding>,
        column: String,
        key: Datum,
        residual: Option<Expr>,
    },
    /// B-tree range scan.
    IndexRangeScan {
        table_id: u32,
        qualified: String,
        columns: Vec<ColumnBinding>,
        column: String,
        lo: Bound<Datum>,
        hi: Bound<Datum>,
        residual: Option<Expr>,
    },
    /// User-defined-index candidate scan; `residual` re-checks the full
    /// predicate because UDI probes may return false positives.
    UdiScan {
        table_id: u32,
        qualified: String,
        columns: Vec<ColumnBinding>,
        column: String,
        func: String,
        args: Vec<Datum>,
        residual: Option<Expr>,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Expr,
    },
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        kind: JoinKind,
        on: Option<Expr>,
    },
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_key: Expr,
        right_key: Expr,
        /// Which input the hash table is built from. The planner puts the
        /// smaller estimated side here; the executor always emits columns
        /// in `left ++ right` order regardless of the choice.
        build_left: bool,
        /// `Inner` or `Left`. A LEFT hash join always builds on the right
        /// (padding) side so probe misses can emit null-padded rows.
        kind: JoinKind,
    },
    Aggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<Expr>,
        calls: Vec<AggCall>,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<Expr>,
        names: Vec<String>,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<(Expr, bool)>,
    },
    /// Fused Sort + Limit: a bounded heap keeps only the top
    /// `offset + n` rows in sort order, then rows `offset..offset + n`
    /// are emitted. Never sorts (or even retains) the full input.
    TopN {
        input: Box<PhysicalPlan>,
        keys: Vec<(Expr, bool)>,
        n: u64,
        offset: u64,
    },
    Distinct {
        input: Box<PhysicalPlan>,
    },
    Limit {
        input: Box<PhysicalPlan>,
        /// Maximum rows to emit; `None` means no cap (OFFSET without LIMIT).
        n: Option<u64>,
        /// Rows to skip before the cap applies.
        offset: u64,
    },
}

impl PhysicalPlan {
    /// The output schema of this operator.
    pub fn bindings(&self) -> Vec<ColumnBinding> {
        match self {
            PhysicalPlan::Nothing => Vec::new(),
            PhysicalPlan::SeqScan { columns, .. }
            | PhysicalPlan::IndexEqScan { columns, .. }
            | PhysicalPlan::IndexRangeScan { columns, .. }
            | PhysicalPlan::UdiScan { columns, .. } => columns.clone(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::TopN { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. } => input.bindings(),
            PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                let mut b = left.bindings();
                b.extend(right.bindings());
                b
            }
            PhysicalPlan::HashJoin { left, right, .. } => {
                let mut b = left.bindings();
                b.extend(right.bindings());
                b
            }
            PhysicalPlan::Aggregate { group_by, calls, .. } => {
                let mut b: Vec<ColumnBinding> = (0..group_by.len())
                    .map(|i| ColumnBinding::new("", &format!("__grp_{i}")))
                    .collect();
                b.extend((0..calls.len()).map(|i| ColumnBinding::new("", &format!("__agg_{i}"))));
                b
            }
            PhysicalPlan::Project { names, .. } => {
                names.iter().map(|n| ColumnBinding::new("", n)).collect()
            }
        }
    }

    /// Ids of every base table this plan reads, deduplicated, in first-seen
    /// order. Caches key result invalidation on these tables' versions.
    pub fn table_ids(&self) -> Vec<u32> {
        let mut ids = Vec::new();
        self.collect_table_ids(&mut ids);
        ids
    }

    fn collect_table_ids(&self, ids: &mut Vec<u32>) {
        match self {
            PhysicalPlan::Nothing => {}
            PhysicalPlan::SeqScan { table_id, .. }
            | PhysicalPlan::IndexEqScan { table_id, .. }
            | PhysicalPlan::IndexRangeScan { table_id, .. }
            | PhysicalPlan::UdiScan { table_id, .. } => {
                if !ids.contains(table_id) {
                    ids.push(*table_id);
                }
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::TopN { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. } => input.collect_table_ids(ids),
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. } => {
                left.collect_table_ids(ids);
                right.collect_table_ids(ids);
            }
        }
    }

    /// Direct child operators, in executor order (left before right).
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::Nothing
            | PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::IndexEqScan { .. }
            | PhysicalPlan::IndexRangeScan { .. }
            | PhysicalPlan::UdiScan { .. } => Vec::new(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::TopN { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. } => vec![input],
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. } => vec![left, right],
        }
    }

    /// One-line label for this operator (no children, no indentation) —
    /// the shared vocabulary of `EXPLAIN` and `EXPLAIN ANALYZE`.
    pub fn node_label(&self) -> String {
        self.label_impl(false)
    }

    /// Like [`PhysicalPlan::node_label`], but literal values (index keys,
    /// filter constants, LIMIT/OFFSET counts) are elided as `?` — the
    /// literal-insensitive label the plan-change audit records, so replans
    /// that differ only in bound constants are not flagged as flips.
    pub fn node_shape_label(&self) -> String {
        self.label_impl(true)
    }

    fn label_impl(&self, shape: bool) -> String {
        let r = |e: &Expr| if shape { e.render_shape() } else { e.render() };
        match self {
            PhysicalPlan::Nothing => "Nothing".to_string(),
            PhysicalPlan::SeqScan { qualified, residual, .. } => {
                let mut s = format!("SeqScan {qualified}");
                if let Some(res) = residual {
                    s.push_str(&format!(" filter={}", r(res)));
                }
                s
            }
            PhysicalPlan::IndexEqScan { qualified, column, key, residual, .. } => {
                let mut s = if shape {
                    format!("IndexEqScan {qualified}.{column} = ?")
                } else {
                    format!("IndexEqScan {qualified}.{column} = {key}")
                };
                if let Some(res) = residual {
                    s.push_str(&format!(" filter={}", r(res)));
                }
                s
            }
            PhysicalPlan::IndexRangeScan { qualified, column, residual, .. } => {
                let mut s = format!("IndexRangeScan {qualified}.{column}");
                if let Some(res) = residual {
                    s.push_str(&format!(" filter={}", r(res)));
                }
                s
            }
            PhysicalPlan::UdiScan { qualified, column, func, residual, .. } => {
                let mut s = format!("UdiScan {qualified}.{column} via {func}()");
                if let Some(res) = residual {
                    s.push_str(&format!(" recheck={}", r(res)));
                }
                s
            }
            PhysicalPlan::Filter { predicate, .. } => format!("Filter {}", r(predicate)),
            PhysicalPlan::NestedLoopJoin { kind, on, .. } => {
                let mut s = format!("NestedLoopJoin {kind:?}");
                if let Some(on) = on {
                    s.push_str(&format!(" on={}", r(on)));
                }
                s
            }
            PhysicalPlan::HashJoin { left_key, right_key, build_left, kind, .. } => {
                let side = if *build_left { "left" } else { "right" };
                let kind_tag = match kind {
                    JoinKind::Left => "Left ",
                    _ => "",
                };
                format!("HashJoin {kind_tag}{} = {} build={side}", r(left_key), r(right_key))
            }
            PhysicalPlan::Aggregate { group_by, calls, .. } => {
                let groups: Vec<String> = group_by.iter().map(&r).collect();
                let aggs: Vec<String> = calls
                    .iter()
                    .map(|c| {
                        let arg = c.arg.as_ref().map_or("*".to_string(), &r);
                        format!("{}({})", c.func, arg)
                    })
                    .collect();
                format!("Aggregate groups=[{}] aggs=[{}]", groups.join(", "), aggs.join(", "))
            }
            PhysicalPlan::Project { names, .. } => format!("Project [{}]", names.join(", ")),
            PhysicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, asc)| format!("{}{}", r(e), if *asc { "" } else { " DESC" }))
                    .collect();
                format!("Sort [{}]", ks.join(", "))
            }
            PhysicalPlan::TopN { keys, n, offset, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, asc)| format!("{}{}", r(e), if *asc { "" } else { " DESC" }))
                    .collect();
                let mut s = if shape {
                    format!("TopN [{}] limit ?", ks.join(", "))
                } else {
                    format!("TopN [{}] limit {n}", ks.join(", "))
                };
                if *offset > 0 {
                    if shape {
                        s.push_str(" offset ?");
                    } else {
                        s.push_str(&format!(" offset {offset}"));
                    }
                }
                s
            }
            PhysicalPlan::Distinct { .. } => "Distinct".to_string(),
            PhysicalPlan::Limit { n, offset, .. } => {
                let mut s = match n {
                    Some(n) if !shape => format!("Limit {n}"),
                    Some(_) => "Limit ?".to_string(),
                    None => "Limit all".to_string(),
                };
                if *offset > 0 {
                    if shape {
                        s.push_str(" offset ?");
                    } else {
                        s.push_str(&format!(" offset {offset}"));
                    }
                }
                s
            }
        }
    }

    /// Render the plan tree for `EXPLAIN`.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, false);
        out
    }

    /// Render the literal-elided plan tree — [`PhysicalPlan::explain`]
    /// with every [`PhysicalPlan::node_shape_label`] in place of the full
    /// label. Two plans with the same shape are, for the plan-change
    /// audit, the *same plan*.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, true);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize, shape: bool) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.label_impl(shape));
        out.push('\n');
        for child in self.children() {
            child.explain_into(out, depth + 1, shape);
        }
    }
}
