//! Property-style crash-recovery harness: randomized workloads against a
//! model table, swept across fault seeds and crash points.
//!
//! The property checked is **prefix consistency**: after a crash (or a run
//! of transient IO faults) and a fresh `Database::open` + `recover()` on
//! the surviving disk image, the recovered table must equal the model
//! state after some prefix of the workload — at least every operation
//! that returned `Ok` (autocommit syncs, so `Ok` means durable), with
//! explicit transactions applied atomically and uncommitted work
//! invisible. Secondary indexes must come back consistent with the heap.
//!
//! Every fault decision derives from a seed, so a failing (seed, crash
//! point) pair from the CI fault matrix reproduces exactly. The sweep is
//! sharded via `FAULT_SEED_START` / `FAULT_SEED_COUNT`; failing seeds are
//! appended to `target/fault-matrix/failing-seeds.txt` for artifact
//! upload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use unidb::catalog::Role;
use unidb::{Database, DbError, FaultConfig, FaultVfs};

const DB_DIR: &str = "/crashdb";
const OPS_PER_WORKLOAD: usize = 40;

/// The model: id → val, mirroring `public.t (id INT, val TEXT)`.
type Model = BTreeMap<i64, String>;

/// One generated workload step.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        id: i64,
        val: String,
    },
    Update {
        id: i64,
        val: String,
    },
    Delete {
        id: i64,
    },
    /// BEGIN; inner ops; COMMIT — applied atomically or not at all.
    Txn(Vec<Op>),
}

impl Op {
    fn apply_to(&self, model: &mut Model) {
        match self {
            Op::Insert { id, val } | Op::Update { id, val } => {
                model.insert(*id, val.clone());
            }
            Op::Delete { id } => {
                model.remove(id);
            }
            Op::Txn(ops) => ops.iter().for_each(|op| op.apply_to(model)),
        }
    }

    fn sql(&self) -> Vec<String> {
        match self {
            Op::Insert { id, val } => {
                vec![format!("INSERT INTO public.t VALUES ({id}, '{val}')")]
            }
            Op::Update { id, val } => {
                vec![format!("UPDATE public.t SET val = '{val}' WHERE id = {id}")]
            }
            Op::Delete { id } => vec![format!("DELETE FROM public.t WHERE id = {id}")],
            Op::Txn(ops) => {
                let mut stmts = vec!["BEGIN".to_string()];
                stmts.extend(ops.iter().flat_map(Op::sql));
                stmts.push("COMMIT".to_string());
                stmts
            }
        }
    }
}

/// Deterministically generate a workload from a seed. Single-row
/// statements only (targeted by unique id), so a statement either fully
/// applies or fully fails — the granularity the model tracks.
fn generate_workload(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let mut next_id = 0i64;
    let mut live: Vec<i64> = Vec::new();
    let mut ops = Vec::with_capacity(len);
    let single = |rng: &mut StdRng, next_id: &mut i64, live: &mut Vec<i64>| {
        let roll: f64 = rng.gen();
        if live.is_empty() || roll < 0.55 {
            let id = *next_id;
            *next_id += 1;
            live.push(id);
            Op::Insert { id, val: format!("v{id}-{}", rng.gen_range(0..1000)) }
        } else if roll < 0.8 {
            let id = live[rng.gen_range(0..live.len())];
            Op::Update { id, val: format!("u{id}-{}", rng.gen_range(0..1000)) }
        } else {
            let id = live.swap_remove(rng.gen_range(0..live.len()));
            Op::Delete { id }
        }
    };
    while ops.len() < len {
        if rng.gen_bool(0.15) {
            let n = rng.gen_range(2..=4);
            let inner: Vec<Op> =
                (0..n).map(|_| single(&mut rng, &mut next_id, &mut live)).collect();
            ops.push(Op::Txn(inner));
        } else {
            ops.push(single(&mut rng, &mut next_id, &mut live));
        }
    }
    ops
}

/// Open the database on `vfs` and run recovery.
fn open_db(vfs: &FaultVfs) -> Result<Database, DbError> {
    let db = Database::open_with_vfs(Path::new(DB_DIR), Arc::new(vfs.clone()))?;
    db.recover()?;
    Ok(db)
}

/// Create the schema (table + unique secondary index) with faults disarmed.
fn setup(vfs: &FaultVfs) -> Database {
    vfs.disarm();
    let db = open_db(vfs).expect("setup open must not fail with faults disarmed");
    db.execute_script_as(
        "CREATE TABLE public.t (id INT, val TEXT);
         CREATE UNIQUE INDEX ON public.t (id);",
        &Role::Maintainer,
    )
    .expect("setup DDL must not fail with faults disarmed");
    db
}

/// Read the recovered table back into a model, via a full scan.
fn dump_table(db: &Database) -> Model {
    let rs = db
        .execute_as("SELECT id, val FROM public.t", &Role::Maintainer)
        .expect("post-recovery scan must succeed");
    rs.rows
        .iter()
        .map(|r| (r[0].as_int().expect("int id"), r[1].as_text().expect("text val").to_string()))
        .collect()
}

/// Outcome of running a workload against the engine.
struct RunOutcome {
    /// Model states s_0..s_n (state after each op attempt).
    states: Vec<Model>,
    /// Largest index whose op returned Ok — recovery may not land before it.
    floor: usize,
    /// Errors observed (each must be DbError::Io).
    io_errors: usize,
    /// Index at which a crash stopped the run, if any.
    crashed_at: Option<usize>,
}

/// Drive the workload. In-memory effects track the model regardless of IO
/// errors (mutations precede logging); durability is what recovery checks.
fn run_workload(db: &Database, vfs: &FaultVfs, ops: &[Op]) -> RunOutcome {
    let mut states = vec![Model::new()];
    let mut floor = 0usize;
    let mut io_errors = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let mut ok = true;
        for stmt in op.sql() {
            match db.execute_as(&stmt, &Role::Maintainer) {
                Ok(_) => {}
                Err(DbError::Io(_)) => {
                    ok = false;
                    io_errors += 1;
                }
                Err(other) => panic!("op {i} ({stmt:?}): expected DbError::Io, got {other:?}"),
            }
        }
        let mut next = states.last().expect("nonempty").clone();
        op.apply_to(&mut next);
        states.push(next);
        if vfs.crashed() {
            return RunOutcome { states, floor, io_errors, crashed_at: Some(i) };
        }
        if ok {
            // Every statement of the op succeeded; autocommit (and COMMIT)
            // sync the WAL, so this state is durable.
            floor = states.len() - 1;
        }
    }
    RunOutcome { states, floor, io_errors, crashed_at: None }
}

/// Check prefix consistency: `recovered` equals some states[k], k ≥ floor.
///
/// One subtlety: an op that errored (never reached the durable floor) may
/// still have *partially* persisted if a later successful sync flushed the
/// buffered tail of a mid-transaction statement... it cannot — `sync` only
/// returns Ok after writing every buffered record, and the floor advances
/// past the errored op on the next Ok. So recovered must be an exact
/// model state.
fn check_prefix_consistency(outcome: &RunOutcome, recovered: &Model) -> Result<usize, String> {
    for (k, state) in outcome.states.iter().enumerate().skip(outcome.floor) {
        if state == recovered {
            return Ok(k);
        }
    }
    Err(format!(
        "recovered state matches no model prefix ≥ {}: recovered {} rows {:?}, floor state {:?}",
        outcome.floor,
        recovered.len(),
        recovered.iter().take(8).collect::<Vec<_>>(),
        outcome.states[outcome.floor].iter().take(8).collect::<Vec<_>>(),
    ))
}

/// Post-recovery invariants beyond row contents: the unique index answers
/// point queries consistently with the heap and still enforces uniqueness.
fn check_index_consistency(db: &Database, recovered: &Model) -> Result<(), String> {
    for (id, val) in recovered.iter().take(5) {
        let rs = db
            .execute_as(&format!("SELECT val FROM public.t WHERE id = {id}"), &Role::Maintainer)
            .map_err(|e| format!("index point query failed: {e}"))?;
        if rs.rows.len() != 1 || rs.rows[0][0].as_text() != Some(val.as_str()) {
            return Err(format!("index lookup for id {id} disagrees with heap"));
        }
    }
    if let Some(id) = recovered.keys().next() {
        match db
            .execute_as(&format!("INSERT INTO public.t VALUES ({id}, 'dup')"), &Role::Maintainer)
        {
            Err(DbError::Constraint(_)) => {}
            other => return Err(format!("unique index not enforced after recovery: {other:?}")),
        }
    }
    Ok(())
}

/// Record a failing combo for the CI artifact and return the message.
fn report_failure(kind: &str, seed: u64, detail: &str) -> String {
    let line = format!("{kind} seed={seed}: {detail}");
    let dir = Path::new("target/fault-matrix");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("failing-seeds.txt");
    let mut existing = std::fs::read_to_string(&path).unwrap_or_default();
    existing.push_str(&line);
    existing.push('\n');
    let _ = std::fs::write(&path, existing);
    line
}

fn seed_range() -> (u64, u64) {
    let start = std::env::var("FAULT_SEED_START").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    let count = std::env::var("FAULT_SEED_COUNT").ok().and_then(|v| v.parse().ok()).unwrap_or(25);
    (start, count)
}

/// Crash-point sweep: for each seed, freeze the disk at a range of points
/// in the IO stream, then recover on the frozen image and check prefix
/// consistency + index integrity. ≥ 200 (seed, crash point) combinations
/// at the default 25-seed range.
#[test]
fn crash_points_recover_to_a_consistent_prefix() {
    let (start, count) = seed_range();
    let crash_points: &[u64] = &[1, 2, 3, 5, 8, 13, 21, 34];
    let mut combos = 0u64;
    let mut crashed = 0u64;
    let mut failures = Vec::new();
    for seed in start..start + count {
        let ops = generate_workload(seed, OPS_PER_WORKLOAD);
        for &point in crash_points {
            combos += 1;
            let vfs = FaultVfs::new(FaultConfig::crash_at(seed ^ (point << 32), point));
            let db = setup(&vfs);
            vfs.arm();
            let outcome = run_workload(&db, &vfs, &ops);
            drop(db);
            if outcome.crashed_at.is_none() {
                // Workload finished before the crash point fired (short
                // workloads with late points) — nothing to recover.
                continue;
            }
            crashed += 1;
            // "Restart the process": clear the crashed flag, keep the
            // frozen image, reopen, recover.
            vfs.reset_after_crash();
            let db = match open_db(&vfs) {
                Ok(db) => db,
                Err(e) => {
                    failures.push(report_failure(
                        "crash",
                        seed,
                        &format!("point={point}: recovery failed: {e}"),
                    ));
                    continue;
                }
            };
            let recovered = dump_table(&db);
            if let Err(msg) = check_prefix_consistency(&outcome, &recovered) {
                failures.push(report_failure("crash", seed, &format!("point={point}: {msg}")));
                continue;
            }
            if let Err(msg) = check_index_consistency(&db, &recovered) {
                failures.push(report_failure("crash", seed, &format!("point={point}: {msg}")));
            }
        }
    }
    println!(
        "crash sweep: {combos} (seed, crash point) combinations, {crashed} crashed mid-workload, {} failed",
        failures.len()
    );
    assert!(combos >= 8, "sweep ran no combinations");
    assert!(crashed * 2 >= combos, "too few combos actually crashed ({crashed}/{combos})");
    assert!(failures.is_empty(), "{} failing combos:\n{}", failures.len(), failures.join("\n"));
}

/// Crash with an *interactive* transaction in flight: one explicit
/// `txn_begin` transaction buffers inserts on a disjoint id range while
/// autocommit traffic ticks the fault clock, and the crash can land
/// before, during, or after the transaction's COMMIT. After recovery the
/// transaction must be all-or-nothing: invisible if COMMIT was never
/// attempted (its statements are buffered and do no IO, so no partial
/// frame can exist), fully present if COMMIT returned Ok, and either —
/// but never partial — if COMMIT itself hit the crash. The autocommit
/// stream must independently recover to a consistent prefix.
#[test]
fn crash_inside_open_transactions_leaves_no_trace() {
    /// Ids the open transaction writes; autocommit ids stay far below.
    const TXN_BASE: i64 = 100_000;
    let (start, count) = seed_range();
    let crash_points: &[u64] = &[1, 2, 3, 5, 8, 13, 21, 34];
    let mut combos = 0u64;
    let mut crashed = 0u64;
    let mut failures = Vec::new();
    for seed in start..start + count {
        // Autocommit stream: single-row ops only (the ambient-transaction
        // sweep above covers `Op::Txn`), so the model prefix is exact.
        let ops: Vec<Op> = generate_workload(seed ^ 0x7A31_0000, OPS_PER_WORKLOAD)
            .into_iter()
            .flat_map(|op| match op {
                Op::Txn(inner) => inner,
                single => vec![single],
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x51C7_C1B5).wrapping_add(7));
        let txn_rows: Vec<(i64, String)> = (0..rng.gen_range(3..=6))
            .map(|j| (TXN_BASE + j, format!("t{j}-{}", rng.gen_range(0..1000))))
            .collect();
        let commit_at = rng.gen_range(ops.len() / 2..ops.len());
        for &point in crash_points {
            combos += 1;
            let vfs = FaultVfs::new(FaultConfig::crash_at(seed ^ (point << 16) ^ 0xABCD, point));
            let db = setup(&vfs);
            vfs.arm();
            // Open the transaction and buffer its writes *after* arming:
            // buffered statements must not touch the fault clock at all.
            let txn = db.txn_begin();
            for (id, val) in &txn_rows {
                db.txn_execute_as(
                    txn,
                    &format!("INSERT INTO public.t VALUES ({id}, '{val}')"),
                    &Role::Maintainer,
                )
                .expect("buffered transaction insert must do no IO");
            }
            // Drive the autocommit stream, attempting COMMIT partway in.
            let mut states = vec![Model::new()];
            let mut floor = 0usize;
            let mut crashed_at = None;
            let mut commit_result: Option<Result<(), DbError>> = None;
            for (i, op) in ops.iter().enumerate() {
                if i == commit_at {
                    commit_result = Some(db.txn_commit(txn));
                    if vfs.crashed() {
                        crashed_at = Some(i);
                        break;
                    }
                }
                let mut ok = true;
                for stmt in op.sql() {
                    match db.execute_as(&stmt, &Role::Maintainer) {
                        Ok(_) => {}
                        Err(DbError::Io(_)) => ok = false,
                        Err(other) => panic!("op {i} ({stmt:?}): expected Io, got {other:?}"),
                    }
                }
                let mut next = states.last().expect("nonempty").clone();
                op.apply_to(&mut next);
                states.push(next);
                if vfs.crashed() {
                    crashed_at = Some(i);
                    break;
                }
                if ok {
                    floor = states.len() - 1;
                }
            }
            drop(db);
            if crashed_at.is_none() {
                continue;
            }
            crashed += 1;
            vfs.reset_after_crash();
            let db = match open_db(&vfs) {
                Ok(db) => db,
                Err(e) => {
                    failures.push(report_failure(
                        "txn-crash",
                        seed,
                        &format!("point={point}: recovery failed: {e}"),
                    ));
                    continue;
                }
            };
            let full = dump_table(&db);
            let auto_rec: Model = full
                .iter()
                .filter(|(id, _)| **id < TXN_BASE)
                .map(|(k, v)| (*k, v.clone()))
                .collect();
            let txn_rec: Model = full
                .iter()
                .filter(|(id, _)| **id >= TXN_BASE)
                .map(|(k, v)| (*k, v.clone()))
                .collect();
            let expected_txn: Model = txn_rows.iter().cloned().collect();
            let txn_ok = match &commit_result {
                // COMMIT acknowledged: the frame was synced, rows survive.
                Some(Ok(())) => txn_rec == expected_txn,
                // COMMIT hit the crash: atomic either way, never partial.
                Some(Err(_)) => txn_rec.is_empty() || txn_rec == expected_txn,
                // Crash before COMMIT: buffered work leaves no trace.
                None => txn_rec.is_empty(),
            };
            if !txn_ok {
                failures.push(report_failure(
                    "txn-crash",
                    seed,
                    &format!(
                        "point={point}: commit {commit_result:?} but {} of {} txn rows recovered",
                        txn_rec.len(),
                        expected_txn.len()
                    ),
                ));
                continue;
            }
            let outcome = RunOutcome { states, floor, io_errors: 0, crashed_at };
            if let Err(msg) = check_prefix_consistency(&outcome, &auto_rec) {
                failures.push(report_failure("txn-crash", seed, &format!("point={point}: {msg}")));
            }
        }
    }
    println!(
        "txn crash sweep: {combos} (seed, crash point) combinations, {crashed} crashed mid-workload, {} failed",
        failures.len()
    );
    assert!(combos >= 8, "sweep ran no combinations");
    assert!(failures.is_empty(), "{} failing combos:\n{}", failures.len(), failures.join("\n"));
}

/// Recovery must rebuild the *derived* read-path state — per-page zone
/// maps and catalog statistics — not just row contents. After each crash
/// and recover: the maintained zone maps must exactly equal a fresh
/// rebuild from the heap (exact, not merely conservative — pruning
/// correctness rides on it), a zone-pruned scan must agree with the full
/// scan, and a second independent recovery of the same frozen image must
/// land on the identical statistics fingerprint — replay is
/// deterministic, so "crash + replay" and a clean open see the same
/// statistics.
#[test]
fn recovery_rebuilds_zone_maps_and_statistics() {
    let (start, count) = seed_range();
    let crash_points: &[u64] = &[3, 8, 21, 34];
    let mut crashed = 0u64;
    let mut failures = Vec::new();
    for seed in start..start + count {
        let ops = generate_workload(seed ^ 0x20E5_AB1E, OPS_PER_WORKLOAD);
        for &point in crash_points {
            let vfs = FaultVfs::new(FaultConfig::crash_at(seed ^ (point << 24), point));
            let db = setup(&vfs);
            vfs.arm();
            let outcome = run_workload(&db, &vfs, &ops);
            drop(db);
            if outcome.crashed_at.is_none() {
                continue;
            }
            crashed += 1;
            vfs.reset_after_crash();
            let db = match open_db(&vfs) {
                Ok(db) => db,
                Err(e) => {
                    failures.push(report_failure(
                        "zones",
                        seed,
                        &format!("point={point}: recovery failed: {e}"),
                    ));
                    continue;
                }
            };
            // Replayed zone maps must match a fresh rebuild exactly.
            match db.verify_zone_maps("public.t") {
                Ok(true) => {}
                Ok(false) => {
                    failures.push(report_failure(
                        "zones",
                        seed,
                        &format!("point={point}: replayed zone maps diverge from a fresh rebuild"),
                    ));
                    continue;
                }
                Err(e) => {
                    failures.push(report_failure(
                        "zones",
                        seed,
                        &format!("point={point}: verify_zone_maps failed: {e}"),
                    ));
                    continue;
                }
            }
            // A scan filtered through the replayed zones agrees with the heap.
            let recovered = dump_table(&db);
            if let Some((&max_id, _)) = recovered.iter().next_back() {
                let cutoff = max_id / 2;
                let rs = db
                    .execute_as(
                        &format!("SELECT id, val FROM public.t WHERE id >= {cutoff}"),
                        &Role::Maintainer,
                    )
                    .expect("pruned scan after recovery must succeed");
                let got: Model = rs
                    .rows
                    .iter()
                    .map(|r| (r[0].as_int().unwrap(), r[1].as_text().unwrap().to_string()))
                    .collect();
                let expect: Model =
                    recovered.range(cutoff..).map(|(k, v)| (*k, v.clone())).collect();
                if got != expect {
                    failures.push(report_failure(
                        "zones",
                        seed,
                        &format!(
                            "point={point}: pruned scan returned {} rows, full scan has {}",
                            got.len(),
                            expect.len()
                        ),
                    ));
                    continue;
                }
            }
            // Statistics are a pure function of the disk image: a second
            // recovery of the same image reproduces the same fingerprint.
            let fp1 = db.stats_fingerprint("public.t");
            drop(db);
            let db2 = match open_db(&vfs) {
                Ok(db) => db,
                Err(e) => {
                    failures.push(report_failure(
                        "zones",
                        seed,
                        &format!("point={point}: second recovery failed: {e}"),
                    ));
                    continue;
                }
            };
            let fp2 = db2.stats_fingerprint("public.t");
            match (&fp1, &fp2) {
                (Ok(a), Ok(b)) if a == b => {}
                other => failures.push(report_failure(
                    "zones",
                    seed,
                    &format!(
                        "point={point}: stats fingerprints diverge across recoveries: {other:?}"
                    ),
                )),
            }
        }
    }
    println!(
        "zone/stats rebuild sweep: {crashed} crashed combos checked, {} failed",
        failures.len()
    );
    assert!(crashed >= 4, "too few combos actually crashed ({crashed})");
    assert!(failures.is_empty(), "{} failing combos:\n{}", failures.len(), failures.join("\n"));
}

/// Transient-fault sweep: no crash, but writes/syncs/reads can fail. Every
/// error must be a structured `DbError::Io`; the database must stay usable
/// in-process, and a fresh open on the same disk must recover a consistent
/// prefix that includes every op that reported Ok.
#[test]
fn transient_io_faults_leave_database_reopenable() {
    let (start, count) = seed_range();
    let mut failures = Vec::new();
    let mut total_io_errors = 0usize;
    for seed in start..start + count {
        let ops = generate_workload(seed ^ 0xDEAD_BEEF, OPS_PER_WORKLOAD);
        let vfs = FaultVfs::new(FaultConfig::transient(seed));
        let db = setup(&vfs);
        vfs.arm();
        let outcome = run_workload(&db, &vfs, &ops);
        total_io_errors += outcome.io_errors;
        assert!(outcome.crashed_at.is_none(), "transient config must not crash");

        // The engine must still answer queries in-process after IO errors.
        db.execute_as("SELECT count(*) FROM public.t", &Role::Maintainer)
            .expect("reads must survive WAL-layer faults");

        // A fresh open on the same (still faulty-history) disk: disarm and
        // recover, as an administrator would after fixing the disk.
        vfs.disarm();
        drop(db);
        let db = match open_db(&vfs) {
            Ok(db) => db,
            Err(e) => {
                failures.push(report_failure("transient", seed, &format!("reopen failed: {e}")));
                continue;
            }
        };
        let recovered = dump_table(&db);
        if let Err(msg) = check_prefix_consistency(&outcome, &recovered) {
            failures.push(report_failure("transient", seed, &msg));
            continue;
        }
        // The reopened database must accept new writes.
        if let Err(e) =
            db.execute_as("INSERT INTO public.t VALUES (100000, 'post')", &Role::Maintainer)
        {
            failures.push(report_failure("transient", seed, &format!("post-recovery write: {e}")));
        }
    }
    println!("transient sweep: {count} seeds, {total_io_errors} injected IO errors surfaced");
    assert!(failures.is_empty(), "{} failing seeds:\n{}", failures.len(), failures.join("\n"));
}

/// Crash during checkpoint: the epoch scheme must prevent double apply
/// (old WAL replayed on top of a new snapshot) at every crash offset.
#[test]
fn crash_during_checkpoint_never_double_applies() {
    let (start, count) = seed_range();
    let mut failures = Vec::new();
    for seed in start..start + count.min(10) {
        let ops = generate_workload(seed ^ 0x5EED, 20);
        for point in 1..=12u64 {
            let vfs = FaultVfs::new(FaultConfig::crash_at(seed.wrapping_add(point), point));
            let db = setup(&vfs);
            let outcome = run_workload(&db, &vfs, &ops); // disarmed: all Ok
            assert_eq!(outcome.io_errors, 0);
            vfs.arm(); // the crash clock now ticks inside checkpoint()
            let checkpoint_result = db.checkpoint();
            drop(db);
            vfs.reset_after_crash();
            let db = match open_db(&vfs) {
                Ok(db) => db,
                Err(e) => {
                    failures.push(report_failure(
                        "checkpoint",
                        seed,
                        &format!("point={point}: recovery failed: {e} (checkpoint was {checkpoint_result:?})"),
                    ));
                    continue;
                }
            };
            let recovered = dump_table(&db);
            let expected = outcome.states.last().expect("nonempty");
            if recovered != *expected {
                failures.push(report_failure(
                    "checkpoint",
                    seed,
                    &format!(
                        "point={point}: recovered {} rows, expected {} (checkpoint was {checkpoint_result:?})",
                        recovered.len(),
                        expected.len()
                    ),
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{} failing combos:\n{}", failures.len(), failures.join("\n"));
}
