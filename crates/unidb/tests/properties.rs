//! Property-based tests for the storage engine's invariants.

use proptest::prelude::*;
use std::collections::HashMap;
use unidb::datum::Datum;
use unidb::expr::eval::like_match;
use unidb::index::btree::BTreeIndex;
use unidb::storage::buffer::BufferPool;
use unidb::storage::heap::{HeapFile, Rid};
use unidb::storage::page::Page;
use unidb::storage::store::MemStore;
use unidb::storage::wal::{crc32, WalRecord};
use unidb::tuple::{decode_row, encode_row};

fn arb_datum() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        any::<i64>().prop_map(Datum::Int),
        any::<f64>().prop_map(Datum::Float),
        "[a-zA-Z0-9 '\\-]{0,40}".prop_map(Datum::Text),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Datum::Blob),
        (0u32..10, proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(t, b)| Datum::opaque(t, b)),
    ]
}

fn arb_row() -> impl Strategy<Value = Vec<Datum>> {
    proptest::collection::vec(arb_datum(), 0..8)
}

proptest! {
    // --- tuple encoding -------------------------------------------------------

    #[test]
    fn row_roundtrip(row in arb_row()) {
        let bytes = encode_row(&row);
        let back = decode_row(&bytes).unwrap();
        // Representation-exact comparison (Debug) because Datum's Eq
        // intentionally unifies Int(3) and Float(3.0).
        prop_assert_eq!(format!("{back:?}"), format!("{row:?}"));
    }

    #[test]
    fn row_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_row(&bytes);
    }

    // --- datum ordering ----------------------------------------------------------

    #[test]
    fn total_cmp_is_total_order(a in arb_datum(), b in arb_datum(), c in arb_datum()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Reflexivity.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        // Transitivity (sampled).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    #[test]
    fn eq_datums_hash_alike(a in arb_datum(), b in arb_datum()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |d: &Datum| {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        };
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    // --- pages ----------------------------------------------------------------------

    #[test]
    fn page_model(records in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..300), 1..30)
    ) {
        let mut page = Page::new();
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        for rec in &records {
            match page.insert(rec) {
                Some(slot) => {
                    prop_assert_eq!(slot as usize, model.len());
                    model.push(Some(rec.clone()));
                }
                None => {
                    // Full page: record must genuinely not fit.
                    prop_assert!(rec.len() + 4 > page.free_space());
                    model.push(None);
                    break;
                }
            }
        }
        for (i, m) in model.iter().enumerate() {
            if let Some(rec) = m { prop_assert_eq!(page.get(i as u16), Some(rec.as_slice())) }
        }
    }

    // --- heap ------------------------------------------------------------------------

    #[test]
    fn heap_model(ops in proptest::collection::vec(
        (0u8..3, proptest::collection::vec(any::<u8>(), 0..2000)), 1..60)
    ) {
        let mut heap = HeapFile::new(BufferPool::new(Box::new(MemStore::new()), 16));
        let mut model: HashMap<Rid, Vec<u8>> = HashMap::new();
        let mut live: Vec<Rid> = Vec::new();
        for (op, payload) in ops {
            match op {
                0 => {
                    let rid = heap.insert(&payload).unwrap();
                    prop_assert!(!model.contains_key(&rid), "rid reuse");
                    model.insert(rid, payload);
                    live.push(rid);
                }
                1 if !live.is_empty() => {
                    let victim = live[payload.len() % live.len()];
                    prop_assert!(heap.delete(victim).unwrap());
                    model.remove(&victim);
                    live.retain(|r| *r != victim);
                }
                2 if !live.is_empty() => {
                    let target = live[payload.len() % live.len()];
                    let new_rid = heap.update(target, &payload).unwrap();
                    model.remove(&target);
                    live.retain(|r| *r != target);
                    model.insert(new_rid, payload);
                    live.push(new_rid);
                }
                _ => {}
            }
        }
        prop_assert_eq!(heap.len() as usize, model.len());
        for (rid, expected) in &model {
            let got = heap.get(*rid).unwrap();
            prop_assert_eq!(got.as_ref(), Some(expected));
        }
        let scanned: HashMap<Rid, Vec<u8>> = heap.scan().unwrap().into_iter().collect();
        prop_assert_eq!(scanned, model);
    }

    // --- B-tree -----------------------------------------------------------------------

    #[test]
    fn btree_model(ops in proptest::collection::vec((any::<bool>(), -50i64..50, 0u32..100), 1..300)) {
        let mut tree = BTreeIndex::new(false);
        let mut model: HashMap<i64, Vec<Rid>> = HashMap::new();
        for (insert, key, ridn) in ops {
            let rid = Rid { page: ridn, slot: 0 };
            if insert {
                tree.insert(Datum::Int(key), rid).unwrap();
                model.entry(key).or_default().push(rid);
            } else {
                let existed = tree.remove(&Datum::Int(key), rid);
                let model_had = model.get_mut(&key).is_some_and(|v| {
                    if let Some(at) = v.iter().position(|r| *r == rid) {
                        v.swap_remove(at);
                        true
                    } else {
                        false
                    }
                });
                prop_assert_eq!(existed, model_had);
            }
        }
        let model_len: usize = model.values().map(Vec::len).sum();
        prop_assert_eq!(tree.len(), model_len);
        for (key, rids) in &model {
            let mut got = tree.get(&Datum::Int(*key));
            let mut expected = rids.clone();
            got.sort();
            expected.sort();
            prop_assert_eq!(got, expected);
        }
        // Full iteration is sorted by key.
        let all = tree.iter_all();
        for pair in all.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn btree_range_equals_filtered_scan(
        keys in proptest::collection::vec(-100i64..100, 0..200),
        lo in -100i64..100,
        span in 0i64..100,
    ) {
        let mut tree = BTreeIndex::new(false);
        for (i, k) in keys.iter().enumerate() {
            tree.insert(Datum::Int(*k), Rid { page: i as u32, slot: 0 }).unwrap();
        }
        let hi = lo + span;
        let from_range: Vec<i64> = tree
            .range(
                std::ops::Bound::Included(&Datum::Int(lo)),
                std::ops::Bound::Included(&Datum::Int(hi)),
            )
            .into_iter()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        let mut expected: Vec<i64> =
            keys.iter().copied().filter(|k| (lo..=hi).contains(k)).collect();
        expected.sort_unstable();
        prop_assert_eq!(from_range, expected);
    }

    // --- LIKE -------------------------------------------------------------------------

    #[test]
    fn like_matches_reference_implementation(
        text in "[ab_%]{0,12}",
        pattern in "[ab_%]{0,8}",
    ) {
        fn reference(t: &[char], p: &[char]) -> bool {
            match (t.first(), p.first()) {
                (_, None) => t.is_empty(),
                (_, Some('%')) => {
                    (0..=t.len()).any(|skip| reference(&t[skip..], &p[1..]))
                }
                (Some(tc), Some(pc)) => {
                    (*pc == '_' || pc == tc) && reference(&t[1..], &p[1..])
                }
                (None, Some(_)) => false,
            }
        }
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pattern.chars().collect();
        prop_assert_eq!(like_match(&text, &pattern, None).unwrap(), reference(&t, &p));
    }

    #[test]
    fn like_escape_matches_reference_implementation(
        text in "[ab_%#]{0,12}",
        pattern in "[ab_%#]{0,8}",
    ) {
        // Reference with '#' as the escape character: '#x' is literal x,
        // a trailing '#' is an error (reference returns None).
        fn compile(p: &[char]) -> Option<Vec<(char, bool)>> {
            let mut out = Vec::new();
            let mut i = 0;
            while i < p.len() {
                if p[i] == '#' {
                    if i + 1 >= p.len() {
                        return None;
                    }
                    out.push((p[i + 1], true));
                    i += 2;
                } else {
                    out.push((p[i], false));
                    i += 1;
                }
            }
            Some(out)
        }
        fn matches(t: &[char], p: &[(char, bool)]) -> bool {
            match (t.first(), p.first()) {
                (_, None) => t.is_empty(),
                (_, Some(('%', false))) => {
                    (0..=t.len()).any(|skip| matches(&t[skip..], &p[1..]))
                }
                (Some(tc), Some((pc, literal))) => {
                    ((!literal && *pc == '_') || pc == tc) && matches(&t[1..], &p[1..])
                }
                (None, Some(_)) => false,
            }
        }
        let t: Vec<char> = text.chars().collect();
        let p: Vec<char> = pattern.chars().collect();
        let got = like_match(&text, &pattern, Some('#'));
        match compile(&p) {
            None => prop_assert!(got.is_err()),
            Some(compiled) => prop_assert_eq!(got.unwrap(), matches(&t, &compiled)),
        }
    }

    // --- WAL ---------------------------------------------------------------------------

    #[test]
    fn wal_record_roundtrip(table in "[a-z]{1,10}", old in arb_row(), new in arb_row()) {
        for rec in [
            WalRecord::Insert { table: table.clone(), row: new.clone() },
            WalRecord::Delete { table: table.clone(), row: old.clone() },
            WalRecord::Update { table: table.clone(), old_row: old, new_row: new },
        ] {
            let enc = rec.encode();
            let dec = WalRecord::decode(&enc).unwrap();
            prop_assert_eq!(format!("{dec:?}"), format!("{rec:?}"));
        }
    }

    #[test]
    fn crc_detects_single_bit_flips(payload in proptest::collection::vec(any::<u8>(), 1..100),
                                    bit in 0usize..800) {
        let bit = bit % (payload.len() * 8);
        let mut corrupted = payload.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(crc32(&payload), crc32(&corrupted));
    }
}
