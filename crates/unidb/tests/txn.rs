//! Acceptance tests for the MVCC transaction subsystem: snapshot
//! isolation, first-committer-wins conflicts, concurrent disjoint
//! writers, the `Engine`/`Transaction` trait boundary, and ambient
//! (`BEGIN`/`COMMIT`/`ROLLBACK`) transaction control.

use std::sync::{Arc, Barrier};
use unidb::{Database, Datum, DbError, Engine, Transaction};

fn fresh_kv() -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("CREATE UNIQUE INDEX ON t (k)").unwrap();
    db
}

fn ints(db: &Database, sql: &str) -> Vec<(i64, i64)> {
    let rs = db.execute(sql).unwrap();
    let mut out: Vec<(i64, i64)> =
        rs.rows.iter().map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap())).collect();
    out.sort_unstable();
    out
}

fn txn_ints(db: &Database, id: u64, sql: &str) -> Vec<(i64, i64)> {
    let rs = db.txn_execute(id, sql).unwrap();
    let mut out: Vec<(i64, i64)> =
        rs.rows.iter().map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap())).collect();
    out.sort_unstable();
    out
}

// -- disjoint writers ------------------------------------------------------

/// Two transactions writing different rows interleave their statements
/// while both are open (neither blocks the other on the global write
/// lock) and both commit.
#[test]
fn disjoint_writers_both_commit() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();

    let a = db.txn_begin();
    let b = db.txn_begin();
    // Interleaved statements with both transactions open: under a
    // lock-per-transaction design the second statement would deadlock or
    // block forever.
    db.txn_execute(a, "UPDATE t SET v = 11 WHERE k = 1").unwrap();
    db.txn_execute(b, "UPDATE t SET v = 21 WHERE k = 2").unwrap();
    db.txn_execute(a, "INSERT INTO t VALUES (3, 30)").unwrap();
    db.txn_execute(b, "INSERT INTO t VALUES (4, 40)").unwrap();
    db.txn_commit(a).unwrap();
    db.txn_commit(b).unwrap();

    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 11), (2, 21), (3, 30), (4, 40)]);
}

/// The threaded variant: writers on disjoint keys running on real
/// threads all commit without a serialization failure.
#[test]
fn threaded_disjoint_writers_all_commit() {
    let db = Arc::new(fresh_kv());
    for k in 0..8 {
        db.execute(&format!("INSERT INTO t VALUES ({k}, 0)")).unwrap();
    }
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let id = db.txn_begin();
                db.txn_execute(id, &format!("UPDATE t SET v = {w} WHERE k = {}", 2 * w)).unwrap();
                db.txn_execute(id, &format!("UPDATE t SET v = {w} WHERE k = {}", 2 * w + 1))
                    .unwrap();
                db.txn_commit(id).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = db.txn_stats();
    assert_eq!(stats.committed, 4);
    assert_eq!(stats.conflicts, 0);
    assert_eq!(ints(&db, "SELECT k, v FROM t"), (0..8).map(|k| (k, k / 2)).collect::<Vec<_>>());
}

// -- write-write conflicts -------------------------------------------------

/// Same-row writers: the first committer wins, the second aborts with the
/// retryable [`DbError::Conflict`].
#[test]
fn same_row_conflict_aborts_exactly_one() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();

    let a = db.txn_begin();
    let b = db.txn_begin();
    db.txn_execute(a, "UPDATE t SET v = 100 WHERE k = 1").unwrap();
    db.txn_execute(b, "UPDATE t SET v = 200 WHERE k = 1").unwrap();
    db.txn_commit(a).unwrap();
    let err = db.txn_commit(b).unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)), "expected Conflict, got {err:?}");

    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 100)]);
    let stats = db.txn_stats();
    assert_eq!(stats.committed, 1);
    assert_eq!(stats.aborted, 1);
    assert_eq!(stats.conflicts, 1);
}

/// A statement that touches a row a concurrent transaction already
/// committed over conflicts eagerly; the transaction is doomed and its
/// commit re-reports the conflict.
#[test]
fn stale_row_statement_dooms_transaction() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();

    let a = db.txn_begin();
    // Concurrent auto-commit update supersedes the row after a's snapshot.
    db.execute("UPDATE t SET v = 99 WHERE k = 1").unwrap();
    let err = db.txn_execute(a, "UPDATE t SET v = 100 WHERE k = 1").unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)), "expected Conflict, got {err:?}");
    // Doomed: further statements fail, commit reports the abort.
    let err = db.txn_execute(a, "SELECT k, v FROM t").unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)));
    let err = db.txn_commit(a).unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)));
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 99)]);
    // Exactly one conflict counted even though it surfaced three times.
    assert_eq!(db.txn_stats().conflicts, 1);
}

/// Concurrent threads racing an increment on one row: conflicts abort
/// losers, retries converge, and the final value counts every committed
/// increment exactly once.
#[test]
fn contended_increment_with_retries_is_exact() {
    let db = Arc::new(fresh_kv());
    db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    let threads = 4;
    let per_thread = 5;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..per_thread {
                    loop {
                        let id = db.txn_begin();
                        let step = db
                            .txn_execute(id, "UPDATE t SET v = v + 1 WHERE k = 1")
                            .and_then(|_| db.txn_commit(id));
                        match step {
                            Ok(()) => break,
                            Err(DbError::Conflict(_)) => {
                                // Doomed transactions must be cleaned up
                                // before retrying (commit already did).
                                if db.txn_is_active(id) {
                                    db.txn_rollback(id).unwrap();
                                }
                            }
                            Err(e) => panic!("unexpected error: {e:?}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, (threads * per_thread) as i64)]);
}

// -- snapshot isolation ----------------------------------------------------

/// A snapshot reader never sees rows a concurrent transaction commits
/// after the snapshot was pinned — at serial and parallel scan settings.
#[test]
fn snapshot_reader_never_sees_concurrent_commit() {
    for parallelism in [1usize, 4] {
        let db = fresh_kv();
        db.set_parallelism(parallelism);
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();

        let reader = db.txn_begin();
        assert_eq!(txn_ints(&db, reader, "SELECT k, v FROM t"), vec![(1, 10), (2, 20)]);

        let writer = db.txn_begin();
        db.txn_execute(writer, "INSERT INTO t VALUES (3, 30)").unwrap();
        db.txn_execute(writer, "UPDATE t SET v = 11 WHERE k = 1").unwrap();
        db.txn_execute(writer, "DELETE FROM t WHERE k = 2").unwrap();
        db.txn_commit(writer).unwrap();

        // Latest state moved; the reader's snapshot has not.
        assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 11), (3, 30)]);
        for _ in 0..3 {
            assert_eq!(
                txn_ints(&db, reader, "SELECT k, v FROM t"),
                vec![(1, 10), (2, 20)],
                "snapshot leaked at parallelism {parallelism}"
            );
        }
        // Aggregates and filters see the same frozen state.
        let rs = db.txn_execute(reader, "SELECT count(*) FROM t").unwrap();
        assert_eq!(rs.scalar(), Some(&Datum::Int(2)));
        let rs = db.txn_execute(reader, "SELECT v FROM t WHERE k = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Datum::Int(10)));
        db.txn_commit(reader).unwrap();

        // Snapshot released: a fresh transaction sees latest.
        let fresh = db.txn_begin();
        assert_eq!(txn_ints(&db, fresh, "SELECT k, v FROM t"), vec![(1, 11), (3, 30)]);
        db.txn_rollback(fresh).unwrap();
    }
}

/// A transaction reads its own uncommitted writes; nobody else does until
/// commit.
#[test]
fn own_writes_visible_only_inside() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();

    let a = db.txn_begin();
    db.txn_execute(a, "INSERT INTO t VALUES (2, 20)").unwrap();
    db.txn_execute(a, "UPDATE t SET v = 15 WHERE k = 1").unwrap();
    assert_eq!(txn_ints(&db, a, "SELECT k, v FROM t"), vec![(1, 15), (2, 20)]);
    // Outside the transaction: nothing happened yet.
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 10)]);
    db.txn_commit(a).unwrap();
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 15), (2, 20)]);
}

/// Updating or deleting a row the same transaction inserted works and
/// leaves no residue after commit.
#[test]
fn own_insert_update_delete_chains() {
    let db = fresh_kv();
    let a = db.txn_begin();
    db.txn_execute(a, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)").unwrap();
    db.txn_execute(a, "UPDATE t SET v = 21 WHERE k = 2").unwrap();
    db.txn_execute(a, "DELETE FROM t WHERE k = 3").unwrap();
    assert_eq!(txn_ints(&db, a, "SELECT k, v FROM t"), vec![(1, 10), (2, 21)]);
    db.txn_commit(a).unwrap();
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 10), (2, 21)]);
}

#[test]
fn rollback_discards_everything() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    let a = db.txn_begin();
    db.txn_execute(a, "UPDATE t SET v = 11 WHERE k = 1").unwrap();
    db.txn_execute(a, "INSERT INTO t VALUES (2, 20)").unwrap();
    db.txn_rollback(a).unwrap();
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 10)]);
    // The id is gone: further use reports a structured transaction error.
    let err = db.txn_execute(a, "SELECT k FROM t").unwrap_err();
    assert!(matches!(err, DbError::Txn(_)));
    let err = db.txn_commit(a).unwrap_err();
    assert!(matches!(err, DbError::Txn(_)));
}

// -- unique-index interaction ----------------------------------------------

/// Inserting a key that a concurrent transaction committed after the
/// snapshot is a serialization conflict; a key visible in the snapshot is
/// an ordinary constraint violation.
#[test]
fn unique_key_conflict_vs_constraint() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();

    // Visible duplicate: plain constraint error, transaction stays usable.
    let a = db.txn_begin();
    let err = db.txn_execute(a, "INSERT INTO t VALUES (1, 99)").unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "expected Constraint, got {err:?}");
    db.txn_execute(a, "INSERT INTO t VALUES (2, 20)").unwrap();
    db.txn_commit(a).unwrap();

    // Invisible duplicate (committed after the snapshot): conflict.
    let b = db.txn_begin();
    db.execute("INSERT INTO t VALUES (7, 70)").unwrap();
    let err = db.txn_execute(b, "INSERT INTO t VALUES (7, 71)").unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)), "expected Conflict, got {err:?}");

    // Commit-time race: both transactions insert the same fresh key; the
    // second committer conflicts.
    let c = db.txn_begin();
    let d = db.txn_begin();
    db.txn_execute(c, "INSERT INTO t VALUES (9, 90)").unwrap();
    db.txn_execute(d, "INSERT INTO t VALUES (9, 91)").unwrap();
    db.txn_commit(c).unwrap();
    let err = db.txn_commit(d).unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)), "expected Conflict, got {err:?}");
    assert_eq!(ints(&db, "SELECT k, v FROM t WHERE k = 9"), vec![(9, 90)]);
}

/// A transaction can reuse a unique key it deleted itself, including the
/// delete-and-reinsert-in-one-transaction shape that stresses commit
/// apply ordering.
#[test]
fn unique_key_reuse_within_transaction() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    let a = db.txn_begin();
    db.txn_execute(a, "DELETE FROM t WHERE k = 1").unwrap();
    db.txn_execute(a, "INSERT INTO t VALUES (1, 100)").unwrap();
    // Key swap across two rows via update.
    db.txn_execute(a, "UPDATE t SET k = 3 WHERE k = 2").unwrap();
    db.txn_execute(a, "INSERT INTO t VALUES (2, 200)").unwrap();
    db.txn_commit(a).unwrap();
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 100), (2, 200), (3, 20)]);
}

// -- ambient transactions (BEGIN / COMMIT / ROLLBACK as SQL) ----------------

#[test]
fn ambient_begin_commit_rollback() {
    let db = fresh_kv();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    db.execute("COMMIT").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (2, 20)").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 10)]);
}

/// `COMMIT`/`ROLLBACK` without `BEGIN`, and nested `BEGIN`, are
/// structured transaction-state errors, not unsupported-statement errors.
#[test]
fn transaction_control_misuse_is_structured() {
    let db = fresh_kv();
    assert!(matches!(db.execute("COMMIT"), Err(DbError::Txn(_))));
    assert!(matches!(db.execute("ROLLBACK"), Err(DbError::Txn(_))));
    db.execute("BEGIN").unwrap();
    assert!(matches!(db.execute("BEGIN"), Err(DbError::Txn(_))));
    db.execute("ROLLBACK").unwrap();
    // The database remains fully usable after every misuse.
    db.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 1)]);
}

#[test]
fn ddl_inside_transaction_is_rejected() {
    let db = fresh_kv();
    let a = db.txn_begin();
    let err = db.txn_execute(a, "CREATE TABLE u (x INT)").unwrap_err();
    assert!(matches!(err, DbError::Txn(_)), "expected Txn, got {err:?}");
    db.txn_rollback(a).unwrap();
}

// -- Engine / Transaction trait boundary -----------------------------------

/// Drives transactions purely through the trait boundary, the way the
/// server session layer and benches do.
fn transfer<E: Engine>(engine: &E, from: i64, to: i64, amount: i64) -> Result<(), DbError> {
    let mut txn = engine.begin();
    txn.execute(&format!("UPDATE t SET v = v - {amount} WHERE k = {from}"))?;
    txn.execute(&format!("UPDATE t SET v = v + {amount} WHERE k = {to}"))?;
    txn.commit()
}

#[test]
fn engine_trait_drives_transactions() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 100), (2, 0)").unwrap();
    transfer(&db, 1, 2, 40).unwrap();
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 60), (2, 40)]);
}

/// Dropping an unfinished transaction handle rolls it back.
#[test]
fn dropped_handle_rolls_back() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    let id;
    {
        let mut txn = db.begin();
        id = txn.id();
        txn.execute("UPDATE t SET v = 999 WHERE k = 1").unwrap();
    }
    assert!(!db.txn_is_active(id));
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 10)]);
    assert_eq!(db.txn_stats().aborted, 1);
}

// -- durability ------------------------------------------------------------

/// Committed transactions survive reopen; a transaction still open at
/// shutdown (its handle dropped, or simply never committed) leaves no
/// trace.
#[test]
fn committed_survives_reopen_uncommitted_does_not() {
    use unidb::Role;
    let m = Role::Maintainer;
    let dir = std::env::temp_dir().join(format!("unidb-txn-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        db.recover().unwrap();
        db.execute_as("CREATE TABLE t (k INT, v INT)", &m).unwrap();
        let a = db.txn_begin();
        db.txn_execute_as(a, "INSERT INTO t VALUES (1, 10)", &m).unwrap();
        db.txn_commit(a).unwrap();
        let b = db.txn_begin();
        db.txn_execute_as(b, "INSERT INTO t VALUES (2, 20)", &m).unwrap();
        // b is never committed: its writes must not reach disk.
    }
    {
        let db = Database::open(&dir).unwrap();
        db.recover().unwrap();
        assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 10)]);
        // The reopened engine accepts new transactions.
        let c = db.txn_begin();
        db.txn_execute_as(c, "INSERT INTO t VALUES (3, 30)", &m).unwrap();
        db.txn_commit(c).unwrap();
        assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 10), (3, 30)]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// -- caches and metrics ----------------------------------------------------

/// Table version counters only move when a transaction *commits*, and
/// they move past every snapshot pinned before the commit — the property
/// the server's result cache relies on.
#[test]
fn table_versions_track_commits_not_statements() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    let prepared = db.prepare("SELECT k, v FROM t").unwrap();
    let ids = prepared.table_ids().to_vec();
    let before = db.table_versions(&ids);

    let a = db.txn_begin();
    db.txn_execute(a, "UPDATE t SET v = 11 WHERE k = 1").unwrap();
    // Buffered writes are not commits: the version must not move.
    assert_eq!(db.table_versions(&ids), before);
    db.txn_commit(a).unwrap();
    assert!(db.table_versions(&ids) > before, "commit must advance the table version");

    let b = db.txn_begin();
    db.txn_execute(b, "UPDATE t SET v = 12 WHERE k = 1").unwrap();
    db.txn_rollback(b).unwrap();
    let after_rollback = db.table_versions(&ids);
    db.txn_commit(db.txn_begin()).unwrap(); // empty commit
    assert_eq!(db.table_versions(&ids), after_rollback, "rollbacks and empty commits are free");
}

#[test]
fn txn_counters_and_duration() {
    let db = fresh_kv();
    let a = db.txn_begin();
    db.txn_execute(a, "INSERT INTO t VALUES (1, 1)").unwrap();
    db.txn_commit(a).unwrap();
    let b = db.txn_begin();
    db.txn_rollback(b).unwrap();
    let stats = db.txn_stats();
    assert_eq!(stats.begun, 2);
    assert_eq!(stats.committed, 1);
    assert_eq!(stats.aborted, 1);
    assert_eq!(stats.conflicts, 0);
    assert_eq!(db.txn_duration().count, 2);
}

// -- version-chain GC ------------------------------------------------------

/// Version chains are pruned even while a long-lived snapshot is open:
/// churn versions born *after* the snapshot can never become visible to
/// any active or future snapshot, so GC drops them instead of letting the
/// chain grow for the lifetime of the reader.
#[test]
fn version_gc_prunes_churn_under_long_lived_reader() {
    let db = fresh_kv();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();

    let reader = db.txn_begin();
    assert_eq!(txn_ints(&db, reader, "SELECT k, v FROM t"), vec![(1, 10), (2, 20)]);

    // Heavy churn on one row while the reader stays open. Every UPDATE
    // auto-commits and retires a version; all but the one alive at the
    // reader's snapshot are unreachable and must be pruned promptly.
    for i in 0..100 {
        db.execute(&format!("UPDATE t SET v = {} WHERE k = 1", 100 + i)).unwrap();
    }
    let pruned = db.txn_stats().versions_pruned;
    assert!(pruned >= 90, "churn should be pruned while the reader is open, got {pruned}");

    // The one version the snapshot *does* need survived the pruning.
    assert_eq!(txn_ints(&db, reader, "SELECT k, v FROM t"), vec![(1, 10), (2, 20)]);
    db.txn_commit(reader).unwrap();

    // Reader gone: the next commit collapses the remaining history too,
    // and latest state is what the churn left behind.
    db.execute("UPDATE t SET v = 0 WHERE k = 2").unwrap();
    assert!(db.txn_stats().versions_pruned > pruned, "post-reader GC should reclaim the rest");
    assert_eq!(ints(&db, "SELECT k, v FROM t"), vec![(1, 199), (2, 0)]);
}
