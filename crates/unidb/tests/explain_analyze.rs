//! Golden tests for `EXPLAIN ANALYZE`.
//!
//! The acceptance bar: on a scan -> join -> TopN plan, the deterministic
//! counter rendering (`rows_out`, plus `pages_read` on scans) is
//! byte-identical at parallelism 1 and 4. `time_us` and `batches` vary
//! run to run and across parallelism, so only the full rendering shows
//! them.

use unidb::exec::stats::OpStatsSnapshot;
use unidb::Database;

/// Enough rows that a parallel scan actually splits into several morsels
/// (PAR_MIN_ROWS is 4096 and a morsel is 32 pages).
const BIG_ROWS: usize = 6000;

fn seeded() -> Database {
    let d = Database::in_memory();
    d.execute_script(
        "CREATE TABLE reads (id INT NOT NULL, chrom INT, score INT);
         CREATE TABLE chroms (chrom INT NOT NULL, name TEXT);",
    )
    .unwrap();
    for c in 0..4 {
        d.execute(&format!("INSERT INTO chroms VALUES ({c}, 'chr{c}')")).unwrap();
    }
    let mut batch = String::new();
    for i in 0..BIG_ROWS {
        if batch.is_empty() {
            batch.push_str("INSERT INTO reads VALUES ");
        } else {
            batch.push(',');
        }
        batch.push_str(&format!("({i}, {}, {})", i % 4, (i * 7919) % 100_000));
        if batch.len() > 60_000 {
            d.execute(&batch).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        d.execute(&batch).unwrap();
    }
    d
}

const QUERY: &str = "SELECT r.id, c.name FROM reads r JOIN chroms c ON r.chrom = c.chrom \
                     ORDER BY r.score DESC LIMIT 10";

fn analyze_at(d: &Database, par: usize) -> (unidb::ResultSet, OpStatsSnapshot) {
    d.set_parallelism(par);
    d.explain_analyze(QUERY).unwrap()
}

#[test]
fn counters_are_byte_identical_across_parallelism() {
    let d = seeded();
    let (rs1, s1) = analyze_at(&d, 1);
    let (rs4, s4) = analyze_at(&d, 4);

    assert_eq!(rs1.rows, rs4.rows, "results must not depend on parallelism");
    assert_eq!(
        s1.render_counters(),
        s4.render_counters(),
        "deterministic counters must match at parallelism 1 vs 4"
    );

    // The golden shape: TopN at the root fed by a hash join over two scans.
    let golden = s1.render_counters();
    assert!(golden.contains("TopN"), "plan should fuse sort+limit into TopN:\n{golden}");
    assert!(golden.contains("HashJoin"), "equi-join should hash:\n{golden}");
    assert_eq!(golden.matches("SeqScan").count(), 2, "two base scans:\n{golden}");

    // Root rows_out matches the result set, scans report real page counts.
    assert_eq!(s1.rows_out as usize, rs1.rows.len());
    fn scans(s: &OpStatsSnapshot, out: &mut Vec<u64>) {
        if s.is_scan {
            out.push(s.pages_read);
        }
        s.children.iter().for_each(|c| scans(c, out));
    }
    let mut pages = Vec::new();
    scans(&s1, &mut pages);
    assert_eq!(pages.len(), 2);
    assert!(pages.iter().any(|&p| p > 1), "big table spans multiple pages: {pages:?}");
}

#[test]
fn partition_counters_are_deterministic_and_stats_driven() {
    let d = seeded();
    let (_, s1) = analyze_at(&d, 1);
    let (_, s4) = analyze_at(&d, 4);
    let golden = s1.render_counters();
    assert_eq!(golden, s4.render_counters(), "partition counters must not depend on parallelism");
    // Stats pick the 4-row chroms table as build side; partition count is a
    // pure function of the build rows (4 rows -> a single partition).
    assert!(golden.contains("build=right"), "small side should build:\n{golden}");
    assert!(golden.contains("partitions=1"), "tiny build fits one partition:\n{golden}");
    assert!(golden.contains("build_rows=4"), "build side is 4-row chroms:\n{golden}");

    // Aggregation partitions the same way at any parallelism.
    let agg = "SELECT chrom, count(*), min(score) FROM reads GROUP BY chrom";
    d.set_parallelism(1);
    let (r1, a1) = d.explain_analyze(agg).unwrap();
    d.set_parallelism(4);
    let (r4, a4) = d.explain_analyze(agg).unwrap();
    assert_eq!(r1.rows, r4.rows, "aggregate results must not depend on parallelism");
    assert_eq!(a1.render_counters(), a4.render_counters());
    assert!(
        a1.render_counters().contains("partitions=16"),
        "aggregation uses its fixed partition fan-out:\n{}",
        a1.render_counters()
    );
}

#[test]
fn explain_analyze_statement_reports_all_counters() {
    let d = seeded();
    let rs = d.execute(&format!("EXPLAIN ANALYZE {QUERY}")).unwrap();
    let text = rs.explain.expect("EXPLAIN ANALYZE returns an annotated plan");
    for needle in ["rows_out=", "batches=", "time_us=", "pages_read="] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Plain EXPLAIN stays cost-free: no counters.
    let rs = d.execute(&format!("EXPLAIN {QUERY}")).unwrap();
    let text = rs.explain.unwrap();
    assert!(!text.contains("rows_out="), "plain EXPLAIN must not execute:\n{text}");
}

#[test]
fn explain_analyze_rejects_writes() {
    let d = seeded();
    let err = d.execute("EXPLAIN ANALYZE INSERT INTO chroms VALUES (9, 'x')").unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("EXPLAIN ANALYZE"), "unexpected error: {msg}");
    // Nothing was inserted.
    let rs = d.execute("SELECT count(*) FROM chroms").unwrap();
    assert_eq!(rs.rows[0][0].as_int().unwrap(), 4);
}
