//! Golden tests for `EXPLAIN ANALYZE`.
//!
//! The acceptance bar: on a scan -> join -> TopN plan, the deterministic
//! counter rendering (`rows_out`, plus `pages_read` on scans) is
//! byte-identical at parallelism 1 and 4. `time_us` and `batches` vary
//! run to run and across parallelism, so only the full rendering shows
//! them.

use unidb::exec::stats::OpStatsSnapshot;
use unidb::Database;

/// Enough rows that a parallel scan actually splits into several morsels
/// (PAR_MIN_ROWS is 4096 and a morsel is 32 pages).
const BIG_ROWS: usize = 6000;

fn seeded() -> Database {
    let d = Database::in_memory();
    d.execute_script(
        "CREATE TABLE reads (id INT NOT NULL, chrom INT, score INT);
         CREATE TABLE chroms (chrom INT NOT NULL, name TEXT);",
    )
    .unwrap();
    for c in 0..4 {
        d.execute(&format!("INSERT INTO chroms VALUES ({c}, 'chr{c}')")).unwrap();
    }
    let mut batch = String::new();
    for i in 0..BIG_ROWS {
        if batch.is_empty() {
            batch.push_str("INSERT INTO reads VALUES ");
        } else {
            batch.push(',');
        }
        batch.push_str(&format!("({i}, {}, {})", i % 4, (i * 7919) % 100_000));
        if batch.len() > 60_000 {
            d.execute(&batch).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        d.execute(&batch).unwrap();
    }
    d
}

const QUERY: &str = "SELECT r.id, c.name FROM reads r JOIN chroms c ON r.chrom = c.chrom \
                     ORDER BY r.score DESC LIMIT 10";

fn analyze_at(d: &Database, par: usize) -> (unidb::ResultSet, OpStatsSnapshot) {
    d.set_parallelism(par);
    d.explain_analyze(QUERY).unwrap()
}

#[test]
fn counters_are_byte_identical_across_parallelism() {
    let d = seeded();
    let (rs1, s1) = analyze_at(&d, 1);
    let (rs4, s4) = analyze_at(&d, 4);

    assert_eq!(rs1.rows, rs4.rows, "results must not depend on parallelism");
    assert_eq!(
        s1.render_counters(),
        s4.render_counters(),
        "deterministic counters must match at parallelism 1 vs 4"
    );

    // The golden shape: TopN at the root fed by a hash join over two scans.
    let golden = s1.render_counters();
    assert!(golden.contains("TopN"), "plan should fuse sort+limit into TopN:\n{golden}");
    assert!(golden.contains("HashJoin"), "equi-join should hash:\n{golden}");
    assert_eq!(golden.matches("SeqScan").count(), 2, "two base scans:\n{golden}");

    // Root rows_out matches the result set, scans report real page counts.
    assert_eq!(s1.rows_out as usize, rs1.rows.len());
    fn scans(s: &OpStatsSnapshot, out: &mut Vec<u64>) {
        if s.is_scan {
            out.push(s.pages_read);
        }
        s.children.iter().for_each(|c| scans(c, out));
    }
    let mut pages = Vec::new();
    scans(&s1, &mut pages);
    assert_eq!(pages.len(), 2);
    assert!(pages.iter().any(|&p| p > 1), "big table spans multiple pages: {pages:?}");
}

#[test]
fn partition_counters_are_deterministic_and_stats_driven() {
    let d = seeded();
    let (_, s1) = analyze_at(&d, 1);
    let (_, s4) = analyze_at(&d, 4);
    let golden = s1.render_counters();
    assert_eq!(golden, s4.render_counters(), "partition counters must not depend on parallelism");
    // Stats pick the 4-row chroms table as build side; partition count is a
    // pure function of the build rows (4 rows -> a single partition).
    assert!(golden.contains("build=right"), "small side should build:\n{golden}");
    assert!(golden.contains("partitions=1"), "tiny build fits one partition:\n{golden}");
    assert!(golden.contains("build_rows=4"), "build side is 4-row chroms:\n{golden}");

    // Aggregation partitions the same way at any parallelism.
    let agg = "SELECT chrom, count(*), min(score) FROM reads GROUP BY chrom";
    d.set_parallelism(1);
    let (r1, a1) = d.explain_analyze(agg).unwrap();
    d.set_parallelism(4);
    let (r4, a4) = d.explain_analyze(agg).unwrap();
    assert_eq!(r1.rows, r4.rows, "aggregate results must not depend on parallelism");
    assert_eq!(a1.render_counters(), a4.render_counters());
    assert!(
        a1.render_counters().contains("partitions=16"),
        "aggregation uses its fixed partition fan-out:\n{}",
        a1.render_counters()
    );
}

#[test]
fn explain_analyze_statement_reports_all_counters() {
    let d = seeded();
    let rs = d.execute(&format!("EXPLAIN ANALYZE {QUERY}")).unwrap();
    let text = rs.explain.expect("EXPLAIN ANALYZE returns an annotated plan");
    for needle in
        ["rows_out=", "batches=", "time_us=", "pages_read=", "pages_skipped=", "segments_decoded="]
    {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Plain EXPLAIN stays cost-free: no counters.
    let rs = d.execute(&format!("EXPLAIN {QUERY}")).unwrap();
    let text = rs.explain.unwrap();
    assert!(!text.contains("rows_out="), "plain EXPLAIN must not execute:\n{text}");
}

/// Satellite: the golden pruning contract. On a table whose filter
/// column is clustered (page-ordered), a selective predicate skips most
/// pages via zone maps, the skip counters render byte-identically at
/// parallelism 1 and 4, and pruning never changes results.
#[test]
fn zone_map_pruning_skips_pages_and_stays_deterministic() {
    let d = seeded();
    // `id` increases in insert order, so per-page [min,max] ranges are
    // disjoint and a high cutoff refutes nearly every page.
    let cutoff = BIG_ROWS - BIG_ROWS / 100;
    let pruned = format!("SELECT id, score FROM reads WHERE id >= {cutoff}");

    d.set_parallelism(1);
    let (r1, s1) = d.explain_analyze(&pruned).unwrap();
    d.set_parallelism(4);
    let (r4, s4) = d.explain_analyze(&pruned).unwrap();
    assert_eq!(r1.rows, r4.rows, "pruned results must not depend on parallelism");
    let golden = s1.render_counters();
    assert_eq!(golden, s4.render_counters(), "skip counters must match at parallelism 1 vs 4");

    fn scan_of(s: &OpStatsSnapshot) -> Option<&OpStatsSnapshot> {
        if s.is_scan {
            return Some(s);
        }
        s.children.iter().find_map(scan_of)
    }
    let scan = scan_of(&s1).expect("plan has a scan");
    assert!(scan.pages_skipped > 0, "selective filter should skip pages:\n{golden}");
    assert!(
        scan.pages_skipped * 10 > scan.pages_read * 9,
        "clustered cutoff should refute ~99% of pages: skipped {} of {}",
        scan.pages_skipped,
        scan.pages_read,
    );
    assert!(scan.segments_decoded > 0, "visited pages decode referenced segments:\n{golden}");
    assert!(golden.contains("pages_skipped="), "rendering surfaces the counter:\n{golden}");

    // Correctness: pruning returns exactly what the unpruned scan finds.
    let mut expect: Vec<Vec<unidb::Datum>> = d
        .execute("SELECT id, score FROM reads")
        .unwrap()
        .rows
        .into_iter()
        .filter(|r| r[0].as_int().unwrap() >= cutoff as i64)
        .collect();
    let mut got = r1.rows.clone();
    let key = |r: &Vec<unidb::Datum>| r[0].as_int().unwrap();
    expect.sort_by_key(key);
    got.sort_by_key(key);
    assert_eq!(got, expect, "pruned scan must agree with the full scan");

    // An unselective predicate skips nothing — zones only refute.
    let (_, all) = d.explain_analyze("SELECT id FROM reads WHERE id >= 0").unwrap();
    let scan = scan_of(&all).expect("plan has a scan");
    assert_eq!(scan.pages_skipped, 0, "nothing to refute when every page matches");
}

/// Satellite: narrow projections decode only the referenced column
/// segments — a two-column projection over a three-column table touches
/// fewer segments than `SELECT *`.
#[test]
fn narrow_projection_decodes_fewer_segments() {
    let d = seeded();
    fn total_segments(s: &OpStatsSnapshot) -> u64 {
        s.segments_decoded + s.children.iter().map(total_segments).sum::<u64>()
    }
    let (_, narrow) = d.explain_analyze("SELECT id FROM reads").unwrap();
    let (_, wide) = d.explain_analyze("SELECT id, chrom, score FROM reads").unwrap();
    let (n, w) = (total_segments(&narrow), total_segments(&wide));
    assert!(n > 0 && w > 0, "both scans visit pages: narrow {n}, wide {w}");
    assert!(n * 2 < w, "1-column scan should decode under half of 3 columns: {n} vs {w}");
}

#[test]
fn explain_analyze_rejects_writes() {
    let d = seeded();
    let err = d.execute("EXPLAIN ANALYZE INSERT INTO chroms VALUES (9, 'x')").unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("EXPLAIN ANALYZE"), "unexpected error: {msg}");
    // Nothing was inserted.
    let rs = d.execute("SELECT count(*) FROM chroms").unwrap();
    assert_eq!(rs.rows[0][0].as_int().unwrap(), 4);
}
