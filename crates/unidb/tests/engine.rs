//! End-to-end engine tests: SQL in, rows out.

use std::sync::Arc;
use unidb::catalog::Role;
use unidb::{AccessMethod, Database, Datum, DbError, Rid};

fn db() -> Database {
    Database::in_memory()
}

fn ints(rs: &unidb::ResultSet) -> Vec<i64> {
    rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect()
}

fn texts(rs: &unidb::ResultSet) -> Vec<String> {
    rs.rows.iter().map(|r| r[0].as_text().unwrap().to_string()).collect()
}

fn seeded() -> Database {
    let d = db();
    d.execute_script(
        "CREATE TABLE genes (id INT NOT NULL, symbol TEXT, len INT, gc FLOAT);
         INSERT INTO genes VALUES
            (1, 'tp53', 1200, 0.46),
            (2, 'brca1', 5600, 0.41),
            (3, 'kras', 900, 0.38),
            (4, 'egfr', 2800, 0.51),
            (5, 'myc', 700, 0.55);",
    )
    .unwrap();
    d
}

#[test]
fn basic_crud_cycle() {
    let d = seeded();
    let rs = d.execute("SELECT symbol FROM genes WHERE id = 3").unwrap();
    assert_eq!(texts(&rs), vec!["kras"]);

    let rs = d.execute("UPDATE genes SET len = len + 100 WHERE symbol = 'myc'").unwrap();
    assert_eq!(rs.affected, 1);
    let rs = d.execute("SELECT len FROM genes WHERE symbol = 'myc'").unwrap();
    assert_eq!(ints(&rs), vec![800]);

    let rs = d.execute("DELETE FROM genes WHERE len < 1000").unwrap();
    assert_eq!(rs.affected, 2);
    let rs = d.execute("SELECT count(*) FROM genes").unwrap();
    assert_eq!(ints(&rs), vec![3]);
}

#[test]
fn ordering_limits_distinct() {
    let d = seeded();
    let rs = d.execute("SELECT symbol FROM genes ORDER BY len DESC LIMIT 2").unwrap();
    assert_eq!(texts(&rs), vec!["brca1", "egfr"]);

    d.execute("INSERT INTO genes VALUES (6, 'tp53', 999, 0.4)").unwrap();
    let rs = d.execute("SELECT DISTINCT symbol FROM genes ORDER BY symbol").unwrap();
    assert_eq!(rs.len(), 5);
}

#[test]
fn aggregation_group_having() {
    let d = db();
    d.execute_script(
        "CREATE TABLE obs (organism TEXT, reading FLOAT);
         INSERT INTO obs VALUES
           ('ecoli', 1.0), ('ecoli', 3.0), ('yeast', 10.0),
           ('yeast', 20.0), ('yeast', 30.0), ('human', 5.0);",
    )
    .unwrap();
    let rs = d
        .execute(
            "SELECT organism, count(*) AS n, avg(reading) AS mean \
             FROM obs GROUP BY organism HAVING count(*) >= 2 ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(rs.columns, vec!["organism", "n", "mean"]);
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.rows[0][0], Datum::Text("yeast".into()));
    assert_eq!(rs.rows[0][2], Datum::Float(20.0));
    assert_eq!(rs.rows[1][2], Datum::Float(2.0));

    // Global aggregate over empty input yields one row.
    let rs = d.execute("SELECT count(*), sum(reading) FROM obs WHERE reading > 99").unwrap();
    assert_eq!(rs.rows, vec![vec![Datum::Int(0), Datum::Null]]);

    // min/max/sum with DISTINCT.
    let rs =
        d.execute("SELECT min(reading), max(reading), count(DISTINCT organism) FROM obs").unwrap();
    assert_eq!(rs.rows[0], vec![Datum::Float(1.0), Datum::Float(30.0), Datum::Int(3)]);
}

#[test]
fn group_by_strictness() {
    let d = seeded();
    let err = d.execute("SELECT symbol, count(*) FROM genes GROUP BY len").unwrap_err();
    assert!(matches!(err, DbError::Parse(_)), "{err}");
}

#[test]
fn joins_inner_left_cross() {
    let d = db();
    d.execute_script(
        "CREATE TABLE g (id INT, name TEXT);
         CREATE TABLE p (gene_id INT, protein TEXT);
         INSERT INTO g VALUES (1, 'tp53'), (2, 'brca1'), (3, 'orphan');
         INSERT INTO p VALUES (1, 'P04637'), (2, 'P38398'), (2, 'ISOFORM2'), (9, 'dangling');",
    )
    .unwrap();

    let rs = d
        .execute(
            "SELECT g.name, p.protein FROM g INNER JOIN p ON g.id = p.gene_id ORDER BY p.protein",
        )
        .unwrap();
    assert_eq!(rs.len(), 3);

    let rs = d
        .execute(
            "SELECT g.name, p.protein FROM g LEFT JOIN p ON g.id = p.gene_id \
             WHERE p.protein IS NULL",
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Datum::Text("orphan".into()));

    let rs = d.execute("SELECT count(*) FROM g CROSS JOIN p").unwrap();
    assert_eq!(ints(&rs), vec![12]);

    // Comma join is a cross join.
    let rs = d.execute("SELECT count(*) FROM g, p WHERE g.id = p.gene_id").unwrap();
    assert_eq!(ints(&rs), vec![3]);
}

#[test]
fn hash_join_is_planned_for_equi_joins() {
    let d = db();
    d.execute_script(
        "CREATE TABLE a (x INT); CREATE TABLE b (y INT);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (1);",
    )
    .unwrap();
    let rs = d.execute("EXPLAIN SELECT * FROM a JOIN b ON a.x = b.y").unwrap();
    let plan = rs.explain.unwrap();
    assert!(plan.contains("HashJoin"), "{plan}");

    let rs = d.execute("EXPLAIN SELECT * FROM a JOIN b ON a.x < b.y").unwrap();
    let plan = rs.explain.unwrap();
    assert!(plan.contains("NestedLoopJoin"), "{plan}");
}

/// NULL join keys never match — `NULL = NULL` is UNKNOWN under
/// three-valued logic, so the hash table must not treat NULL as an
/// ordinary key value on either side.
#[test]
fn hash_join_null_keys_never_match() {
    let d = db();
    d.execute_script(
        "CREATE TABLE l (k INT, tag TEXT);
         CREATE TABLE r (k INT, val TEXT);
         INSERT INTO l VALUES (1, 'a'), (NULL, 'b'), (2, 'c'), (NULL, 'd');
         INSERT INTO r VALUES (1, 'x'), (NULL, 'y'), (3, 'z');",
    )
    .unwrap();
    // INNER: the two NULL keys on the left must not pair with the NULL
    // key on the right.
    let rs = d.execute("SELECT l.tag, r.val FROM l JOIN r ON l.k = r.k").unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Datum::Text("a".into()));
    // LEFT: NULL-keyed left rows survive NULL-padded instead of matching
    // the right side's NULL key.
    let rs =
        d.execute("SELECT l.tag, r.val FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.tag").unwrap();
    assert_eq!(rs.len(), 4);
    let padded: Vec<String> = rs
        .rows
        .iter()
        .filter(|row| row[1] == Datum::Null)
        .map(|row| row[0].as_text().unwrap().to_string())
        .collect();
    assert_eq!(padded, vec!["b", "c", "d"]);
}

/// The planner's stats-driven build-side choice is a physical detail: it
/// must never leak into output column order or LEFT-join semantics.
#[test]
fn build_side_choice_follows_stats_and_preserves_output() {
    let d = db();
    d.execute_script("CREATE TABLE big (k INT, n INT); CREATE TABLE small (k INT, tag TEXT);")
        .unwrap();
    d.execute("INSERT INTO small VALUES (0, 'z'), (1, 'o'), (2, 't')").unwrap();
    let mut batch = String::from("INSERT INTO big VALUES ");
    for i in 0..200 {
        if i > 0 {
            batch.push(',');
        }
        batch.push_str(&format!("({}, {i})", i % 3));
    }
    d.execute(&batch).unwrap();

    // The smaller input builds, whichever side of the JOIN it sits on.
    let plan = d
        .execute("EXPLAIN SELECT * FROM small JOIN big ON small.k = big.k")
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("build=left"), "small left side should build:\n{plan}");
    let plan = d
        .execute("EXPLAIN SELECT * FROM big JOIN small ON big.k = small.k")
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("build=right"), "small right side should build:\n{plan}");

    // LEFT join must keep building the preserved (right) side even though
    // the left input is far smaller.
    let plan = d
        .execute("EXPLAIN SELECT * FROM small LEFT JOIN big ON small.k = big.k")
        .unwrap()
        .explain
        .unwrap();
    assert!(
        plan.contains("HashJoin Left") && plan.contains("build=right"),
        "LEFT join pins the build side:\n{plan}"
    );

    // Output schema and rows stay in declared left-then-right order even
    // when the build side is the left input.
    let rs = d.execute("SELECT * FROM small JOIN big ON small.k = big.k WHERE big.n = 7 ").unwrap();
    assert_eq!(rs.columns, vec!["k", "tag", "k", "n"]);
    assert_eq!(
        rs.rows,
        vec![vec![Datum::Int(1), Datum::Text("o".into()), Datum::Int(1), Datum::Int(7),]]
    );
    // Same query spelled with the big table first: same data, swapped
    // column order, and counts agree with the NDV estimate (200/3 rows
    // share each key).
    let rs = d.execute("SELECT count(*) FROM big JOIN small ON big.k = small.k").unwrap();
    assert_eq!(ints(&rs), vec![200]);
}

#[test]
fn btree_index_planning_and_results_match_scan() {
    let d = seeded();
    for i in 6..2000 {
        d.execute(&format!("INSERT INTO genes VALUES ({i}, 'g{i}', {}, 0.5)", i * 3)).unwrap();
    }
    let scan = d.execute("SELECT symbol FROM genes WHERE id = 1500").unwrap();
    d.execute("CREATE UNIQUE INDEX ON genes (id)").unwrap();
    let plan =
        d.execute("EXPLAIN SELECT symbol FROM genes WHERE id = 1500").unwrap().explain.unwrap();
    assert!(plan.contains("IndexEqScan"), "{plan}");
    let indexed = d.execute("SELECT symbol FROM genes WHERE id = 1500").unwrap();
    assert_eq!(scan.rows, indexed.rows);

    // Range scans use the index too.
    let plan = d
        .execute("EXPLAIN SELECT count(*) FROM genes WHERE id BETWEEN 10 AND 20")
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("IndexRangeScan"), "{plan}");
    let rs = d.execute("SELECT count(*) FROM genes WHERE id BETWEEN 10 AND 20").unwrap();
    assert_eq!(ints(&rs), vec![11]);

    let rs = d.execute("SELECT count(*) FROM genes WHERE id < 10").unwrap();
    assert_eq!(ints(&rs), vec![9]);
    let rs = d.execute("SELECT count(*) FROM genes WHERE 1990 <= id").unwrap();
    assert_eq!(ints(&rs), vec![10]);
}

/// Found by qdiff (seed 4, shrunk): NULL keys sort first in the B-tree, so
/// an index range scan with an open low end (`col <= k`, `col < k`) used to
/// sweep them in — but `NULL <= k` is never true under three-valued logic.
/// NULL literals in the predicate are the dual trap: `col = NULL` and
/// `col BETWEEN NULL AND k` match nothing, yet an index probe keyed on NULL
/// would find the NULL entries.
#[test]
fn index_range_scan_excludes_null_keys() {
    let d = db();
    d.execute("CREATE TABLE t (v INT)").unwrap();
    d.execute("CREATE INDEX ON t (v)").unwrap();
    d.execute("INSERT INTO t VALUES (NULL), (3), (NULL), (8), (12)").unwrap();

    let plan = d.execute("EXPLAIN SELECT count(*) FROM t WHERE v <= 8").unwrap().explain.unwrap();
    assert!(plan.contains("IndexRangeScan"), "{plan}");
    let rs = d.execute("SELECT count(*) FROM t WHERE v <= 8").unwrap();
    assert_eq!(ints(&rs), vec![2]);
    let rs = d.execute("SELECT count(*) FROM t WHERE v < 9").unwrap();
    assert_eq!(ints(&rs), vec![2]);
    // The closed-low-end direction never included NULLs; keep it pinned.
    let rs = d.execute("SELECT count(*) FROM t WHERE v >= 3").unwrap();
    assert_eq!(ints(&rs), vec![3]);

    // NULL literals: unsatisfiable predicates must yield nothing even with
    // an index available.
    let rs = d.execute("SELECT count(*) FROM t WHERE v = NULL").unwrap();
    assert_eq!(ints(&rs), vec![0]);
    let rs = d.execute("SELECT count(*) FROM t WHERE v BETWEEN NULL AND 8").unwrap();
    assert_eq!(ints(&rs), vec![0]);
    let rs = d.execute("SELECT count(*) FROM t WHERE v <= NULL").unwrap();
    assert_eq!(ints(&rs), vec![0]);
}

#[test]
fn unique_index_enforced() {
    let d = seeded();
    d.execute("CREATE UNIQUE INDEX ON genes (id)").unwrap();
    let err = d.execute("INSERT INTO genes VALUES (3, 'dup', 1, 0.1)").unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
    // The failed insert left nothing behind.
    let rs = d.execute("SELECT count(*) FROM genes").unwrap();
    assert_eq!(ints(&rs), vec![5]);
    // Updates respect it too.
    let err = d.execute("UPDATE genes SET id = 1 WHERE id = 2").unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
}

#[test]
fn not_null_and_type_checking() {
    let d = seeded();
    let err = d.execute("INSERT INTO genes VALUES (NULL, 'x', 1, 0.1)").unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)));
    let err = d.execute("INSERT INTO genes VALUES ('oops', 'x', 1, 0.1)").unwrap_err();
    assert!(matches!(err, DbError::TypeMismatch(_)));
    // INT literals widen into FLOAT columns.
    d.execute("INSERT INTO genes (id, gc) VALUES (99, 1)").unwrap();
    let rs = d.execute("SELECT gc FROM genes WHERE id = 99").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Float(1.0));
    // Unmentioned columns become NULL.
    let rs = d.execute("SELECT symbol FROM genes WHERE id = 99").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Null);
}

#[test]
fn access_control_public_vs_user_space() {
    let d = db();
    let maintainer = Role::Maintainer;
    let alice = Role::User("alice".into());
    let bob = Role::User("bob".into());

    d.execute_as("CREATE TABLE warehouse (id INT)", &maintainer).unwrap();
    d.execute_as("INSERT INTO warehouse VALUES (1)", &maintainer).unwrap();

    // Alice can read public data but not write it.
    let rs = d.execute_as("SELECT * FROM warehouse", &alice).unwrap();
    assert_eq!(rs.len(), 1);
    let err = d.execute_as("INSERT INTO warehouse VALUES (2)", &alice).unwrap_err();
    assert!(matches!(err, DbError::AccessDenied(_)));
    let err = d.execute_as("DROP TABLE warehouse", &alice).unwrap_err();
    assert!(matches!(err, DbError::AccessDenied(_)));

    // Alice gets her own space implicitly.
    d.execute_as("CREATE TABLE notes (txt TEXT)", &alice).unwrap();
    d.execute_as("INSERT INTO notes VALUES ('mine')", &alice).unwrap();
    // Bob cannot write into alice's space.
    let err = d.execute_as("INSERT INTO alice.notes VALUES ('intruder')", &bob).unwrap_err();
    assert!(matches!(err, DbError::AccessDenied(_)));
    // But unqualified reads resolve to each user's own space first.
    let rs = d.execute_as("SELECT * FROM alice.notes", &bob).unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn transactions_commit_and_rollback() {
    let d = seeded();
    d.execute("BEGIN").unwrap();
    d.execute("INSERT INTO genes VALUES (100, 'tmp', 1, 0.1)").unwrap();
    d.execute("UPDATE genes SET symbol = 'changed' WHERE id = 1").unwrap();
    d.execute("DELETE FROM genes WHERE id = 2").unwrap();
    // Mid-transaction state is visible to the session.
    assert_eq!(ints(&d.execute("SELECT count(*) FROM genes").unwrap()), vec![5]);
    d.execute("ROLLBACK").unwrap();
    // All three mutations reverted.
    assert_eq!(ints(&d.execute("SELECT count(*) FROM genes").unwrap()), vec![5]);
    assert_eq!(texts(&d.execute("SELECT symbol FROM genes WHERE id = 1").unwrap()), vec!["tp53"]);
    assert_eq!(ints(&d.execute("SELECT count(*) FROM genes WHERE id = 2").unwrap()), vec![1]);

    d.execute("BEGIN").unwrap();
    d.execute("INSERT INTO genes VALUES (100, 'kept', 1, 0.1)").unwrap();
    d.execute("COMMIT").unwrap();
    assert_eq!(ints(&d.execute("SELECT count(*) FROM genes").unwrap()), vec![6]);

    assert!(d.execute("COMMIT").is_err());
    assert!(d.execute("ROLLBACK").is_err());
    d.execute("BEGIN").unwrap();
    assert!(d.execute("BEGIN").is_err());
    d.execute("ROLLBACK").unwrap();
}

#[test]
fn rollback_restores_index_consistency() {
    let d = seeded();
    d.execute("CREATE UNIQUE INDEX ON genes (id)").unwrap();
    d.execute("BEGIN").unwrap();
    d.execute("DELETE FROM genes WHERE id = 1").unwrap();
    d.execute("ROLLBACK").unwrap();
    // id 1 is findable through the index again.
    let plan = d.execute("EXPLAIN SELECT symbol FROM genes WHERE id = 1").unwrap();
    assert!(plan.explain.unwrap().contains("IndexEqScan"));
    assert_eq!(texts(&d.execute("SELECT symbol FROM genes WHERE id = 1").unwrap()), vec!["tp53"]);
    // And re-inserting it violates uniqueness (the index entry is back).
    assert!(d.execute("INSERT INTO genes VALUES (1, 'dup', 1, 0.1)").is_err());
}

#[test]
fn user_defined_scalar_functions_everywhere() {
    let d = seeded();
    d.register_scalar(
        "double_it",
        Arc::new(|args| {
            Ok(match args[0].as_int() {
                Some(i) => Datum::Int(i * 2),
                None => Datum::Null,
            })
        }),
    )
    .unwrap();
    // SELECT list.
    let rs = d.execute("SELECT double_it(len) FROM genes WHERE id = 1").unwrap();
    assert_eq!(ints(&rs), vec![2400]);
    // WHERE.
    let rs = d.execute("SELECT count(*) FROM genes WHERE double_it(len) > 5000").unwrap();
    assert_eq!(ints(&rs), vec![2]);
    // ORDER BY.
    let rs = d.execute("SELECT symbol FROM genes ORDER BY double_it(len) LIMIT 1").unwrap();
    assert_eq!(texts(&rs), vec!["myc"]);
    // GROUP BY.
    let rs = d
        .execute("SELECT double_it(id % 2), count(*) FROM genes GROUP BY double_it(id % 2) ORDER BY 1 DESC")
        .unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn user_defined_aggregate() {
    let d = seeded();
    struct Product(f64);
    impl unidb::expr::func::Accumulator for Product {
        fn update(&mut self, v: &Datum) -> Result<(), DbError> {
            if let Some(f) = v.as_float() {
                self.0 *= f;
            }
            Ok(())
        }
        fn finish(&self) -> Datum {
            Datum::Float(self.0)
        }
    }
    d.register_aggregate("product", Arc::new(|| Box::new(Product(1.0)))).unwrap();
    let rs = d.execute("SELECT product(gc) FROM genes WHERE id IN (1, 3)").unwrap();
    let v = rs.rows[0][0].as_float().unwrap();
    assert!((v - 0.46 * 0.38).abs() < 1e-9);
}

#[test]
fn opaque_types_store_and_render() {
    let d = db();
    let ty = d
        .register_opaque_type("dna", Some(Arc::new(|b: &[u8]| format!("<dna {} bytes>", b.len()))))
        .unwrap();
    d.execute("CREATE TABLE frags (id INT, seq dna)").unwrap();
    // Opaque values cannot come from SQL literals; they arrive through the
    // API (the adapter path) — simulate that here.
    d.register_scalar(
        "mk_payload",
        Arc::new(move |args| {
            let n = args[0].as_int().unwrap_or(0) as usize;
            Ok(Datum::opaque(1, vec![7u8; n]))
        }),
    )
    .unwrap();
    assert_eq!(ty, 1);
    d.execute("INSERT INTO frags VALUES (1, mk_payload(10))").unwrap();
    let rs = d.execute("SELECT id, seq FROM frags").unwrap();
    assert!(matches!(rs.rows[0][1], Datum::Opaque(1, _)));
    let rendered = d.render(&rs);
    assert!(rendered.contains("<dna 10 bytes>"), "{rendered}");
    // Type mismatch against a different opaque id is caught.
    d.register_opaque_type("protein", None).unwrap();
    d.register_scalar("mk_protein", Arc::new(|_| Ok(Datum::opaque(2, vec![])))).unwrap();
    assert!(d.execute("INSERT INTO frags VALUES (2, mk_protein(0))").is_err());
}

/// A toy UDI: indexes integer values by parity, answers `same_parity(col, n)`.
struct ParityIndex {
    even: Vec<Rid>,
    odd: Vec<Rid>,
}

impl AccessMethod for ParityIndex {
    fn name(&self) -> &str {
        "parity"
    }
    fn on_insert(&mut self, rid: Rid, value: &Datum) {
        if let Some(i) = value.as_int() {
            if i % 2 == 0 {
                self.even.push(rid);
            } else {
                self.odd.push(rid);
            }
        }
    }
    fn on_delete(&mut self, rid: Rid, value: &Datum) {
        if let Some(i) = value.as_int() {
            let v = if i % 2 == 0 { &mut self.even } else { &mut self.odd };
            v.retain(|r| *r != rid);
        }
    }
    fn supports(&self, func: &str) -> bool {
        func == "same_parity"
    }
    fn probe(&self, func: &str, args: &[Datum]) -> Option<Vec<Rid>> {
        if func != "same_parity" {
            return None;
        }
        let n = args.first()?.as_int()?;
        Some(if n % 2 == 0 { self.even.clone() } else { self.odd.clone() })
    }
    fn selectivity(&self, _func: &str, _args: &[Datum]) -> Option<f64> {
        Some(0.5)
    }
}

#[test]
fn user_defined_index_drives_the_plan() {
    let d = seeded();
    d.register_scalar(
        "same_parity",
        Arc::new(|args| {
            let (a, b) = (args[0].as_int(), args[1].as_int());
            Ok(match (a, b) {
                (Some(a), Some(b)) => Datum::Bool(a % 2 == b % 2),
                _ => Datum::Null,
            })
        }),
    )
    .unwrap();
    // Without the index: sequential scan.
    let plan = d
        .execute("EXPLAIN SELECT symbol FROM genes WHERE same_parity(id, 2)")
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("SeqScan"), "{plan}");

    d.register_access_method("genes", "id", Box::new(ParityIndex { even: vec![], odd: vec![] }))
        .unwrap();
    let plan = d
        .execute("EXPLAIN SELECT symbol FROM genes WHERE same_parity(id, 2)")
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("UdiScan"), "{plan}");
    assert!(plan.contains("recheck"), "UDI scans must re-check the predicate: {plan}");

    let rs = d.execute("SELECT symbol FROM genes WHERE same_parity(id, 2) ORDER BY id").unwrap();
    assert_eq!(texts(&rs), vec!["brca1", "egfr"]);

    // Index stays correct through mutations.
    d.execute("DELETE FROM genes WHERE id = 2").unwrap();
    d.execute("INSERT INTO genes VALUES (6, 'new_even', 10, 0.5)").unwrap();
    let rs = d.execute("SELECT symbol FROM genes WHERE same_parity(id, 2) ORDER BY id").unwrap();
    assert_eq!(texts(&rs), vec!["egfr", "new_even"]);
}

#[test]
fn durability_recovery_roundtrip() {
    let dir = std::env::temp_dir().join(format!("unidb-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let d = Database::open(&dir).unwrap();
        d.recover().unwrap();
        d.execute_script_as(
            "CREATE TABLE t (id INT, name TEXT);
             CREATE UNIQUE INDEX ON t (id);
             INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three');
             UPDATE t SET name = 'TWO' WHERE id = 2;
             DELETE FROM t WHERE id = 3;",
            &Role::Maintainer,
        )
        .unwrap();
    }
    // Reopen: WAL replay restores everything, including the index.
    {
        let d = Database::open(&dir).unwrap();
        d.recover().unwrap();
        let rs = d.execute("SELECT name FROM t ORDER BY id").unwrap();
        assert_eq!(texts(&rs), vec!["one", "TWO"]);
        let plan = d.execute("EXPLAIN SELECT name FROM t WHERE id = 1").unwrap();
        assert!(plan.explain.unwrap().contains("IndexEqScan"));
        // Checkpoint compacts, and the database still reopens correctly.
        d.checkpoint().unwrap();
        d.execute_as("INSERT INTO t VALUES (4, 'four')", &Role::Maintainer).unwrap();
    }
    {
        let d = Database::open(&dir).unwrap();
        d.recover().unwrap();
        let rs = d.execute("SELECT name FROM t ORDER BY id").unwrap();
        assert_eq!(texts(&rs), vec!["one", "TWO", "four"]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn select_without_from_and_scalar_math() {
    let d = db();
    let rs = d.execute("SELECT 2 + 3 * 4 AS v, upper('ok')").unwrap();
    assert_eq!(rs.rows[0], vec![Datum::Int(14), Datum::Text("OK".into())]);
    assert_eq!(rs.columns, vec!["v", "upper"]);
}

#[test]
fn predicate_pushdown_visible_in_plan() {
    let d = db();
    d.execute_script(
        "CREATE TABLE a (x INT, note TEXT); CREATE TABLE b (y INT);
         INSERT INTO a VALUES (1, 'keep'), (2, 'drop');
         INSERT INTO b VALUES (1), (2);",
    )
    .unwrap();
    let plan = d
        .execute("EXPLAIN SELECT * FROM a JOIN b ON a.x = b.y WHERE a.note = 'keep' AND b.y > 0")
        .unwrap()
        .explain
        .unwrap();
    // Both single-table conjuncts are pushed into their scans.
    let scan_lines: Vec<&str> = plan.lines().filter(|l| l.contains("SeqScan")).collect();
    assert!(scan_lines.iter().any(|l| l.contains("user.a") && l.contains("keep")), "{plan}");
    assert!(scan_lines.iter().any(|l| l.contains("user.b") && l.contains("y")), "{plan}");

    // But never into the null-padded side of a LEFT JOIN.
    let plan = d
        .execute("EXPLAIN SELECT * FROM a LEFT JOIN b ON a.x = b.y WHERE b.y = 1")
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("Filter"), "{plan}");
}

#[test]
fn errors_are_informative() {
    let d = seeded();
    assert!(matches!(d.execute("SELECT * FROM missing").unwrap_err(), DbError::NotFound { .. }));
    assert!(matches!(d.execute("SELECT nope FROM genes").unwrap_err(), DbError::NotFound { .. }));
    assert!(matches!(
        d.execute("SELECT no_such_fn(id) FROM genes").unwrap_err(),
        DbError::NotFound { .. }
    ));
    assert!(d.execute("CREATE TABLE genes (x INT)").is_err());
    assert!(d.execute("INSERT INTO genes VALUES (1)").is_err(), "arity mismatch");
}

#[test]
fn big_table_with_overflow_rows() {
    let d = db();
    d.execute("CREATE TABLE blobs (id INT, data TEXT)").unwrap();
    // Rows bigger than a page exercise the heap overflow path through SQL.
    let big = "X".repeat(50_000);
    for i in 0..20 {
        d.execute(&format!("INSERT INTO blobs VALUES ({i}, '{big}')")).unwrap();
    }
    let rs = d.execute("SELECT count(*), min(length(data)) FROM blobs").unwrap();
    assert_eq!(rs.rows[0], vec![Datum::Int(20), Datum::Int(50_000)]);
}

#[test]
fn null_semantics_in_queries() {
    let d = db();
    d.execute_script(
        "CREATE TABLE t (id INT, v INT);
         INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30);",
    )
    .unwrap();
    // NULLs never match comparisons.
    let rs = d.execute("SELECT id FROM t WHERE v > 5").unwrap();
    assert_eq!(rs.len(), 2);
    let rs = d.execute("SELECT id FROM t WHERE v IS NULL").unwrap();
    assert_eq!(ints(&rs), vec![2]);
    // ORDER BY puts NULLs LAST under ASC and FIRST under DESC (the
    // reversal), matching PostgreSQL defaults.
    let rs = d.execute("SELECT id FROM t ORDER BY v").unwrap();
    assert_eq!(ints(&rs), vec![1, 3, 2]);
    let rs = d.execute("SELECT id FROM t ORDER BY v DESC").unwrap();
    assert_eq!(ints(&rs), vec![2, 3, 1]);
    // Aggregates skip NULLs; count(*) does not.
    let rs = d.execute("SELECT count(v), count(*), sum(v) FROM t").unwrap();
    assert_eq!(rs.rows[0], vec![Datum::Int(2), Datum::Int(3), Datum::Int(40)]);
    // coalesce patches them.
    let rs = d.execute("SELECT sum(coalesce(v, 0) + 1) FROM t").unwrap();
    assert_eq!(ints(&rs), vec![43]);
}

/// Multi-key ORDER BY is a stable sort: rows tied on every key keep the
/// order the input produced them in, and secondary keys only reorder
/// within primary-key groups. This is a documented guarantee, not an
/// implementation accident.
#[test]
fn order_by_multi_key_stability() {
    let d = db();
    d.execute_script(
        "CREATE TABLE t (id INT, a INT, b INT);
         INSERT INTO t VALUES (1, 2, 9), (2, 1, 5), (3, 2, 9), (4, 1, 7), (5, 2, 3);",
    )
    .unwrap();
    // Ties on (a, b) — ids 1 and 3 — keep insertion order.
    let rs = d.execute("SELECT id FROM t ORDER BY a, b").unwrap();
    assert_eq!(ints(&rs), vec![2, 4, 5, 1, 3]);
    // Same with the secondary key descending: ties still keep order.
    let rs = d.execute("SELECT id FROM t ORDER BY a, b DESC").unwrap();
    assert_eq!(ints(&rs), vec![4, 2, 1, 3, 5]);
    // NULL keys: last under ASC, and ties among NULLs are stable too.
    d.execute("INSERT INTO t VALUES (6, NULL, 1), (7, NULL, 1)").unwrap();
    let rs = d.execute("SELECT id FROM t ORDER BY a, b").unwrap();
    assert_eq!(ints(&rs), vec![2, 4, 5, 1, 3, 6, 7]);
}

#[test]
fn limit_offset_pagination() {
    let d = db();
    d.execute("CREATE TABLE t (id INT)").unwrap();
    for i in 1..=10 {
        d.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let rs = d.execute("SELECT id FROM t ORDER BY id LIMIT 3 OFFSET 4").unwrap();
    assert_eq!(ints(&rs), vec![5, 6, 7]);
    // OFFSET past the end yields nothing; OFFSET without LIMIT skips only.
    let rs = d.execute("SELECT id FROM t ORDER BY id LIMIT 5 OFFSET 100").unwrap();
    assert!(rs.rows.is_empty());
    let rs = d.execute("SELECT id FROM t ORDER BY id OFFSET 8").unwrap();
    assert_eq!(ints(&rs), vec![9, 10]);
    let rs = d.execute("SELECT id FROM t ORDER BY id LIMIT 0 OFFSET 2").unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn distinct_interacts_with_order_and_limit() {
    let d = db();
    d.execute_script(
        "CREATE TABLE t (grp TEXT, v INT);
         INSERT INTO t VALUES ('b', 2), ('a', 1), ('b', 2), ('c', 3), ('a', 1);",
    )
    .unwrap();
    let rs = d.execute("SELECT DISTINCT grp, v FROM t ORDER BY v DESC LIMIT 2").unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.rows[0][0], Datum::Text("c".into()));
    assert_eq!(rs.rows[1][0], Datum::Text("b".into()));
}

#[test]
fn left_join_feeds_aggregation() {
    let d = db();
    d.execute_script(
        "CREATE TABLE g (id INT, name TEXT);
         CREATE TABLE hits (gene_id INT);
         INSERT INTO g VALUES (1, 'a'), (2, 'b'), (3, 'c');
         INSERT INTO hits VALUES (1), (1), (3);",
    )
    .unwrap();
    // count(h.gene_id) counts only matched rows: null-padded rows add 0.
    let rs = d
        .execute(
            "SELECT g.name, count(hits.gene_id) AS n FROM g              LEFT JOIN hits ON g.id = hits.gene_id              GROUP BY g.name ORDER BY g.name",
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Datum::Text("a".into()), Datum::Int(2)],
            vec![Datum::Text("b".into()), Datum::Int(0)],
            vec![Datum::Text("c".into()), Datum::Int(1)],
        ]
    );
}

#[test]
fn in_list_and_between_with_index() {
    let d = db();
    d.execute("CREATE TABLE t (id INT, tag TEXT)").unwrap();
    for i in 0..200 {
        d.execute(&format!("INSERT INTO t VALUES ({i}, 'x{}')", i % 7)).unwrap();
    }
    d.execute("CREATE UNIQUE INDEX ON t (id)").unwrap();
    let rs = d.execute("SELECT count(*) FROM t WHERE id IN (3, 77, 199, 500)").unwrap();
    assert_eq!(ints(&rs), vec![3]);
    // BETWEEN uses the range path and composes with another predicate.
    let rs = d.execute("SELECT count(*) FROM t WHERE id BETWEEN 50 AND 90 AND tag = 'x1'").unwrap();
    let brute =
        d.execute("SELECT count(*) FROM t WHERE id >= 50 AND id <= 90 AND tag = 'x1'").unwrap();
    assert_eq!(rs.rows, brute.rows);
}

#[test]
fn text_ops_and_like_in_queries() {
    let d = db();
    d.execute_script(
        "CREATE TABLE p (name TEXT);
         INSERT INTO p VALUES ('alpha kinase'), ('beta kinase'), ('gamma phosphatase');",
    )
    .unwrap();
    let rs = d.execute("SELECT count(*) FROM p WHERE name LIKE '%kinase'").unwrap();
    assert_eq!(ints(&rs), vec![2]);
    let rs = d
        .execute("SELECT upper(substr(name, 0, 5)) FROM p WHERE name NOT LIKE '%kinase' ")
        .unwrap();
    assert_eq!(rs.rows[0][0], Datum::Text("GAMMA".into()));
    // Text concatenation via +.
    let rs = d.execute("SELECT name + '!' FROM p LIMIT 1").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Text("alpha kinase!".into()));
}

#[test]
fn update_through_expressions_and_self_reference() {
    let d = db();
    d.execute_script(
        "CREATE TABLE acc (id INT, balance FLOAT);
         INSERT INTO acc VALUES (1, 10.0), (2, 20.0);",
    )
    .unwrap();
    d.execute("UPDATE acc SET balance = balance * 2 + id").unwrap();
    let rs = d.execute("SELECT balance FROM acc ORDER BY id").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Float(21.0));
    assert_eq!(rs.rows[1][0], Datum::Float(42.0));
}

#[test]
fn medium_scale_consistency() {
    let d = db();
    d.execute("CREATE TABLE n (v INT)").unwrap();
    d.execute("BEGIN").unwrap();
    for i in 0..5000 {
        d.execute(&format!("INSERT INTO n VALUES ({i})")).unwrap();
    }
    d.execute("COMMIT").unwrap();
    let rs = d.execute("SELECT count(*), sum(v), min(v), max(v) FROM n").unwrap();
    assert_eq!(
        rs.rows[0],
        vec![Datum::Int(5000), Datum::Int(4999 * 5000 / 2), Datum::Int(0), Datum::Int(4999)]
    );
    let rs = d.execute("SELECT count(*) FROM n WHERE v % 7 = 0").unwrap();
    assert_eq!(ints(&rs), vec![715]);
}

// ---------------------------------------------------------------------------
// Vectorized / parallel execution (PR 4)
// ---------------------------------------------------------------------------

/// `ORDER BY + LIMIT` plans as a fused, bounded `TopN` operator — the
/// golden EXPLAIN shape — and produces exactly the stable-sort window.
#[test]
fn explain_shows_fused_top_n() {
    let d = seeded();
    let plan = d
        .execute("EXPLAIN SELECT symbol FROM genes ORDER BY len DESC LIMIT 2")
        .unwrap()
        .explain
        .unwrap();
    assert_eq!(plan, "Project [symbol]\n  TopN [len DESC] limit 2\n    SeqScan user.genes\n");
    assert!(!plan.contains("Sort"), "Sort should be fused away:\n{plan}");

    // OFFSET rides along inside the heap bound.
    let plan = d
        .execute("EXPLAIN SELECT symbol FROM genes ORDER BY len LIMIT 2 OFFSET 1")
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("TopN [len] limit 2 offset 1"), "plan:\n{plan}");

    // DISTINCT between Sort and Limit blocks the fusion (it changes which
    // rows the window sees), so the plan keeps the unfused pair.
    let plan = d
        .execute("EXPLAIN SELECT DISTINCT symbol FROM genes ORDER BY symbol LIMIT 2")
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("Limit") && plan.contains("Sort") && !plan.contains("TopN"));
}

/// Top-N reproduces stable-sort-then-window semantics exactly, ties and
/// OFFSET included.
#[test]
fn top_n_matches_sort_limit_semantics() {
    let d = db();
    d.execute("CREATE TABLE t (id INT, v INT)").unwrap();
    // Many ties on v: stability means lowest insertion order wins.
    for i in 0..500 {
        d.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 7)).unwrap();
    }
    let rs = d.execute("SELECT id FROM t ORDER BY v LIMIT 5").unwrap();
    assert_eq!(ints(&rs), vec![0, 7, 14, 21, 28]);
    let rs = d.execute("SELECT id FROM t ORDER BY v LIMIT 4 OFFSET 3").unwrap();
    assert_eq!(ints(&rs), vec![21, 28, 35, 42]);
    let rs = d.execute("SELECT id FROM t ORDER BY v DESC, id DESC LIMIT 3").unwrap();
    assert_eq!(ints(&rs), vec![496, 489, 482]);
    // Window larger than the table degrades to a full sort.
    let rs = d.execute("SELECT id FROM t ORDER BY v, id LIMIT 10000").unwrap();
    assert_eq!(rs.len(), 500);
}

/// A bare LIMIT stops pulling from the scan once satisfied: the engine's
/// page counter must move by far fewer pages than the table holds.
#[test]
fn limit_short_circuits_the_scan() {
    let d = db();
    d.execute("CREATE TABLE big (id INT, v INT)").unwrap();
    for chunk in (0..100_000).collect::<Vec<i64>>().chunks(1000) {
        let values: Vec<String> = chunk.iter().map(|i| format!("({i}, {})", i * 3)).collect();
        d.execute(&format!("INSERT INTO big VALUES {}", values.join(", "))).unwrap();
    }
    d.set_parallelism(1);

    let before_full = d.scan_pages_read();
    d.execute("SELECT count(*) FROM big").unwrap();
    let full_scan_pages = d.scan_pages_read() - before_full;
    assert!(full_scan_pages > 100, "table should span many pages, got {full_scan_pages}");

    let before = d.scan_pages_read();
    let rs = d.execute("SELECT id FROM big LIMIT 10").unwrap();
    assert_eq!(rs.len(), 10);
    let limited_pages = d.scan_pages_read() - before;
    assert!(
        limited_pages < full_scan_pages / 4,
        "LIMIT 10 read {limited_pages} pages; full scan reads {full_scan_pages}"
    );
}

/// Serial and 4-way parallel execution are row-for-row identical across
/// operator types (morsel reassembly keeps the scan order).
#[test]
fn parallel_execution_is_deterministic() {
    let d = db();
    d.execute_script(
        "CREATE TABLE t (a INT, b INT, g INT);
         CREATE TABLE dim (id INT, name TEXT);",
    )
    .unwrap();
    d.execute("BEGIN").unwrap();
    for i in 0..10_000 {
        d.execute(&format!("INSERT INTO t VALUES ({i}, {}, {})", (i * 37) % 1000, i % 13)).unwrap();
    }
    for i in 0..13 {
        d.execute(&format!("INSERT INTO dim VALUES ({i}, 'g{i}')")).unwrap();
    }
    d.execute("COMMIT").unwrap();

    let queries = [
        "SELECT a, a + b FROM t WHERE b < 300",
        "SELECT g, count(*), sum(b) FROM t GROUP BY g ORDER BY g",
        "SELECT a FROM t ORDER BY b, a LIMIT 50",
        "SELECT t.a, dim.name FROM t JOIN dim ON t.g = dim.id WHERE t.a < 100 ORDER BY t.a",
        "SELECT DISTINCT g FROM t ORDER BY g",
    ];
    for q in queries {
        d.set_parallelism(1);
        let serial = d.execute(q).unwrap();
        d.set_parallelism(4);
        assert_eq!(d.parallelism(), 4);
        let parallel = d.execute(q).unwrap();
        assert_eq!(serial.rows, parallel.rows, "parallel run diverged for {q}");
    }
}

/// An unqualified column matching two join sides is its own error kind,
/// raised at plan time — not a type error, and not a per-row surprise.
#[test]
fn ambiguous_columns_error_at_plan_time() {
    let d = db();
    d.execute_script(
        "CREATE TABLE a (id INT, x INT);
         CREATE TABLE b (id INT, y INT);
         INSERT INTO a VALUES (1, 10);
         INSERT INTO b VALUES (1, 20);",
    )
    .unwrap();
    let err = d.execute("SELECT id FROM a JOIN b ON a.id = b.id").unwrap_err();
    assert!(matches!(err, DbError::AmbiguousColumn(ref c) if c == "id"), "got {err:?}");
    // Qualified references still work.
    let rs = d.execute("SELECT a.id, b.y FROM a JOIN b ON a.id = b.id").unwrap();
    assert_eq!(rs.rows, vec![vec![Datum::Int(1), Datum::Int(20)]]);
}

/// Delete-heavy tables recompute their statistics instead of drifting:
/// once deletes dominate the observed rows, the catalog rebuilds from
/// the surviving heap, zone maps stay exact, pruned scans stay correct,
/// and the planner's row estimate tracks the shrunken table.
#[test]
fn delete_heavy_table_rebuilds_statistics() {
    let d = db();
    d.execute("CREATE TABLE ledger (id INT NOT NULL, grp INT)").unwrap();
    let mut batch = String::from("INSERT INTO ledger VALUES ");
    for i in 0..200 {
        if i > 0 {
            batch.push(',');
        }
        batch.push_str(&format!("({i}, {})", i % 10));
    }
    d.execute(&batch).unwrap();
    assert_eq!(d.stats_rebuilt(), 0, "inserts alone never force a rebuild");
    let before = d.stats_fingerprint("ledger").unwrap();

    d.execute("DELETE FROM ledger WHERE id < 150").unwrap();
    assert!(d.stats_rebuilt() > 0, "a delete-heavy table must recompute its statistics");
    assert_ne!(d.stats_fingerprint("ledger").unwrap(), before, "stats reflect the survivors");
    assert!(d.verify_zone_maps("ledger").unwrap(), "zone maps stay exact through deletes");

    // Pruned scans over the survivors still answer correctly.
    let rs = d.execute("SELECT id FROM ledger WHERE id >= 180").unwrap();
    let mut got = ints(&rs);
    got.sort_unstable();
    assert_eq!(got, (180..200).collect::<Vec<i64>>());

    // The planner sees the post-delete cardinality, not the stale one.
    let (est, upper) = d.plan_estimate("SELECT id FROM ledger").unwrap();
    assert!(est <= upper + 1e-9, "estimate {est} must respect its upper bound {upper}");
    assert!((est - 50.0).abs() < 1.0, "estimate should see ~50 surviving rows, got {est}");
}

#[test]
fn plan_hash_ignores_literals_but_sees_structure() {
    // The plan-change audit keys on plan *shape*: two preparations of the
    // same statement shape with different bound constants must hash (and
    // label) identically, while a genuine access-path change must not.
    let d = db();
    d.execute("CREATE TABLE seqs (id INT, name TEXT)").unwrap();
    d.execute("INSERT INTO seqs VALUES (1, 'a'), (2, 'b'), (3, 'c')").unwrap();

    let a = d.prepare("SELECT name FROM seqs WHERE id = 1").unwrap();
    let b = d.prepare("SELECT name FROM seqs WHERE id = 2").unwrap();
    assert_eq!(a.plan_hash(), b.plan_hash(), "literal-only difference flipped the plan hash");
    assert_eq!(a.access_label(), b.access_label());
    assert!(a.access_label().contains('?'), "access label leaks literals: {}", a.access_label());

    d.execute("CREATE INDEX ON seqs (id)").unwrap();
    let c = d.prepare("SELECT name FROM seqs WHERE id = 2").unwrap();
    assert_ne!(b.plan_hash(), c.plan_hash(), "index swap must change the plan hash");
    assert!(c.access_label().starts_with("IndexEqScan"), "got {}", c.access_label());
    assert!(c.access_label().ends_with("= ?"), "index key must be elided: {}", c.access_label());

    // LIMIT/OFFSET counts are bound constants too.
    let l10 = d.prepare("SELECT name FROM seqs LIMIT 10").unwrap();
    let l20 = d.prepare("SELECT name FROM seqs LIMIT 20").unwrap();
    assert_eq!(l10.plan_hash(), l20.plan_hash(), "LIMIT count flipped the plan hash");
}
