//! Regression tests for the shared-read locking model: concurrent readers,
//! recovery of secondary + domain indexes, and prepared-statement
//! generation tracking.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use unidb::catalog::Role;
use unidb::{AccessMethod, Database, Datum, DbError, Rid};

/// Toy domain index from the engine tests: partitions integer keys by
/// parity and answers `same_parity(col, n)` probes.
struct ParityIndex {
    even: Vec<Rid>,
    odd: Vec<Rid>,
}

impl AccessMethod for ParityIndex {
    fn name(&self) -> &str {
        "parity"
    }
    fn on_insert(&mut self, rid: Rid, value: &Datum) {
        if let Some(i) = value.as_int() {
            let v = if i % 2 == 0 { &mut self.even } else { &mut self.odd };
            v.push(rid);
        }
    }
    fn on_delete(&mut self, rid: Rid, value: &Datum) {
        if let Some(i) = value.as_int() {
            let v = if i % 2 == 0 { &mut self.even } else { &mut self.odd };
            v.retain(|r| *r != rid);
        }
    }
    fn supports(&self, func: &str) -> bool {
        func == "same_parity"
    }
    fn probe(&self, func: &str, args: &[Datum]) -> Option<Vec<Rid>> {
        if func != "same_parity" {
            return None;
        }
        let n = args.first()?.as_int()?;
        Some(if n % 2 == 0 { self.even.clone() } else { self.odd.clone() })
    }
    fn selectivity(&self, _func: &str, _args: &[Datum]) -> Option<f64> {
        Some(0.5)
    }
}

fn register_parity(db: &Database, table: &str) {
    db.register_scalar(
        "same_parity",
        Arc::new(|args| {
            let (a, b) = (args[0].as_int(), args[1].as_int());
            Ok(match (a, b) {
                (Some(a), Some(b)) => Datum::Bool(a % 2 == b % 2),
                _ => Datum::Null,
            })
        }),
    )
    .unwrap();
    db.register_access_method(table, "id", Box::new(ParityIndex { even: vec![], odd: vec![] }))
        .unwrap();
}

#[test]
fn concurrent_readers_and_a_writer_stay_consistent() {
    let db = Arc::new(Database::in_memory());
    db.execute_script_as(
        "CREATE TABLE public.log (id INT, tag TEXT);
         INSERT INTO public.log VALUES (0, 'seed');",
        &Role::Maintainer,
    )
    .unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..6)
        .map(|_| {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last = 0i64;
                let mut observations = 0u64;
                // Query-then-check so every reader observes at least once
                // even if the writer finishes before this thread starts.
                loop {
                    let rs = db.execute("SELECT count(*) FROM public.log").unwrap();
                    let n = rs.rows[0][0].as_int().unwrap();
                    // Rows are only ever inserted, so observed counts must
                    // be nondecreasing per reader.
                    assert!(n >= last, "count went backwards: {n} < {last}");
                    last = n;
                    observations += 1;
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                }
                observations
            })
        })
        .collect();

    for i in 1..=100i64 {
        db.execute_as(&format!("INSERT INTO public.log VALUES ({i}, 'w')"), &Role::Maintainer)
            .unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader never got a query through");
    }
    let rs = db.execute("SELECT count(*) FROM public.log").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Int(101));
}

#[test]
fn wal_replay_restores_secondary_and_domain_indexes() {
    let dir = std::env::temp_dir().join(format!("unidb-idx-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        db.recover().unwrap();
        db.execute_script_as(
            "CREATE TABLE t (id INT, name TEXT);
             CREATE UNIQUE INDEX ON t (id);
             INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three'), (4, 'four');
             DELETE FROM t WHERE id = 3;",
            &Role::Maintainer,
        )
        .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        db.recover().unwrap();
        // Extensions are code, not data: re-register after recovery; the
        // backfill rebuilds the domain index from the replayed heap.
        register_parity(&db, "t");

        // Secondary index: the planner uses it and its *content* is intact —
        // the unique constraint still sees replayed keys...
        let plan = db.execute("EXPLAIN SELECT name FROM t WHERE id = 2").unwrap();
        assert!(plan.explain.unwrap().contains("IndexEqScan"));
        let err = db.execute_as("INSERT INTO t VALUES (2, 'dup')", &Role::Maintainer).unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)), "got {err:?}");
        // ...and the deleted key was removed from the index on replay.
        db.execute_as("INSERT INTO t VALUES (3, 'resurrected')", &Role::Maintainer).unwrap();

        // Domain index: drives the plan and returns exactly the right rows.
        let plan = db.execute("EXPLAIN SELECT name FROM t WHERE same_parity(id, 2)").unwrap();
        assert!(plan.explain.unwrap().contains("UdiScan"));
        let rs = db.execute("SELECT name FROM t WHERE same_parity(id, 2) ORDER BY id").unwrap();
        let names: Vec<_> = rs.rows.iter().map(|r| r[0].as_text().unwrap().to_string()).collect();
        assert_eq!(names, vec!["two", "four"]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn prepared_statements_track_generations() {
    let db = Database::in_memory();
    db.execute_script_as(
        "CREATE TABLE public.t (id INT, v INT);
         INSERT INTO public.t VALUES (1, 10), (2, 20);",
        &Role::Maintainer,
    )
    .unwrap();

    let prepared = db.prepare("SELECT v FROM public.t WHERE id = 1").unwrap();
    assert_eq!(prepared.columns(), ["v"]);
    assert_eq!(prepared.table_ids().len(), 1);

    // Repeated execution without re-planning.
    for _ in 0..3 {
        let rs = db.execute_prepared(&prepared).unwrap();
        assert_eq!(rs.rows, vec![vec![Datum::Int(10)]]);
    }

    // DML bumps the table version but the plan stays valid.
    let before = db.table_versions(prepared.table_ids());
    db.execute_as("UPDATE public.t SET v = 11 WHERE id = 1", &Role::Maintainer).unwrap();
    let after = db.table_versions(prepared.table_ids());
    assert!(after[0] > before[0], "DML must bump the table generation");
    let rs = db.execute_prepared(&prepared).unwrap();
    assert_eq!(rs.rows, vec![vec![Datum::Int(11)]]);

    // DDL moves the catalog generation and invalidates the plan.
    let gen_before = db.catalog_generation();
    db.execute_as("CREATE TABLE public.other (x INT)", &Role::Maintainer).unwrap();
    assert!(db.catalog_generation() > gen_before);
    let err = db.execute_prepared(&prepared).unwrap_err();
    assert!(matches!(err, DbError::Stale(_)), "got {err:?}");

    // Re-preparing picks up the new catalog and works again.
    let reprepared = db.prepare("SELECT v FROM public.t WHERE id = 1").unwrap();
    let rs = db.execute_prepared(&reprepared).unwrap();
    assert_eq!(rs.rows, vec![vec![Datum::Int(11)]]);

    // Only SELECT can be prepared.
    let err = db.prepare("INSERT INTO public.t VALUES (9, 9)").unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)), "got {err:?}");
}
