//! Error type shared by every module of the kernel algebra.

use std::fmt;

/// Result alias used throughout `genalg-core`.
pub type Result<T> = std::result::Result<T, GenAlgError>;

/// Errors produced by genomic data types and operations.
///
/// The paper (§4.3) stresses that biological computations are inherently
/// partial: operations may be undefined for particular inputs (a sequence
/// that is not a valid open reading frame, a base character outside the
/// alphabet, a term whose sorts do not line up). Those conditions surface
/// here rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenAlgError {
    /// A character is not part of the expected alphabet.
    InvalidSymbol { symbol: char, alphabet: &'static str },
    /// An index or interval lies outside the sequence it refers to.
    OutOfBounds { index: usize, len: usize },
    /// An interval is empty or inverted (`start >= end`).
    EmptyInterval { start: usize, end: usize },
    /// A structured GDT failed validation (overlapping exons, missing CDS, …).
    InvalidStructure(String),
    /// A sequence length is incompatible with the requested operation
    /// (e.g. translating an mRNA whose coding region is not a codon multiple).
    LengthMismatch { expected: String, actual: usize },
    /// A term or operation application does not type-check against the signature.
    SortMismatch { operation: String, detail: String },
    /// An operation name is not registered in the algebra.
    UnknownOperation(String),
    /// A sort name is not registered in the algebra.
    UnknownSort(String),
    /// A free variable was not bound at evaluation time.
    UnboundVariable(String),
    /// A compact encoding could not be decoded.
    Corrupt(String),
    /// A transient failure talking to an external source (timeout, dropped
    /// connection). Retrying the same request may succeed.
    Transient(String),
    /// Any other domain error with a human-readable explanation.
    Other(String),
}

impl GenAlgError {
    /// True for errors a caller may reasonably retry.
    pub fn is_transient(&self) -> bool {
        matches!(self, GenAlgError::Transient(_))
    }
}

impl fmt::Display for GenAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenAlgError::InvalidSymbol { symbol, alphabet } => {
                write!(f, "symbol {symbol:?} is not part of the {alphabet} alphabet")
            }
            GenAlgError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for sequence of length {len}")
            }
            GenAlgError::EmptyInterval { start, end } => {
                write!(f, "interval [{start}, {end}) is empty or inverted")
            }
            GenAlgError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
            GenAlgError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            GenAlgError::SortMismatch { operation, detail } => {
                write!(f, "sort mismatch applying {operation}: {detail}")
            }
            GenAlgError::UnknownOperation(name) => write!(f, "unknown operation {name:?}"),
            GenAlgError::UnknownSort(name) => write!(f, "unknown sort {name:?}"),
            GenAlgError::UnboundVariable(name) => write!(f, "unbound variable {name:?}"),
            GenAlgError::Corrupt(msg) => write!(f, "corrupt compact encoding: {msg}"),
            GenAlgError::Transient(msg) => write!(f, "transient source error: {msg}"),
            GenAlgError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for GenAlgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GenAlgError::InvalidSymbol { symbol: 'J', alphabet: "DNA" };
        assert!(e.to_string().contains('J'));
        assert!(e.to_string().contains("DNA"));
        let e = GenAlgError::OutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GenAlgError::UnknownSort("gene".into()),
            GenAlgError::UnknownSort("gene".into())
        );
        assert_ne!(
            GenAlgError::UnknownSort("gene".into()),
            GenAlgError::UnknownOperation("gene".into())
        );
    }
}
