//! Genetic code tables and codon-level translation.
//!
//! The `decode` operation of the Genomics Algebra maps codons to amino
//! acids. Because different organelles and taxa use different codes, the
//! table is a first-class value ([`GeneticCode`]) selected by its NCBI
//! translation-table number, not a hard-wired constant.

use crate::alphabet::{AminoAcid, DnaBase, RnaBase};
use crate::error::{GenAlgError, Result};
use crate::seq::{ProteinSeq, RnaSeq};

/// NCBI-style amino-acid strings are indexed in TCAG order.
fn tcag_index_dna(b: DnaBase) -> usize {
    match b {
        DnaBase::T => 0,
        DnaBase::C => 1,
        DnaBase::A => 2,
        DnaBase::G => 3,
    }
}

fn tcag_index_rna(b: RnaBase) -> usize {
    tcag_index_dna(b.to_dna())
}

fn codon_index_dna(c: [DnaBase; 3]) -> usize {
    tcag_index_dna(c[0]) * 16 + tcag_index_dna(c[1]) * 4 + tcag_index_dna(c[2])
}

fn codon_index_rna(c: [RnaBase; 3]) -> usize {
    tcag_index_rna(c[0]) * 16 + tcag_index_rna(c[1]) * 4 + tcag_index_rna(c[2])
}

/// A translation table: 64 codon→residue assignments plus start codons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneticCode {
    /// NCBI translation-table number (1, 2, 5, 11, …).
    id: u8,
    /// Human-readable name.
    name: &'static str,
    /// Residue for each codon in TCAG order.
    table: [AminoAcid; 64],
    /// Start-codon indicator per codon (TCAG order).
    starts: [bool; 64],
}

impl GeneticCode {
    /// Build a code from an NCBI-style 64-character amino-acid string and a
    /// list of start codons written as DNA triplets.
    fn from_ncbi(id: u8, name: &'static str, aas: &str, start_codons: &[&str]) -> Self {
        assert_eq!(aas.len(), 64, "AA string must have 64 symbols");
        let mut table = [AminoAcid::Unknown; 64];
        for (i, c) in aas.chars().enumerate() {
            table[i] = AminoAcid::from_char(c).expect("valid NCBI table character");
        }
        let mut starts = [false; 64];
        for s in start_codons {
            let bases: Vec<DnaBase> =
                s.chars().map(|c| DnaBase::from_char(c).expect("valid start codon")).collect();
            assert_eq!(bases.len(), 3);
            starts[codon_index_dna([bases[0], bases[1], bases[2]])] = true;
        }
        GeneticCode { id, name, table, starts }
    }

    /// NCBI table 1 — the standard code.
    pub fn standard() -> Self {
        Self::from_ncbi(
            1,
            "Standard",
            "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG",
            &["ATG", "TTG", "CTG"],
        )
    }

    /// NCBI table 2 — vertebrate mitochondrial.
    pub fn vertebrate_mitochondrial() -> Self {
        Self::from_ncbi(
            2,
            "Vertebrate Mitochondrial",
            "FFLLSSSSYY**CCWWLLLLPPPPHHQQRRRRIIMMTTTTNNKKSS**VVVVAAAADDEEGGGG",
            &["ATT", "ATC", "ATA", "ATG", "GTG"],
        )
    }

    /// NCBI table 5 — invertebrate mitochondrial.
    pub fn invertebrate_mitochondrial() -> Self {
        Self::from_ncbi(
            5,
            "Invertebrate Mitochondrial",
            "FFLLSSSSYY**CCWWLLLLPPPPHHQQRRRRIIMMTTTTNNKKSSSSVVVVAAAADDEEGGGG",
            &["TTG", "ATT", "ATC", "ATA", "ATG", "GTG"],
        )
    }

    /// NCBI table 11 — bacterial, archaeal, plant plastid.
    pub fn bacterial() -> Self {
        Self::from_ncbi(
            11,
            "Bacterial, Archaeal and Plant Plastid",
            "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG",
            &["TTG", "CTG", "ATT", "ATC", "ATA", "ATG", "GTG"],
        )
    }

    /// Look a table up by its NCBI number.
    pub fn by_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(Self::standard()),
            2 => Some(Self::vertebrate_mitochondrial()),
            5 => Some(Self::invertebrate_mitochondrial()),
            11 => Some(Self::bacterial()),
            _ => None,
        }
    }

    /// NCBI table number.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Human-readable table name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Residue assigned to an RNA codon.
    pub fn decode_rna(&self, codon: [RnaBase; 3]) -> AminoAcid {
        self.table[codon_index_rna(codon)]
    }

    /// Residue assigned to a DNA codon (coding-strand convention).
    pub fn decode_dna(&self, codon: [DnaBase; 3]) -> AminoAcid {
        self.table[codon_index_dna(codon)]
    }

    /// Is this DNA codon a start codon under this table?
    pub fn is_start_dna(&self, codon: [DnaBase; 3]) -> bool {
        self.starts[codon_index_dna(codon)]
    }

    /// Is this RNA codon a start codon under this table?
    pub fn is_start_rna(&self, codon: [RnaBase; 3]) -> bool {
        self.starts[codon_index_rna(codon)]
    }

    /// Is this DNA codon a stop codon under this table?
    pub fn is_stop_dna(&self, codon: [DnaBase; 3]) -> bool {
        self.decode_dna(codon) == AminoAcid::Stop
    }

    /// Is this RNA codon a stop codon under this table?
    pub fn is_stop_rna(&self, codon: [RnaBase; 3]) -> bool {
        self.decode_rna(codon) == AminoAcid::Stop
    }

    /// All stop codons of this table, as RNA triplets.
    pub fn stop_codons(&self) -> Vec<[RnaBase; 3]> {
        all_rna_codons().filter(|&c| self.is_stop_rna(c)).collect()
    }

    /// All start codons of this table, as RNA triplets.
    pub fn start_codons(&self) -> Vec<[RnaBase; 3]> {
        all_rna_codons().filter(|&c| self.is_start_rna(c)).collect()
    }

    /// Translate a complete coding sequence (length must be a multiple of
    /// three). Stop codons become [`AminoAcid::Stop`] residues; callers that
    /// want the mature peptide use [`ProteinSeq::until_stop`].
    pub fn translate_cds(&self, rna: &RnaSeq) -> Result<ProteinSeq> {
        if !rna.len().is_multiple_of(3) {
            return Err(GenAlgError::LengthMismatch {
                expected: "a multiple of 3".into(),
                actual: rna.len(),
            });
        }
        let mut out = ProteinSeq::empty();
        for codon in codons(rna, 0) {
            out.push(self.decode_rna(codon));
        }
        Ok(out)
    }

    /// Translate starting at the first start codon in `frame`, ending at the
    /// first in-frame stop. Returns `None` if no start codon exists.
    pub fn translate_from_start(&self, rna: &RnaSeq, frame: usize) -> Option<ProteinSeq> {
        let cods: Vec<[RnaBase; 3]> = codons(rna, frame).collect();
        let start = cods.iter().position(|&c| self.is_start_rna(c))?;
        let mut out = ProteinSeq::empty();
        // By convention the initiator codon always yields Met.
        out.push(AminoAcid::Met);
        for &c in &cods[start + 1..] {
            if self.is_stop_rna(c) {
                return Some(out);
            }
            out.push(self.decode_rna(c));
        }
        Some(out)
    }
}

/// Iterate over complete codons of `rna` starting at offset `frame`.
pub fn codons(rna: &RnaSeq, frame: usize) -> impl Iterator<Item = [RnaBase; 3]> + '_ {
    let n = rna.len();
    (frame..).step_by(3).take_while(move |i| i + 3 <= n).map(move |i| {
        [
            rna.get(i).expect("bounds checked"),
            rna.get(i + 1).expect("bounds checked"),
            rna.get(i + 2).expect("bounds checked"),
        ]
    })
}

fn all_rna_codons() -> impl Iterator<Item = [RnaBase; 3]> {
    RnaBase::ALL.into_iter().flat_map(|a| {
        RnaBase::ALL.into_iter().flat_map(move |b| RnaBase::ALL.into_iter().map(move |c| [a, b, c]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rna(s: &str) -> RnaSeq {
        RnaSeq::from_text(s).unwrap()
    }

    fn rcodon(s: &str) -> [RnaBase; 3] {
        let v: Vec<RnaBase> = s.chars().map(|c| RnaBase::from_char(c).unwrap()).collect();
        [v[0], v[1], v[2]]
    }

    #[test]
    fn standard_table_known_assignments() {
        let code = GeneticCode::standard();
        assert_eq!(code.decode_rna(rcodon("AUG")), AminoAcid::Met);
        assert_eq!(code.decode_rna(rcodon("UUU")), AminoAcid::Phe);
        assert_eq!(code.decode_rna(rcodon("UGG")), AminoAcid::Trp);
        assert_eq!(code.decode_rna(rcodon("UAA")), AminoAcid::Stop);
        assert_eq!(code.decode_rna(rcodon("UAG")), AminoAcid::Stop);
        assert_eq!(code.decode_rna(rcodon("UGA")), AminoAcid::Stop);
        assert_eq!(code.decode_rna(rcodon("GGG")), AminoAcid::Gly);
    }

    #[test]
    fn standard_stops_and_starts() {
        let code = GeneticCode::standard();
        assert_eq!(code.stop_codons().len(), 3);
        assert!(code.is_start_rna(rcodon("AUG")));
        assert!(code.is_start_rna(rcodon("UUG")));
        assert!(!code.is_start_rna(rcodon("GUG")));
    }

    #[test]
    fn mitochondrial_differences() {
        let mito = GeneticCode::vertebrate_mitochondrial();
        // UGA is Trp, not stop.
        assert_eq!(mito.decode_rna(rcodon("UGA")), AminoAcid::Trp);
        // AGA/AGG are stops.
        assert_eq!(mito.decode_rna(rcodon("AGA")), AminoAcid::Stop);
        assert_eq!(mito.decode_rna(rcodon("AGG")), AminoAcid::Stop);
        // AUA is Met.
        assert_eq!(mito.decode_rna(rcodon("AUA")), AminoAcid::Met);
        assert_eq!(mito.stop_codons().len(), 4);
    }

    #[test]
    fn invertebrate_mito_aga_is_ser() {
        let code = GeneticCode::invertebrate_mitochondrial();
        assert_eq!(code.decode_rna(rcodon("AGA")), AminoAcid::Ser);
        assert_eq!(code.decode_rna(rcodon("UGA")), AminoAcid::Trp);
    }

    #[test]
    fn bacterial_matches_standard_assignments() {
        let std = GeneticCode::standard();
        let bac = GeneticCode::bacterial();
        for c in all_rna_codons() {
            assert_eq!(std.decode_rna(c), bac.decode_rna(c));
        }
        // ...but has more start codons.
        assert!(bac.start_codons().len() > std.start_codons().len());
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(GeneticCode::by_id(1).unwrap().name(), "Standard");
        assert_eq!(GeneticCode::by_id(11).unwrap().id(), 11);
        assert!(GeneticCode::by_id(99).is_none());
    }

    #[test]
    fn translate_cds_known_peptide() {
        let code = GeneticCode::standard();
        let p = code.translate_cds(&rna("AUGGCCUUUAAG")).unwrap();
        assert_eq!(p.to_text(), "MAFK");
        assert!(code.translate_cds(&rna("AUGG")).is_err());
    }

    #[test]
    fn translate_cds_keeps_stop_marker() {
        let code = GeneticCode::standard();
        let p = code.translate_cds(&rna("AUGUAA")).unwrap();
        assert_eq!(p.to_text(), "M*");
        assert_eq!(p.until_stop().to_text(), "M");
    }

    #[test]
    fn translate_from_start_scans() {
        let code = GeneticCode::standard();
        // CCC AUG GCC UAA: start at codon 1.
        let p = code.translate_from_start(&rna("CCCAUGGCCUAA"), 0).unwrap();
        assert_eq!(p.to_text(), "MA");
        assert!(code.translate_from_start(&rna("CCCCCC"), 0).is_none());
    }

    #[test]
    fn translate_from_start_initiator_is_met() {
        let code = GeneticCode::standard();
        // UUG is an alternative start in table 1 and must yield Met.
        let p = code.translate_from_start(&rna("UUGGCCUAA"), 0).unwrap();
        assert_eq!(p.to_text(), "MA");
    }

    #[test]
    fn codon_iteration_frames() {
        let r = rna("AUGGCC");
        assert_eq!(codons(&r, 0).count(), 2);
        assert_eq!(codons(&r, 1).count(), 1);
        assert_eq!(codons(&r, 4).count(), 0);
    }

    #[test]
    fn sixtyfour_codons_all_assigned() {
        let code = GeneticCode::standard();
        let mut residues: Vec<AminoAcid> = all_rna_codons().map(|c| code.decode_rna(c)).collect();
        assert_eq!(residues.len(), 64);
        residues.sort();
        residues.dedup();
        // 20 residues + stop are all reachable.
        assert_eq!(residues.len(), 21);
    }
}
