//! Compact, pointer-free encodings for every genomic data type.
//!
//! §4.4 of the paper: representations "should not employ pointer data
//! structures in main memory but be embedded into compact storage areas
//! which can be efficiently transferred between main memory and disk".
//! The [`Compact`] trait is that contract: every GDT serializes into a flat
//! byte string (varint-framed, packed sequence payloads) that `unidb`
//! stores verbatim as the payload of an opaque UDT value.
//!
//! The format is self-describing at the top level — the first byte is a
//! type tag — so a decoded payload can be dispatched back to its sort
//! ([`value_to_bytes`] / [`value_from_bytes`]).

use crate::algebra::Value;
use crate::alphabet::Strand;
use crate::error::{GenAlgError, Result};
use crate::gdt::{
    Chromosome, Feature, FeatureKind, Gene, Genome, Interval, Location, Mrna, PrimaryTranscript,
    Protein,
};
use crate::seq::{DnaSeq, ProteinSeq, RnaSeq};

/// A type with a compact byte encoding.
pub trait Compact: Sized {
    /// Type tag identifying this GDT in a self-describing payload.
    const TAG: u8;

    /// Append the (untagged) payload to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode the (untagged) payload, advancing `buf` past it.
    fn decode(buf: &mut &[u8]) -> Result<Self>;

    /// The full tagged byte string.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(Self::TAG);
        self.encode(&mut buf);
        buf
    }

    /// Parse a full tagged byte string.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self> {
        let tag = take_u8(&mut bytes)?;
        if tag != Self::TAG {
            return Err(GenAlgError::Corrupt(format!("expected tag {}, found {tag}", Self::TAG)));
        }
        let value = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(GenAlgError::Corrupt(format!("{} trailing bytes", bytes.len())));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Primitive framing helpers
// ---------------------------------------------------------------------------

/// LEB128 unsigned varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 unsigned varint.
pub fn take_varint(buf: &mut &[u8]) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = take_u8(buf)?;
        if shift >= 64 {
            return Err(GenAlgError::Corrupt("varint too long".into()));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn take_u8(buf: &mut &[u8]) -> Result<u8> {
    let (&first, rest) = buf
        .split_first()
        .ok_or_else(|| GenAlgError::Corrupt("unexpected end of payload".into()))?;
    *buf = rest;
    Ok(first)
}

/// Read an item count, rejecting counts that cannot fit in the remaining
/// payload (every item needs at least one byte) — prevents corrupt varints
/// from driving giant allocations.
fn take_count(buf: &mut &[u8]) -> Result<usize> {
    let n = take_varint(buf)? as usize;
    if n > buf.len() {
        return Err(GenAlgError::Corrupt(format!(
            "count {n} exceeds remaining payload of {} bytes",
            buf.len()
        )));
    }
    Ok(n)
}

fn take_slice<'a>(buf: &mut &'a [u8], len: usize) -> Result<&'a [u8]> {
    if buf.len() < len {
        return Err(GenAlgError::Corrupt(format!(
            "payload truncated: need {len} bytes, have {}",
            buf.len()
        )));
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Ok(head)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> Result<String> {
    let len = take_varint(buf)? as usize;
    let bytes = take_slice(buf, len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| GenAlgError::Corrupt("invalid UTF-8 in payload".into()))
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
        None => buf.push(0),
    }
}

fn take_opt_str(buf: &mut &[u8]) -> Result<Option<String>> {
    Ok(match take_u8(buf)? {
        0 => None,
        _ => Some(take_str(buf)?),
    })
}

fn put_interval(buf: &mut Vec<u8>, iv: &Interval) {
    put_varint(buf, iv.start as u64);
    put_varint(buf, iv.end as u64);
}

fn take_interval(buf: &mut &[u8]) -> Result<Interval> {
    let start = take_varint(buf)? as usize;
    let end = take_varint(buf)? as usize;
    Interval::new(start, end)
}

fn put_strand(buf: &mut Vec<u8>, s: Strand) {
    buf.push(match s {
        Strand::Forward => 0,
        Strand::Reverse => 1,
    });
}

fn take_strand(buf: &mut &[u8]) -> Result<Strand> {
    Ok(match take_u8(buf)? {
        0 => Strand::Forward,
        1 => Strand::Reverse,
        other => return Err(GenAlgError::Corrupt(format!("invalid strand byte {other}"))),
    })
}

fn put_location(buf: &mut Vec<u8>, loc: &Location) {
    put_varint(buf, loc.segments().len() as u64);
    for iv in loc.segments() {
        put_interval(buf, iv);
    }
    put_strand(buf, loc.strand());
}

fn take_location(buf: &mut &[u8]) -> Result<Location> {
    let n = take_count(buf)?;
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        segments.push(take_interval(buf)?);
    }
    let strand = take_strand(buf)?;
    Location::join(segments, strand)
}

fn put_feature(buf: &mut Vec<u8>, f: &Feature) {
    put_str(buf, f.kind.key());
    put_location(buf, &f.location);
    put_varint(buf, f.qualifiers().len() as u64);
    for (k, v) in f.qualifiers() {
        put_str(buf, k);
        put_str(buf, v);
    }
}

fn take_feature(buf: &mut &[u8]) -> Result<Feature> {
    let kind = FeatureKind::from_key(&take_str(buf)?);
    let location = take_location(buf)?;
    let nq = take_varint(buf)? as usize;
    let mut feature = Feature::new(kind, location);
    for _ in 0..nq {
        let k = take_str(buf)?;
        let v = take_str(buf)?;
        feature = feature.with_qualifier(&k, &v);
    }
    Ok(feature)
}

// ---------------------------------------------------------------------------
// Sequence GDTs
// ---------------------------------------------------------------------------

impl Compact for DnaSeq {
    const TAG: u8 = 1;

    fn encode(&self, buf: &mut Vec<u8>) {
        let (raw, len) = self.raw();
        put_varint(buf, len as u64);
        buf.extend_from_slice(raw);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = take_varint(buf)? as usize;
        let nbytes = len.div_ceil(2);
        let raw = take_slice(buf, nbytes)?.to_vec();
        DnaSeq::from_raw(len, raw)
    }
}

impl Compact for RnaSeq {
    const TAG: u8 = 2;

    fn encode(&self, buf: &mut Vec<u8>) {
        let (raw, len) = self.raw();
        put_varint(buf, len as u64);
        buf.extend_from_slice(raw);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = take_varint(buf)? as usize;
        let nbytes = len.div_ceil(4);
        let raw = take_slice(buf, nbytes)?.to_vec();
        RnaSeq::from_raw(len, raw)
    }
}

impl Compact for ProteinSeq {
    const TAG: u8 = 3;

    fn encode(&self, buf: &mut Vec<u8>) {
        let raw = self.raw();
        put_varint(buf, raw.len() as u64);
        buf.extend_from_slice(raw);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = take_varint(buf)? as usize;
        Ok(ProteinSeq::from_raw(take_slice(buf, len)?.to_vec()))
    }
}

// ---------------------------------------------------------------------------
// Structured GDTs
// ---------------------------------------------------------------------------

impl Compact for Gene {
    const TAG: u8 = 4;

    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self.id());
        put_opt_str(buf, self.name());
        self.sequence().encode(buf);
        put_varint(buf, self.exons().len() as u64);
        for iv in self.exons() {
            put_interval(buf, iv);
        }
        match self.locus() {
            Some(locus) => {
                buf.push(1);
                put_str(buf, &locus.chromosome);
                put_interval(buf, &locus.interval);
                put_strand(buf, locus.strand);
            }
            None => buf.push(0),
        }
        buf.push(self.code_table());
        put_varint(buf, self.features().len() as u64);
        for f in self.features() {
            put_feature(buf, f);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let id = take_str(buf)?;
        let name = take_opt_str(buf)?;
        let sequence = DnaSeq::decode(buf)?;
        let nexons = take_varint(buf)? as usize;
        let mut builder = Gene::builder(&id).sequence(sequence);
        if let Some(name) = &name {
            builder = builder.name(name);
        }
        for _ in 0..nexons {
            let iv = take_interval(buf)?;
            builder = builder.exon(iv.start, iv.end);
        }
        if take_u8(buf)? == 1 {
            let chromosome = take_str(buf)?;
            let interval = take_interval(buf)?;
            let strand = take_strand(buf)?;
            builder = builder.locus(&chromosome, interval, strand);
        }
        builder = builder.code_table(take_u8(buf)?);
        let nfeatures = take_varint(buf)? as usize;
        for _ in 0..nfeatures {
            builder = builder.feature(take_feature(buf)?);
        }
        builder.build()
    }
}

impl Compact for PrimaryTranscript {
    const TAG: u8 = 5;

    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self.gene_id());
        self.sequence().encode(buf);
        put_varint(buf, self.exons().len() as u64);
        for iv in self.exons() {
            put_interval(buf, iv);
        }
        buf.push(self.code_table());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let gene_id = take_str(buf)?;
        let seq = RnaSeq::decode(buf)?;
        let n = take_count(buf)?;
        let mut exons = Vec::with_capacity(n);
        for _ in 0..n {
            exons.push(take_interval(buf)?);
        }
        let table = take_u8(buf)?;
        PrimaryTranscript::new(&gene_id, seq, exons, table)
    }
}

impl Compact for Mrna {
    const TAG: u8 = 6;

    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self.gene_id());
        self.sequence().encode(buf);
        match self.cds() {
            Some(iv) => {
                buf.push(1);
                put_interval(buf, &iv);
            }
            None => buf.push(0),
        }
        buf.push(self.code_table());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let gene_id = take_str(buf)?;
        let seq = RnaSeq::decode(buf)?;
        let cds = match take_u8(buf)? {
            0 => None,
            _ => Some(take_interval(buf)?),
        };
        let table = take_u8(buf)?;
        Mrna::new(&gene_id, seq, cds, table)
    }
}

impl Compact for Protein {
    const TAG: u8 = 7;

    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self.id());
        put_opt_str(buf, self.name());
        put_opt_str(buf, self.organism());
        self.sequence().encode(buf);
        put_varint(buf, self.features().len() as u64);
        for f in self.features() {
            put_feature(buf, f);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let id = take_str(buf)?;
        let name = take_opt_str(buf)?;
        let organism = take_opt_str(buf)?;
        let seq = ProteinSeq::decode(buf)?;
        let mut protein = Protein::new(&id, seq);
        if let Some(name) = &name {
            protein = protein.with_name(name);
        }
        if let Some(org) = &organism {
            protein = protein.with_organism(org);
        }
        let n = take_varint(buf)? as usize;
        for _ in 0..n {
            protein = protein.with_feature(take_feature(buf)?);
        }
        Ok(protein)
    }
}

impl Compact for Chromosome {
    const TAG: u8 = 8;

    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self.name());
        self.sequence().encode(buf);
        put_varint(buf, self.genes().len() as u64);
        for g in self.genes() {
            g.encode(buf);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let name = take_str(buf)?;
        let seq = DnaSeq::decode(buf)?;
        let mut chromosome = Chromosome::new(&name, seq);
        let n = take_varint(buf)? as usize;
        for _ in 0..n {
            chromosome.add_gene(Gene::decode(buf)?)?;
        }
        Ok(chromosome)
    }
}

impl Compact for Genome {
    const TAG: u8 = 9;

    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self.organism());
        put_varint(buf, self.taxonomy().len() as u64);
        for t in self.taxonomy() {
            put_str(buf, t);
        }
        put_varint(buf, self.chromosomes().len() as u64);
        for c in self.chromosomes() {
            c.encode(buf);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let organism = take_str(buf)?;
        let nt = take_count(buf)?;
        let mut taxonomy = Vec::with_capacity(nt);
        for _ in 0..nt {
            taxonomy.push(take_str(buf)?);
        }
        let lineage: Vec<&str> = taxonomy.iter().map(String::as_str).collect();
        let mut genome = Genome::new(&organism).with_taxonomy(&lineage);
        let nc = take_varint(buf)? as usize;
        for _ in 0..nc {
            genome.add_chromosome(Chromosome::decode(buf)?)?;
        }
        Ok(genome)
    }
}

// ---------------------------------------------------------------------------
// Tag-dispatched Value encoding (the adapter's opaque payload)
// ---------------------------------------------------------------------------

/// Encode a GDT-sorted [`Value`] into a self-describing byte string.
/// Base-typed and structural values are not encodable — those live in
/// native DBMS columns, not opaque ones.
pub fn value_to_bytes(v: &Value) -> Result<Vec<u8>> {
    Ok(match v {
        Value::Dna(x) => x.to_bytes(),
        Value::Rna(x) => x.to_bytes(),
        Value::ProteinSeq(x) => x.to_bytes(),
        Value::Gene(x) => x.to_bytes(),
        Value::Transcript(x) => x.to_bytes(),
        Value::Mrna(x) => x.to_bytes(),
        Value::Protein(x) => x.to_bytes(),
        Value::Chromosome(x) => x.to_bytes(),
        Value::Genome(x) => x.to_bytes(),
        other => {
            return Err(GenAlgError::Other(format!(
                "value of sort {} has no opaque encoding",
                other.sort()
            )))
        }
    })
}

/// Decode a self-describing byte string back into a [`Value`].
pub fn value_from_bytes(bytes: &[u8]) -> Result<Value> {
    let tag = *bytes.first().ok_or_else(|| GenAlgError::Corrupt("empty opaque payload".into()))?;
    Ok(match tag {
        DnaSeq::TAG => Value::Dna(DnaSeq::from_bytes(bytes)?),
        RnaSeq::TAG => Value::Rna(RnaSeq::from_bytes(bytes)?),
        ProteinSeq::TAG => Value::ProteinSeq(ProteinSeq::from_bytes(bytes)?),
        Gene::TAG => Value::Gene(Box::new(Gene::from_bytes(bytes)?)),
        PrimaryTranscript::TAG => {
            Value::Transcript(Box::new(PrimaryTranscript::from_bytes(bytes)?))
        }
        Mrna::TAG => Value::Mrna(Box::new(Mrna::from_bytes(bytes)?)),
        Protein::TAG => Value::Protein(Box::new(Protein::from_bytes(bytes)?)),
        Chromosome::TAG => Value::Chromosome(Box::new(Chromosome::from_bytes(bytes)?)),
        Genome::TAG => Value::Genome(Box::new(Genome::from_bytes(bytes)?)),
        other => return Err(GenAlgError::Corrupt(format!("unknown GDT tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    fn sample_gene() -> Gene {
        Gene::builder("g1")
            .name("demo")
            .sequence(dna("ATGGCCTTTAAGGTAACCGGGTTTCACTGA"))
            .exon(0, 12)
            .exon(21, 30)
            .locus("chr1", Interval::new(100, 130).unwrap(), Strand::Reverse)
            .code_table(11)
            .feature(
                Feature::new(
                    FeatureKind::Cds,
                    Location::simple(Interval::new(0, 12).unwrap(), Strand::Forward),
                )
                .with_qualifier("product", "demo protein"),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(take_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_truncation_detected() {
        let mut slice: &[u8] = &[0x80];
        assert!(take_varint(&mut slice).is_err());
    }

    #[test]
    fn dna_roundtrip_including_iupac() {
        let s = dna("ATGCRYSWKMBDHVN");
        let bytes = s.to_bytes();
        assert_eq!(DnaSeq::from_bytes(&bytes).unwrap(), s);
        // Payload is ~half a byte per symbol plus framing.
        assert!(bytes.len() <= s.len() / 2 + 3);
    }

    #[test]
    fn rna_and_protein_roundtrip() {
        let r = RnaSeq::from_text("AUGGCCUAA").unwrap();
        assert_eq!(RnaSeq::from_bytes(&r.to_bytes()).unwrap(), r);
        let p = ProteinSeq::from_text("MAFK*X").unwrap();
        assert_eq!(ProteinSeq::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn gene_roundtrip_preserves_everything() {
        let g = sample_gene();
        let back = Gene::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.features()[0].qualifier("product"), Some("demo protein"));
        assert_eq!(back.locus().unwrap().strand, Strand::Reverse);
    }

    #[test]
    fn transcript_mrna_protein_roundtrip() {
        let g = Gene::builder("g").sequence(dna("ATGGCCTAA")).build().unwrap();
        let t = crate::dogma::transcribe(&g).unwrap();
        assert_eq!(PrimaryTranscript::from_bytes(&t.to_bytes()).unwrap(), t);
        let m = crate::dogma::splice(&t).unwrap();
        assert_eq!(Mrna::from_bytes(&m.to_bytes()).unwrap(), m);
        let p = Protein::new("p1", ProteinSeq::from_text("MA").unwrap())
            .with_name("x")
            .with_organism("y");
        assert_eq!(Protein::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn chromosome_and_genome_roundtrip() {
        let mut c = Chromosome::new("chr1", dna("CCATGAAATAACC"));
        let g = Gene::builder("g1")
            .sequence(dna("ATGAAATAA"))
            .locus("chr1", Interval::new(2, 11).unwrap(), Strand::Forward)
            .build()
            .unwrap();
        c.add_gene(g).unwrap();
        assert_eq!(Chromosome::from_bytes(&c.to_bytes()).unwrap(), c);

        let mut genome = Genome::new("Examplia").with_taxonomy(&["Bacteria"]);
        genome.add_chromosome(c).unwrap();
        assert_eq!(Genome::from_bytes(&genome.to_bytes()).unwrap(), genome);
    }

    #[test]
    fn wrong_tag_rejected() {
        let s = dna("ATG");
        let mut bytes = s.to_bytes();
        bytes[0] = 99;
        assert!(DnaSeq::from_bytes(&bytes).is_err());
        assert!(value_from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let s = dna("ATG");
        let mut bytes = s.to_bytes();
        bytes.push(0);
        assert!(DnaSeq::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let g = sample_gene();
        let bytes = g.to_bytes();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(Gene::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn value_dispatch_roundtrip() {
        let vals = vec![
            Value::Dna(dna("ATGC")),
            Value::Rna(RnaSeq::from_text("AUGC").unwrap()),
            Value::ProteinSeq(ProteinSeq::from_text("MAFK").unwrap()),
            Value::Gene(Box::new(sample_gene())),
        ];
        for v in vals {
            let bytes = value_to_bytes(&v).unwrap();
            assert_eq!(value_from_bytes(&bytes).unwrap(), v);
        }
        assert!(value_to_bytes(&Value::Int(1)).is_err());
        assert!(value_from_bytes(&[]).is_err());
    }
}
