//! First-class uncertainty for genomic values.
//!
//! The paper (§4.3, problem C9) insists that biological results are never
//! guaranteed: repository data is noisy and two sources may hold conflicting
//! values with no way to decide which is right. "In this case, access to
//! both alternatives should be given." These types make that policy
//! concrete: a value carries a [`Confidence`] and its provenance, and a
//! conflict is preserved as an [`Alternatives`] set rather than silently
//! resolved.

use crate::error::{GenAlgError, Result};
use std::fmt;

/// A degree of belief in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Confidence(f64);

impl Confidence {
    /// Full certainty.
    pub const CERTAIN: Confidence = Confidence(1.0);

    /// Construct, clamping into `[0, 1]`; NaN is rejected.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_nan() {
            return Err(GenAlgError::Other("confidence cannot be NaN".into()));
        }
        Ok(Confidence(value.clamp(0.0, 1.0)))
    }

    /// The raw degree of belief.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Belief that both independent statements hold.
    pub fn and(self, other: Confidence) -> Confidence {
        Confidence(self.0 * other.0)
    }

    /// Belief that at least one of two independent statements holds.
    pub fn or(self, other: Confidence) -> Confidence {
        Confidence(self.0 + other.0 - self.0 * other.0)
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

/// A value together with how much we believe it and where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Uncertain<T> {
    value: T,
    confidence: Confidence,
    /// Names of the repositories/derivations this value came through.
    provenance: Vec<String>,
}

impl<T> Uncertain<T> {
    /// A value believed with the given confidence, from the named source.
    pub fn new(value: T, confidence: Confidence, source: &str) -> Self {
        Uncertain { value, confidence, provenance: vec![source.to_string()] }
    }

    /// A fully trusted value (confidence 1, anonymous provenance).
    pub fn certain(value: T) -> Self {
        Uncertain { value, confidence: Confidence::CERTAIN, provenance: Vec::new() }
    }

    /// The carried value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consume and return the carried value.
    pub fn into_value(self) -> T {
        self.value
    }

    /// Degree of belief.
    pub fn confidence(&self) -> Confidence {
        self.confidence
    }

    /// Provenance trail, oldest first.
    pub fn provenance(&self) -> &[String] {
        &self.provenance
    }

    /// Apply an operation to the value; the result is *at most* as certain
    /// as the input, scaled by the operation's own reliability.
    pub fn map<U>(
        self,
        op_reliability: Confidence,
        op_name: &str,
        f: impl FnOnce(T) -> U,
    ) -> Uncertain<U> {
        let mut provenance = self.provenance;
        provenance.push(op_name.to_string());
        Uncertain {
            value: f(self.value),
            confidence: self.confidence.and(op_reliability),
            provenance,
        }
    }

    /// Record that the same value was independently confirmed by another
    /// source: confidence rises (noisy-or), provenance accumulates.
    pub fn corroborate(&mut self, confidence: Confidence, source: &str) {
        self.confidence = self.confidence.or(confidence);
        self.provenance.push(source.to_string());
    }
}

/// A non-empty set of mutually exclusive alternatives for the same logical
/// value, ordered by decreasing confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Alternatives<T> {
    options: Vec<Uncertain<T>>,
}

impl<T: PartialEq> Alternatives<T> {
    /// A single undisputed option.
    pub fn single(option: Uncertain<T>) -> Self {
        Alternatives { options: vec![option] }
    }

    /// Build from several options; fails on an empty set.
    pub fn new(mut options: Vec<Uncertain<T>>) -> Result<Self> {
        if options.is_empty() {
            return Err(GenAlgError::InvalidStructure("empty alternative set".into()));
        }
        options.sort_by(|a, b| {
            b.confidence()
                .value()
                .partial_cmp(&a.confidence().value())
                .expect("confidence is never NaN")
        });
        Ok(Alternatives { options })
    }

    /// Add another claimed value. If an existing option carries an equal
    /// value, it is corroborated; otherwise the claim becomes a new
    /// alternative. Either way the biologist retains access to every claim.
    pub fn add_claim(&mut self, claim: Uncertain<T>) {
        if let Some(existing) = self.options.iter_mut().find(|o| o.value() == claim.value()) {
            let source =
                claim.provenance().last().cloned().unwrap_or_else(|| "unknown".to_string());
            existing.corroborate(claim.confidence(), &source);
        } else {
            self.options.push(claim);
        }
        self.options.sort_by(|a, b| {
            b.confidence()
                .value()
                .partial_cmp(&a.confidence().value())
                .expect("confidence is never NaN")
        });
    }

    /// The currently most-believed option.
    pub fn best(&self) -> &Uncertain<T> {
        &self.options[0]
    }

    /// All options, most believed first.
    pub fn options(&self) -> &[Uncertain<T>] {
        &self.options
    }

    /// True if only one value is claimed.
    pub fn is_undisputed(&self) -> bool {
        self.options.len() == 1
    }

    /// Number of distinct claimed values.
    pub fn len(&self) -> usize {
        self.options.len()
    }

    /// Alternatives are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_clamps_and_rejects_nan() {
        assert_eq!(Confidence::new(1.5).unwrap().value(), 1.0);
        assert_eq!(Confidence::new(-0.5).unwrap().value(), 0.0);
        assert!(Confidence::new(f64::NAN).is_err());
        assert_eq!(Confidence::new(0.75).unwrap().to_string(), "75%");
    }

    #[test]
    fn confidence_combinators() {
        let a = Confidence::new(0.8).unwrap();
        let b = Confidence::new(0.5).unwrap();
        assert!((a.and(b).value() - 0.4).abs() < 1e-12);
        assert!((a.or(b).value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn map_decays_confidence_and_extends_provenance() {
        let v = Uncertain::new(10i64, Confidence::new(0.9).unwrap(), "genbank");
        let w = v.map(Confidence::new(0.5).unwrap(), "halve", |x| x / 2);
        assert_eq!(*w.value(), 5);
        assert!((w.confidence().value() - 0.45).abs() < 1e-12);
        assert_eq!(w.provenance(), &["genbank".to_string(), "halve".to_string()]);
    }

    #[test]
    fn corroboration_raises_confidence() {
        let mut v = Uncertain::new("ATG", Confidence::new(0.6).unwrap(), "embl");
        v.corroborate(Confidence::new(0.6).unwrap(), "ddbj");
        assert!((v.confidence().value() - 0.84).abs() < 1e-12);
        assert_eq!(v.provenance().len(), 2);
    }

    #[test]
    fn alternatives_keep_every_claim() {
        let mut alts =
            Alternatives::single(Uncertain::new("ATGC", Confidence::new(0.5).unwrap(), "genbank"));
        alts.add_claim(Uncertain::new("ATGG", Confidence::new(0.8).unwrap(), "swissprot"));
        assert_eq!(alts.len(), 2);
        assert!(!alts.is_undisputed());
        // Higher-confidence claim sorts first.
        assert_eq!(*alts.best().value(), "ATGG");
        // Both remain accessible.
        assert!(alts.options().iter().any(|o| *o.value() == "ATGC"));
    }

    #[test]
    fn matching_claim_corroborates_instead_of_duplicating() {
        let mut alts =
            Alternatives::single(Uncertain::new("ATGC", Confidence::new(0.5).unwrap(), "genbank"));
        alts.add_claim(Uncertain::new("ATGC", Confidence::new(0.5).unwrap(), "embl"));
        assert_eq!(alts.len(), 1);
        assert!(alts.is_undisputed());
        assert!((alts.best().confidence().value() - 0.75).abs() < 1e-12);
        assert_eq!(alts.best().provenance(), &["genbank".to_string(), "embl".to_string()]);
    }

    #[test]
    fn empty_alternative_set_rejected() {
        assert!(Alternatives::<i32>::new(vec![]).is_err());
        let ok = Alternatives::new(vec![Uncertain::certain(1)]).unwrap();
        assert!(!ok.is_empty());
    }
}
