//! Biological alphabets: DNA and RNA bases, IUPAC ambiguity codes, amino
//! acids, and strand orientation.
//!
//! These are the "atomic" sorts of the Genomics Algebra (§4.2): every
//! sequence GDT is a finite word over one of these alphabets. The types are
//! deliberately tiny (`u8`-sized) so that packed sequence representations
//! (see [`crate::seq`]) stay compact, per the paper's §4.4 requirement that
//! genomic values live in contiguous storage areas.

use crate::error::{GenAlgError, Result};
use std::fmt;

/// One of the four unambiguous DNA bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum DnaBase {
    A = 0,
    C = 1,
    G = 2,
    T = 3,
}

impl DnaBase {
    /// All four bases in index order.
    pub const ALL: [DnaBase; 4] = [DnaBase::A, DnaBase::C, DnaBase::G, DnaBase::T];

    /// Parse from an upper- or lower-case character.
    pub fn from_char(c: char) -> Result<Self> {
        match c {
            'A' | 'a' => Ok(DnaBase::A),
            'C' | 'c' => Ok(DnaBase::C),
            'G' | 'g' => Ok(DnaBase::G),
            'T' | 't' => Ok(DnaBase::T),
            _ => Err(GenAlgError::InvalidSymbol { symbol: c, alphabet: "DNA" }),
        }
    }

    /// Upper-case character for this base.
    pub fn to_char(self) -> char {
        match self {
            DnaBase::A => 'A',
            DnaBase::C => 'C',
            DnaBase::G => 'G',
            DnaBase::T => 'T',
        }
    }

    /// Watson–Crick complement.
    pub fn complement(self) -> Self {
        match self {
            DnaBase::A => DnaBase::T,
            DnaBase::T => DnaBase::A,
            DnaBase::C => DnaBase::G,
            DnaBase::G => DnaBase::C,
        }
    }

    /// 2-bit code (0..=3), the packed-storage representation.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`DnaBase::code`]; only the low two bits are observed.
    pub fn from_code(code: u8) -> Self {
        match code & 0b11 {
            0 => DnaBase::A,
            1 => DnaBase::C,
            2 => DnaBase::G,
            _ => DnaBase::T,
        }
    }

    /// The RNA base this DNA base transcribes to (template-free convention:
    /// T becomes U, everything else is unchanged).
    pub fn to_rna(self) -> RnaBase {
        match self {
            DnaBase::A => RnaBase::A,
            DnaBase::C => RnaBase::C,
            DnaBase::G => RnaBase::G,
            DnaBase::T => RnaBase::U,
        }
    }
}

impl fmt::Display for DnaBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// One of the four unambiguous RNA bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum RnaBase {
    A = 0,
    C = 1,
    G = 2,
    U = 3,
}

impl RnaBase {
    /// All four bases in index order.
    pub const ALL: [RnaBase; 4] = [RnaBase::A, RnaBase::C, RnaBase::G, RnaBase::U];

    /// Parse from an upper- or lower-case character.
    pub fn from_char(c: char) -> Result<Self> {
        match c {
            'A' | 'a' => Ok(RnaBase::A),
            'C' | 'c' => Ok(RnaBase::C),
            'G' | 'g' => Ok(RnaBase::G),
            'U' | 'u' => Ok(RnaBase::U),
            _ => Err(GenAlgError::InvalidSymbol { symbol: c, alphabet: "RNA" }),
        }
    }

    /// Upper-case character for this base.
    pub fn to_char(self) -> char {
        match self {
            RnaBase::A => 'A',
            RnaBase::C => 'C',
            RnaBase::G => 'G',
            RnaBase::U => 'U',
        }
    }

    /// Complement within the RNA alphabet (A↔U, C↔G).
    pub fn complement(self) -> Self {
        match self {
            RnaBase::A => RnaBase::U,
            RnaBase::U => RnaBase::A,
            RnaBase::C => RnaBase::G,
            RnaBase::G => RnaBase::C,
        }
    }

    /// 2-bit code (0..=3).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`RnaBase::code`]; only the low two bits are observed.
    pub fn from_code(code: u8) -> Self {
        match code & 0b11 {
            0 => RnaBase::A,
            1 => RnaBase::C,
            2 => RnaBase::G,
            _ => RnaBase::U,
        }
    }

    /// Reverse transcription: the DNA base this RNA base corresponds to.
    pub fn to_dna(self) -> DnaBase {
        match self {
            RnaBase::A => DnaBase::A,
            RnaBase::C => DnaBase::C,
            RnaBase::G => DnaBase::G,
            RnaBase::U => DnaBase::T,
        }
    }
}

impl fmt::Display for RnaBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// IUPAC nucleotide code, including ambiguity symbols.
///
/// Genomic repositories are noisy (the paper's problem **B10** estimates
/// 30–60 % of GenBank sequences contain errors), so real entries routinely
/// contain ambiguity codes. The representation is a 4-bit mask with one bit
/// per unambiguous base: bit 0 = A, bit 1 = C, bit 2 = G, bit 3 = T.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IupacDna(u8);

impl IupacDna {
    pub const A: IupacDna = IupacDna(0b0001);
    pub const C: IupacDna = IupacDna(0b0010);
    pub const G: IupacDna = IupacDna(0b0100);
    pub const T: IupacDna = IupacDna(0b1000);
    /// A or G (purine).
    pub const R: IupacDna = IupacDna(0b0101);
    /// C or T (pyrimidine).
    pub const Y: IupacDna = IupacDna(0b1010);
    /// G or C (strong).
    pub const S: IupacDna = IupacDna(0b0110);
    /// A or T (weak).
    pub const W: IupacDna = IupacDna(0b1001);
    /// G or T (keto).
    pub const K: IupacDna = IupacDna(0b1100);
    /// A or C (amino).
    pub const M: IupacDna = IupacDna(0b0011);
    /// C, G or T (not A).
    pub const B: IupacDna = IupacDna(0b1110);
    /// A, G or T (not C).
    pub const D: IupacDna = IupacDna(0b1101);
    /// A, C or T (not G).
    pub const H: IupacDna = IupacDna(0b1011);
    /// A, C or G (not T).
    pub const V: IupacDna = IupacDna(0b0111);
    /// Any base.
    pub const N: IupacDna = IupacDna(0b1111);

    /// Parse from an upper- or lower-case IUPAC character.
    pub fn from_char(c: char) -> Result<Self> {
        Ok(match c.to_ascii_uppercase() {
            'A' => Self::A,
            'C' => Self::C,
            'G' => Self::G,
            'T' => Self::T,
            'R' => Self::R,
            'Y' => Self::Y,
            'S' => Self::S,
            'W' => Self::W,
            'K' => Self::K,
            'M' => Self::M,
            'B' => Self::B,
            'D' => Self::D,
            'H' => Self::H,
            'V' => Self::V,
            'N' => Self::N,
            _ => return Err(GenAlgError::InvalidSymbol { symbol: c, alphabet: "IUPAC DNA" }),
        })
    }

    /// Canonical upper-case IUPAC character.
    pub fn to_char(self) -> char {
        match self.0 {
            0b0001 => 'A',
            0b0010 => 'C',
            0b0100 => 'G',
            0b1000 => 'T',
            0b0101 => 'R',
            0b1010 => 'Y',
            0b0110 => 'S',
            0b1001 => 'W',
            0b1100 => 'K',
            0b0011 => 'M',
            0b1110 => 'B',
            0b1101 => 'D',
            0b1011 => 'H',
            0b0111 => 'V',
            _ => 'N',
        }
    }

    /// The 4-bit mask (1 bit per matching base), the packed representation.
    pub fn mask(self) -> u8 {
        self.0
    }

    /// Rebuild from a 4-bit mask. A zero mask is normalized to `N` so that
    /// corrupt data never produces an impossible symbol.
    pub fn from_mask(mask: u8) -> Self {
        let m = mask & 0b1111;
        if m == 0 {
            Self::N
        } else {
            IupacDna(m)
        }
    }

    /// Lift an unambiguous base into the IUPAC alphabet.
    pub fn from_base(b: DnaBase) -> Self {
        IupacDna(1 << b.code())
    }

    /// Returns the unambiguous base if this code denotes exactly one.
    pub fn as_base(self) -> Option<DnaBase> {
        match self.0 {
            0b0001 => Some(DnaBase::A),
            0b0010 => Some(DnaBase::C),
            0b0100 => Some(DnaBase::G),
            0b1000 => Some(DnaBase::T),
            _ => None,
        }
    }

    /// True if this code is a single concrete base.
    pub fn is_unambiguous(self) -> bool {
        self.0.count_ones() == 1
    }

    /// True if `base` is among the bases this code can stand for.
    pub fn matches(self, base: DnaBase) -> bool {
        self.0 & (1 << base.code()) != 0
    }

    /// True if the two codes could denote the same base (mask intersection).
    pub fn compatible(self, other: IupacDna) -> bool {
        self.0 & other.0 != 0
    }

    /// IUPAC complement: complement each base in the mask.
    pub fn complement(self) -> Self {
        let m = self.0;
        let mut out = 0u8;
        // A(bit0)<->T(bit3), C(bit1)<->G(bit2)
        if m & 0b0001 != 0 {
            out |= 0b1000;
        }
        if m & 0b1000 != 0 {
            out |= 0b0001;
        }
        if m & 0b0010 != 0 {
            out |= 0b0100;
        }
        if m & 0b0100 != 0 {
            out |= 0b0010;
        }
        IupacDna(out)
    }

    /// Number of concrete bases this code may stand for (1–4).
    pub fn cardinality(self) -> u32 {
        self.0.count_ones()
    }
}

impl fmt::Display for IupacDna {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// The twenty proteinogenic amino acids plus the translation-stop marker and
/// the `X` "unknown residue" code that noisy repository entries use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AminoAcid {
    Ala = 0,
    Arg = 1,
    Asn = 2,
    Asp = 3,
    Cys = 4,
    Gln = 5,
    Glu = 6,
    Gly = 7,
    His = 8,
    Ile = 9,
    Leu = 10,
    Lys = 11,
    Met = 12,
    Phe = 13,
    Pro = 14,
    Ser = 15,
    Thr = 16,
    Trp = 17,
    Tyr = 18,
    Val = 19,
    /// Translation stop (`*` in one-letter notation).
    Stop = 20,
    /// Unknown / any residue (`X`).
    Unknown = 21,
}

impl AminoAcid {
    /// The twenty standard residues (no Stop, no Unknown), in enum order.
    pub const STANDARD: [AminoAcid; 20] = [
        AminoAcid::Ala,
        AminoAcid::Arg,
        AminoAcid::Asn,
        AminoAcid::Asp,
        AminoAcid::Cys,
        AminoAcid::Gln,
        AminoAcid::Glu,
        AminoAcid::Gly,
        AminoAcid::His,
        AminoAcid::Ile,
        AminoAcid::Leu,
        AminoAcid::Lys,
        AminoAcid::Met,
        AminoAcid::Phe,
        AminoAcid::Pro,
        AminoAcid::Ser,
        AminoAcid::Thr,
        AminoAcid::Trp,
        AminoAcid::Tyr,
        AminoAcid::Val,
    ];

    /// Parse the one-letter code.
    pub fn from_char(c: char) -> Result<Self> {
        Ok(match c.to_ascii_uppercase() {
            'A' => AminoAcid::Ala,
            'R' => AminoAcid::Arg,
            'N' => AminoAcid::Asn,
            'D' => AminoAcid::Asp,
            'C' => AminoAcid::Cys,
            'Q' => AminoAcid::Gln,
            'E' => AminoAcid::Glu,
            'G' => AminoAcid::Gly,
            'H' => AminoAcid::His,
            'I' => AminoAcid::Ile,
            'L' => AminoAcid::Leu,
            'K' => AminoAcid::Lys,
            'M' => AminoAcid::Met,
            'F' => AminoAcid::Phe,
            'P' => AminoAcid::Pro,
            'S' => AminoAcid::Ser,
            'T' => AminoAcid::Thr,
            'W' => AminoAcid::Trp,
            'Y' => AminoAcid::Tyr,
            'V' => AminoAcid::Val,
            '*' => AminoAcid::Stop,
            'X' => AminoAcid::Unknown,
            _ => return Err(GenAlgError::InvalidSymbol { symbol: c, alphabet: "amino acid" }),
        })
    }

    /// One-letter code.
    pub fn to_char(self) -> char {
        match self {
            AminoAcid::Ala => 'A',
            AminoAcid::Arg => 'R',
            AminoAcid::Asn => 'N',
            AminoAcid::Asp => 'D',
            AminoAcid::Cys => 'C',
            AminoAcid::Gln => 'Q',
            AminoAcid::Glu => 'E',
            AminoAcid::Gly => 'G',
            AminoAcid::His => 'H',
            AminoAcid::Ile => 'I',
            AminoAcid::Leu => 'L',
            AminoAcid::Lys => 'K',
            AminoAcid::Met => 'M',
            AminoAcid::Phe => 'F',
            AminoAcid::Pro => 'P',
            AminoAcid::Ser => 'S',
            AminoAcid::Thr => 'T',
            AminoAcid::Trp => 'W',
            AminoAcid::Tyr => 'Y',
            AminoAcid::Val => 'V',
            AminoAcid::Stop => '*',
            AminoAcid::Unknown => 'X',
        }
    }

    /// Three-letter abbreviation (`Ter` for stop, `Xaa` for unknown).
    pub fn three_letter(self) -> &'static str {
        match self {
            AminoAcid::Ala => "Ala",
            AminoAcid::Arg => "Arg",
            AminoAcid::Asn => "Asn",
            AminoAcid::Asp => "Asp",
            AminoAcid::Cys => "Cys",
            AminoAcid::Gln => "Gln",
            AminoAcid::Glu => "Glu",
            AminoAcid::Gly => "Gly",
            AminoAcid::His => "His",
            AminoAcid::Ile => "Ile",
            AminoAcid::Leu => "Leu",
            AminoAcid::Lys => "Lys",
            AminoAcid::Met => "Met",
            AminoAcid::Phe => "Phe",
            AminoAcid::Pro => "Pro",
            AminoAcid::Ser => "Ser",
            AminoAcid::Thr => "Thr",
            AminoAcid::Trp => "Trp",
            AminoAcid::Tyr => "Tyr",
            AminoAcid::Val => "Val",
            AminoAcid::Stop => "Ter",
            AminoAcid::Unknown => "Xaa",
        }
    }

    /// Average (isotope-weighted) residue mass in daltons; 0 for stop,
    /// and the mean standard-residue mass for unknown.
    pub fn monoisotopic_mass(self) -> f64 {
        match self {
            AminoAcid::Ala => 71.03711,
            AminoAcid::Arg => 156.10111,
            AminoAcid::Asn => 114.04293,
            AminoAcid::Asp => 115.02694,
            AminoAcid::Cys => 103.00919,
            AminoAcid::Gln => 128.05858,
            AminoAcid::Glu => 129.04259,
            AminoAcid::Gly => 57.02146,
            AminoAcid::His => 137.05891,
            AminoAcid::Ile => 113.08406,
            AminoAcid::Leu => 113.08406,
            AminoAcid::Lys => 128.09496,
            AminoAcid::Met => 131.04049,
            AminoAcid::Phe => 147.06841,
            AminoAcid::Pro => 97.05276,
            AminoAcid::Ser => 87.03203,
            AminoAcid::Thr => 101.04768,
            AminoAcid::Trp => 186.07931,
            AminoAcid::Tyr => 163.06333,
            AminoAcid::Val => 99.06841,
            AminoAcid::Stop => 0.0,
            AminoAcid::Unknown => 110.0,
        }
    }

    /// Kyte–Doolittle hydropathy index.
    pub fn hydropathy(self) -> f64 {
        match self {
            AminoAcid::Ala => 1.8,
            AminoAcid::Arg => -4.5,
            AminoAcid::Asn => -3.5,
            AminoAcid::Asp => -3.5,
            AminoAcid::Cys => 2.5,
            AminoAcid::Gln => -3.5,
            AminoAcid::Glu => -3.5,
            AminoAcid::Gly => -0.4,
            AminoAcid::His => -3.2,
            AminoAcid::Ile => 4.5,
            AminoAcid::Leu => 3.8,
            AminoAcid::Lys => -3.9,
            AminoAcid::Met => 1.9,
            AminoAcid::Phe => 2.8,
            AminoAcid::Pro => -1.6,
            AminoAcid::Ser => -0.8,
            AminoAcid::Thr => -0.7,
            AminoAcid::Trp => -0.9,
            AminoAcid::Tyr => -1.3,
            AminoAcid::Val => 4.2,
            AminoAcid::Stop | AminoAcid::Unknown => 0.0,
        }
    }

    /// 5-bit storage code (0..=21).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`AminoAcid::code`]; out-of-range codes become `Unknown`.
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => AminoAcid::Ala,
            1 => AminoAcid::Arg,
            2 => AminoAcid::Asn,
            3 => AminoAcid::Asp,
            4 => AminoAcid::Cys,
            5 => AminoAcid::Gln,
            6 => AminoAcid::Glu,
            7 => AminoAcid::Gly,
            8 => AminoAcid::His,
            9 => AminoAcid::Ile,
            10 => AminoAcid::Leu,
            11 => AminoAcid::Lys,
            12 => AminoAcid::Met,
            13 => AminoAcid::Phe,
            14 => AminoAcid::Pro,
            15 => AminoAcid::Ser,
            16 => AminoAcid::Thr,
            17 => AminoAcid::Trp,
            18 => AminoAcid::Tyr,
            19 => AminoAcid::Val,
            20 => AminoAcid::Stop,
            _ => AminoAcid::Unknown,
        }
    }
}

impl fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Which strand of the double helix a feature lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strand {
    #[default]
    Forward,
    Reverse,
}

impl Strand {
    /// The opposite strand.
    pub fn flipped(self) -> Self {
        match self {
            Strand::Forward => Strand::Reverse,
            Strand::Reverse => Strand::Forward,
        }
    }

    /// `+` / `-` notation used by annotation formats.
    pub fn symbol(self) -> char {
        match self {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        }
    }

    /// Parse `+` / `-`.
    pub fn from_symbol(c: char) -> Result<Self> {
        match c {
            '+' => Ok(Strand::Forward),
            '-' => Ok(Strand::Reverse),
            _ => Err(GenAlgError::InvalidSymbol { symbol: c, alphabet: "strand" }),
        }
    }
}

impl fmt::Display for Strand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_roundtrip_chars() {
        for b in DnaBase::ALL {
            assert_eq!(DnaBase::from_char(b.to_char()).unwrap(), b);
            assert_eq!(DnaBase::from_char(b.to_char().to_ascii_lowercase()).unwrap(), b);
        }
        assert!(DnaBase::from_char('U').is_err());
    }

    #[test]
    fn dna_complement_is_involution() {
        for b in DnaBase::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(DnaBase::A.complement(), DnaBase::T);
        assert_eq!(DnaBase::G.complement(), DnaBase::C);
    }

    #[test]
    fn dna_code_roundtrip() {
        for b in DnaBase::ALL {
            assert_eq!(DnaBase::from_code(b.code()), b);
        }
    }

    #[test]
    fn rna_roundtrip_and_complement() {
        for b in RnaBase::ALL {
            assert_eq!(RnaBase::from_char(b.to_char()).unwrap(), b);
            assert_eq!(b.complement().complement(), b);
            assert_eq!(RnaBase::from_code(b.code()), b);
        }
        assert!(RnaBase::from_char('T').is_err());
    }

    #[test]
    fn transcription_mapping() {
        assert_eq!(DnaBase::T.to_rna(), RnaBase::U);
        assert_eq!(DnaBase::A.to_rna(), RnaBase::A);
        for b in RnaBase::ALL {
            assert_eq!(b.to_dna().to_rna(), b);
        }
    }

    #[test]
    fn iupac_all_fifteen_codes_roundtrip() {
        for c in "ACGTRYSWKMBDHVN".chars() {
            let code = IupacDna::from_char(c).unwrap();
            assert_eq!(code.to_char(), c);
            assert_eq!(IupacDna::from_mask(code.mask()), code);
        }
        assert!(IupacDna::from_char('Z').is_err());
    }

    #[test]
    fn iupac_matching_semantics() {
        assert!(IupacDna::N.matches(DnaBase::A));
        assert!(IupacDna::N.matches(DnaBase::T));
        assert!(IupacDna::R.matches(DnaBase::A));
        assert!(IupacDna::R.matches(DnaBase::G));
        assert!(!IupacDna::R.matches(DnaBase::C));
        assert!(IupacDna::R.compatible(IupacDna::D));
        assert!(!IupacDna::S.compatible(IupacDna::W));
    }

    #[test]
    fn iupac_complement_pairs() {
        assert_eq!(IupacDna::A.complement(), IupacDna::T);
        assert_eq!(IupacDna::R.complement(), IupacDna::Y);
        assert_eq!(IupacDna::S.complement(), IupacDna::S);
        assert_eq!(IupacDna::W.complement(), IupacDna::W);
        assert_eq!(IupacDna::B.complement(), IupacDna::V);
        assert_eq!(IupacDna::N.complement(), IupacDna::N);
        for c in "ACGTRYSWKMBDHVN".chars() {
            let x = IupacDna::from_char(c).unwrap();
            assert_eq!(x.complement().complement(), x, "complement not involutive for {c}");
        }
    }

    #[test]
    fn iupac_zero_mask_normalizes_to_n() {
        assert_eq!(IupacDna::from_mask(0), IupacDna::N);
    }

    #[test]
    fn iupac_cardinality() {
        assert_eq!(IupacDna::A.cardinality(), 1);
        assert_eq!(IupacDna::R.cardinality(), 2);
        assert_eq!(IupacDna::B.cardinality(), 3);
        assert_eq!(IupacDna::N.cardinality(), 4);
    }

    #[test]
    fn amino_acid_roundtrip() {
        for aa in AminoAcid::STANDARD {
            assert_eq!(AminoAcid::from_char(aa.to_char()).unwrap(), aa);
            assert_eq!(AminoAcid::from_code(aa.code()), aa);
            assert_eq!(aa.three_letter().len(), 3);
        }
        assert_eq!(AminoAcid::from_char('*').unwrap(), AminoAcid::Stop);
        assert_eq!(AminoAcid::from_char('x').unwrap(), AminoAcid::Unknown);
        assert!(AminoAcid::from_char('J').is_err());
        assert_eq!(AminoAcid::from_code(99), AminoAcid::Unknown);
    }

    #[test]
    fn amino_acid_masses_positive() {
        for aa in AminoAcid::STANDARD {
            assert!(aa.monoisotopic_mass() > 50.0, "{aa:?}");
        }
        assert!((AminoAcid::Gly.monoisotopic_mass() - 57.02146).abs() < 1e-9);
    }

    #[test]
    fn strand_flip_and_symbols() {
        assert_eq!(Strand::Forward.flipped(), Strand::Reverse);
        assert_eq!(Strand::Reverse.flipped(), Strand::Forward);
        assert_eq!(Strand::from_symbol('+').unwrap(), Strand::Forward);
        assert_eq!(Strand::from_symbol('-').unwrap(), Strand::Reverse);
        assert!(Strand::from_symbol('?').is_err());
        assert_eq!(Strand::default(), Strand::Forward);
    }
}
