//! Intervals, locations, and annotation features.

use crate::alphabet::Strand;
use crate::error::{GenAlgError, Result};
use std::fmt;

/// A half-open interval `[start, end)` in sequence coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    pub start: usize,
    pub end: usize,
}

impl Interval {
    /// Construct, rejecting empty or inverted intervals.
    pub fn new(start: usize, end: usize) -> Result<Self> {
        if start >= end {
            return Err(GenAlgError::EmptyInterval { start, end });
        }
        Ok(Interval { start, end })
    }

    /// Length in positions.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Intervals constructed through [`Interval::new`] are never empty, but
    /// deserialized ones may be checked.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// True if `pos` lies inside the interval.
    pub fn contains(&self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }

    /// True if the two intervals share at least one position.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The common sub-interval, if any.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// Shift both endpoints by `offset` (used when mapping between gene and
    /// chromosome coordinate systems).
    pub fn shifted(&self, offset: isize) -> Result<Interval> {
        let start = self.start as isize + offset;
        let end = self.end as isize + offset;
        if start < 0 || end < 0 {
            return Err(GenAlgError::OutOfBounds { index: 0, len: 0 });
        }
        Interval::new(start as usize, end as usize)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A (possibly multi-segment) location on a sequence with an orientation —
/// the shape of a GenBank `join(...)` location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    intervals: Vec<Interval>,
    strand: Strand,
}

impl Location {
    /// A single-segment location.
    pub fn simple(interval: Interval, strand: Strand) -> Self {
        Location { intervals: vec![interval], strand }
    }

    /// A multi-segment (`join`) location. Segments must be sorted and
    /// non-overlapping.
    pub fn join(intervals: Vec<Interval>, strand: Strand) -> Result<Self> {
        if intervals.is_empty() {
            return Err(GenAlgError::InvalidStructure("location with no segments".into()));
        }
        for pair in intervals.windows(2) {
            if pair[0].end > pair[1].start {
                return Err(GenAlgError::InvalidStructure(format!(
                    "location segments {} and {} overlap or are out of order",
                    pair[0], pair[1]
                )));
            }
        }
        Ok(Location { intervals, strand })
    }

    /// The ordered segments.
    pub fn segments(&self) -> &[Interval] {
        &self.intervals
    }

    /// Orientation of the feature.
    pub fn strand(&self) -> Strand {
        self.strand
    }

    /// Total number of positions covered.
    pub fn span_len(&self) -> usize {
        self.intervals.iter().map(Interval::len).sum()
    }

    /// Smallest interval containing every segment.
    pub fn envelope(&self) -> Interval {
        Interval {
            start: self.intervals.first().expect("non-empty by construction").start,
            end: self.intervals.last().expect("non-empty by construction").end,
        }
    }

    /// True if `pos` lies inside any segment.
    pub fn contains(&self, pos: usize) -> bool {
        self.intervals.iter().any(|iv| iv.contains(pos))
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.len() == 1 {
            write!(f, "{}{}", self.intervals[0], self.strand.symbol())
        } else {
            write!(f, "join(")?;
            for (i, iv) in self.intervals.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{iv}")?;
            }
            write!(f, "){}", self.strand.symbol())
        }
    }
}

/// The vocabulary of annotation feature kinds (GenBank feature keys).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    Source,
    Gene,
    Cds,
    Exon,
    Intron,
    Promoter,
    /// mRNA feature as annotated on genomic records.
    Mrna,
    /// Any key not in the controlled list; the raw key is preserved.
    Other(String),
}

impl FeatureKind {
    /// The GenBank feature-table key for this kind.
    pub fn key(&self) -> &str {
        match self {
            FeatureKind::Source => "source",
            FeatureKind::Gene => "gene",
            FeatureKind::Cds => "CDS",
            FeatureKind::Exon => "exon",
            FeatureKind::Intron => "intron",
            FeatureKind::Promoter => "promoter",
            FeatureKind::Mrna => "mRNA",
            FeatureKind::Other(k) => k,
        }
    }

    /// Parse a GenBank feature-table key.
    pub fn from_key(key: &str) -> Self {
        match key {
            "source" => FeatureKind::Source,
            "gene" => FeatureKind::Gene,
            "CDS" => FeatureKind::Cds,
            "exon" => FeatureKind::Exon,
            "intron" => FeatureKind::Intron,
            "promoter" => FeatureKind::Promoter,
            "mRNA" => FeatureKind::Mrna,
            other => FeatureKind::Other(other.to_string()),
        }
    }
}

/// An annotation feature: kind + location + qualifier key/value pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    pub kind: FeatureKind,
    pub location: Location,
    qualifiers: Vec<(String, String)>,
}

impl Feature {
    /// A feature with no qualifiers.
    pub fn new(kind: FeatureKind, location: Location) -> Self {
        Feature { kind, location, qualifiers: Vec::new() }
    }

    /// Add a qualifier (builder style).
    pub fn with_qualifier(mut self, key: &str, value: &str) -> Self {
        self.qualifiers.push((key.to_string(), value.to_string()));
        self
    }

    /// First value of the named qualifier.
    pub fn qualifier(&self, key: &str) -> Option<&str> {
        self.qualifiers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// All qualifiers in insertion order.
    pub fn qualifiers(&self) -> &[(String, String)] {
        &self.qualifiers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_construction() {
        let iv = Interval::new(3, 9).unwrap();
        assert_eq!(iv.len(), 6);
        assert!(Interval::new(5, 5).is_err());
        assert!(Interval::new(9, 3).is_err());
    }

    #[test]
    fn interval_contains_half_open() {
        let iv = Interval::new(3, 6).unwrap();
        assert!(iv.contains(3));
        assert!(iv.contains(5));
        assert!(!iv.contains(6));
        assert!(!iv.contains(2));
    }

    #[test]
    fn interval_overlap_and_intersect() {
        let a = Interval::new(0, 5).unwrap();
        let b = Interval::new(3, 8).unwrap();
        let c = Interval::new(5, 9).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // touching is not overlapping
        assert_eq!(a.intersect(&b), Some(Interval::new(3, 5).unwrap()));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn interval_shift() {
        let iv = Interval::new(5, 10).unwrap();
        assert_eq!(iv.shifted(3).unwrap(), Interval::new(8, 13).unwrap());
        assert_eq!(iv.shifted(-5).unwrap(), Interval::new(0, 5).unwrap());
        assert!(iv.shifted(-6).is_err());
    }

    #[test]
    fn location_join_validation() {
        let a = Interval::new(0, 5).unwrap();
        let b = Interval::new(5, 9).unwrap();
        let c = Interval::new(3, 7).unwrap();
        assert!(Location::join(vec![a, b], Strand::Forward).is_ok());
        assert!(Location::join(vec![a, c], Strand::Forward).is_err());
        assert!(Location::join(vec![b, a], Strand::Forward).is_err());
        assert!(Location::join(vec![], Strand::Forward).is_err());
    }

    #[test]
    fn location_metrics() {
        let loc = Location::join(
            vec![Interval::new(0, 5).unwrap(), Interval::new(10, 13).unwrap()],
            Strand::Reverse,
        )
        .unwrap();
        assert_eq!(loc.span_len(), 8);
        assert_eq!(loc.envelope(), Interval { start: 0, end: 13 });
        assert!(loc.contains(11));
        assert!(!loc.contains(7));
        assert_eq!(loc.strand(), Strand::Reverse);
        assert_eq!(loc.to_string(), "join([0, 5),[10, 13))-");
    }

    #[test]
    fn feature_qualifiers() {
        let f = Feature::new(
            FeatureKind::Cds,
            Location::simple(Interval::new(0, 9).unwrap(), Strand::Forward),
        )
        .with_qualifier("gene", "tp53")
        .with_qualifier("product", "tumor protein");
        assert_eq!(f.qualifier("gene"), Some("tp53"));
        assert_eq!(f.qualifier("nope"), None);
        assert_eq!(f.qualifiers().len(), 2);
    }

    #[test]
    fn feature_kind_keys_roundtrip() {
        for kind in [
            FeatureKind::Source,
            FeatureKind::Gene,
            FeatureKind::Cds,
            FeatureKind::Exon,
            FeatureKind::Intron,
            FeatureKind::Promoter,
            FeatureKind::Mrna,
            FeatureKind::Other("repeat_region".into()),
        ] {
            assert_eq!(FeatureKind::from_key(kind.key()), kind);
        }
    }
}
