//! Structured genomic data types.
//!
//! Beyond raw sequences, the Genomics Algebra models the *objects* biologists
//! talk about (§4.2): genes with exon/intron structure, primary transcripts,
//! messenger RNAs, proteins, chromosomes, and whole genomes. Each type
//! validates its own structural invariants on construction so that the
//! central-dogma operations in [`crate::dogma`] never see malformed input.

mod annotation;
mod chromosome;
mod gene;
mod genome;
mod protein;
mod transcript;

pub use annotation::{Feature, FeatureKind, Interval, Location};
pub use chromosome::Chromosome;
pub use gene::{Gene, GeneBuilder, GenomicLocus};
pub use genome::Genome;
pub use protein::Protein;
pub use transcript::{Mrna, PrimaryTranscript};
