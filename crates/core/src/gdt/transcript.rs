//! The `primary transcript` and `mRNA` genomic data types.

use crate::error::{GenAlgError, Result};
use crate::gdt::annotation::Interval;
use crate::seq::RnaSeq;

/// A primary transcript (pre-mRNA): the full RNA copy of a gene region,
/// introns included, with the exon structure carried along so `splice`
/// knows what to keep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimaryTranscript {
    gene_id: String,
    seq: RnaSeq,
    exons: Vec<Interval>,
    /// NCBI translation-table number inherited from the gene.
    code_table: u8,
}

impl PrimaryTranscript {
    /// Construct and validate: exons must be sorted, disjoint, non-empty,
    /// and within the transcript.
    pub fn new(gene_id: &str, seq: RnaSeq, exons: Vec<Interval>, code_table: u8) -> Result<Self> {
        if exons.is_empty() {
            return Err(GenAlgError::InvalidStructure(format!(
                "transcript of {gene_id} has no exons"
            )));
        }
        for iv in &exons {
            if iv.is_empty() {
                return Err(GenAlgError::EmptyInterval { start: iv.start, end: iv.end });
            }
            if iv.end > seq.len() {
                return Err(GenAlgError::OutOfBounds { index: iv.end, len: seq.len() });
            }
        }
        for pair in exons.windows(2) {
            if pair[0].end > pair[1].start {
                return Err(GenAlgError::InvalidStructure(format!(
                    "transcript of {gene_id}: exons {} and {} overlap",
                    pair[0], pair[1]
                )));
            }
        }
        Ok(PrimaryTranscript { gene_id: gene_id.to_string(), seq, exons, code_table })
    }

    /// The gene this transcript was read from.
    pub fn gene_id(&self) -> &str {
        &self.gene_id
    }

    /// Full pre-mRNA sequence (introns included).
    pub fn sequence(&self) -> &RnaSeq {
        &self.seq
    }

    /// Exon intervals in transcript coordinates.
    pub fn exons(&self) -> &[Interval] {
        &self.exons
    }

    /// Translation table inherited from the gene.
    pub fn code_table(&self) -> u8 {
        self.code_table
    }
}

/// A mature messenger RNA: the exon-concatenated sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mrna {
    gene_id: String,
    seq: RnaSeq,
    /// Coding region, if it has been located (start codon through stop).
    cds: Option<Interval>,
    code_table: u8,
}

impl Mrna {
    /// Construct; the CDS, if given, must lie within the sequence and be a
    /// codon multiple.
    pub fn new(gene_id: &str, seq: RnaSeq, cds: Option<Interval>, code_table: u8) -> Result<Self> {
        if let Some(cds) = &cds {
            if cds.end > seq.len() {
                return Err(GenAlgError::OutOfBounds { index: cds.end, len: seq.len() });
            }
            if cds.len() % 3 != 0 {
                return Err(GenAlgError::LengthMismatch {
                    expected: "CDS length divisible by 3".into(),
                    actual: cds.len(),
                });
            }
        }
        Ok(Mrna { gene_id: gene_id.to_string(), seq, cds, code_table })
    }

    /// The gene this mRNA derives from.
    pub fn gene_id(&self) -> &str {
        &self.gene_id
    }

    /// The mature (spliced) sequence.
    pub fn sequence(&self) -> &RnaSeq {
        &self.seq
    }

    /// The located coding region, if any.
    pub fn cds(&self) -> Option<Interval> {
        self.cds
    }

    /// Translation table inherited from the gene.
    pub fn code_table(&self) -> u8 {
        self.code_table
    }

    /// The coding subsequence, if the CDS is known.
    pub fn coding_sequence(&self) -> Result<Option<RnaSeq>> {
        match self.cds {
            Some(iv) => Ok(Some(self.seq.subseq(iv.start, iv.end)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rna(s: &str) -> RnaSeq {
        RnaSeq::from_text(s).unwrap()
    }

    #[test]
    fn transcript_validation() {
        let seq = rna("AUGGCCUUUAAG");
        let ok = PrimaryTranscript::new(
            "g",
            seq.clone(),
            vec![Interval::new(0, 6).unwrap(), Interval::new(9, 12).unwrap()],
            1,
        );
        assert!(ok.is_ok());
        assert!(PrimaryTranscript::new("g", seq.clone(), vec![], 1).is_err());
        assert!(PrimaryTranscript::new("g", seq.clone(), vec![Interval::new(0, 20).unwrap()], 1)
            .is_err());
        assert!(PrimaryTranscript::new(
            "g",
            seq,
            vec![Interval::new(0, 6).unwrap(), Interval::new(4, 9).unwrap()],
            1
        )
        .is_err());
    }

    #[test]
    fn mrna_cds_validation() {
        let seq = rna("AUGGCCUAA");
        let ok = Mrna::new("g", seq.clone(), Some(Interval::new(0, 9).unwrap()), 1).unwrap();
        assert_eq!(ok.coding_sequence().unwrap().unwrap().to_text(), "AUGGCCUAA");
        assert!(Mrna::new("g", seq.clone(), Some(Interval::new(0, 10).unwrap()), 1).is_err());
        assert!(Mrna::new("g", seq.clone(), Some(Interval::new(0, 4).unwrap()), 1).is_err());
        let none = Mrna::new("g", seq, None, 1).unwrap();
        assert!(none.coding_sequence().unwrap().is_none());
    }
}
