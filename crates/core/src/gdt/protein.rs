//! The `protein` genomic data type: a named, annotated protein.

use crate::gdt::annotation::Feature;
use crate::seq::ProteinSeq;

/// A protein: identifier, optional name/organism metadata, sequence, and
/// annotation features (domains, active sites, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Protein {
    id: String,
    name: Option<String>,
    organism: Option<String>,
    seq: ProteinSeq,
    features: Vec<Feature>,
}

impl Protein {
    /// A protein with just an id and a sequence.
    pub fn new(id: &str, seq: ProteinSeq) -> Self {
        Protein { id: id.to_string(), name: None, organism: None, seq, features: Vec::new() }
    }

    /// Set the human-readable name (builder style).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Set the source organism (builder style).
    pub fn with_organism(mut self, organism: &str) -> Self {
        self.organism = Some(organism.to_string());
        self
    }

    /// Attach a feature (builder style).
    pub fn with_feature(mut self, feature: Feature) -> Self {
        self.features.push(feature);
        self
    }

    /// Stable identifier (accession).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Human-readable protein name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Source organism.
    pub fn organism(&self) -> Option<&str> {
        self.organism.as_deref()
    }

    /// The residue sequence.
    pub fn sequence(&self) -> &ProteinSeq {
        &self.seq
    }

    /// Annotation features.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Residue count.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Strand;
    use crate::gdt::annotation::{FeatureKind, Interval, Location};

    #[test]
    fn builder_style_metadata() {
        let p = Protein::new("P04637", ProteinSeq::from_text("MEEPQSDPSV").unwrap())
            .with_name("Cellular tumor antigen p53")
            .with_organism("Homo sapiens")
            .with_feature(Feature::new(
                FeatureKind::Other("domain".into()),
                Location::simple(Interval::new(0, 5).unwrap(), Strand::Forward),
            ));
        assert_eq!(p.id(), "P04637");
        assert_eq!(p.name(), Some("Cellular tumor antigen p53"));
        assert_eq!(p.organism(), Some("Homo sapiens"));
        assert_eq!(p.len(), 10);
        assert_eq!(p.features().len(), 1);
        assert!(!p.is_empty());
    }
}
