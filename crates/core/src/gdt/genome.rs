//! The `genome` genomic data type: the full hereditary information of an
//! organism.

use crate::error::{GenAlgError, Result};
use crate::gdt::chromosome::Chromosome;
use crate::gdt::gene::Gene;

/// A genome: organism metadata plus a set of chromosomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Genome {
    organism: String,
    /// Taxonomic lineage, most general first (e.g. `["Eukaryota", "Metazoa", …]`).
    taxonomy: Vec<String>,
    chromosomes: Vec<Chromosome>,
}

impl Genome {
    /// An empty genome for the named organism.
    pub fn new(organism: &str) -> Self {
        Genome { organism: organism.to_string(), taxonomy: Vec::new(), chromosomes: Vec::new() }
    }

    /// Set the taxonomic lineage (builder style).
    pub fn with_taxonomy(mut self, lineage: &[&str]) -> Self {
        self.taxonomy = lineage.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Organism name.
    pub fn organism(&self) -> &str {
        &self.organism
    }

    /// Taxonomic lineage.
    pub fn taxonomy(&self) -> &[String] {
        &self.taxonomy
    }

    /// The chromosomes.
    pub fn chromosomes(&self) -> &[Chromosome] {
        &self.chromosomes
    }

    /// Add a chromosome; names must be unique within the genome.
    pub fn add_chromosome(&mut self, chromosome: Chromosome) -> Result<()> {
        if self.chromosomes.iter().any(|c| c.name() == chromosome.name()) {
            return Err(GenAlgError::InvalidStructure(format!(
                "genome of {} already has a chromosome named {}",
                self.organism,
                chromosome.name()
            )));
        }
        self.chromosomes.push(chromosome);
        Ok(())
    }

    /// Find a chromosome by name.
    pub fn chromosome(&self, name: &str) -> Option<&Chromosome> {
        self.chromosomes.iter().find(|c| c.name() == name)
    }

    /// Total genome length in nucleotides.
    pub fn total_len(&self) -> usize {
        self.chromosomes.iter().map(Chromosome::len).sum()
    }

    /// Total number of annotated genes.
    pub fn gene_count(&self) -> usize {
        self.chromosomes.iter().map(|c| c.genes().len()).sum()
    }

    /// Find a gene anywhere in the genome.
    pub fn find_gene(&self, gene_id: &str) -> Option<&Gene> {
        self.chromosomes.iter().find_map(|c| c.find_gene(gene_id))
    }

    /// Iterate over every gene of every chromosome.
    pub fn genes(&self) -> impl Iterator<Item = &Gene> {
        self.chromosomes.iter().flat_map(|c| c.genes().iter())
    }

    /// Genome-wide GC content (length-weighted over chromosomes).
    pub fn gc_content(&self) -> f64 {
        let total = self.total_len();
        if total == 0 {
            return 0.0;
        }
        self.chromosomes.iter().map(|c| c.sequence().gc_content() * c.len() as f64).sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Strand;
    use crate::gdt::annotation::Interval;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    #[test]
    fn genome_assembly() {
        let mut genome = Genome::new("Examplia demonstrans").with_taxonomy(&["Bacteria", "Demo"]);
        let mut chr1 = Chromosome::new("chr1", dna("CCATGAAATAACC"));
        let gene = Gene::builder("g1")
            .sequence(dna("ATGAAATAA"))
            .locus("chr1", Interval::new(2, 11).unwrap(), Strand::Forward)
            .build()
            .unwrap();
        chr1.add_gene(gene).unwrap();
        genome.add_chromosome(chr1).unwrap();
        genome.add_chromosome(Chromosome::new("chr2", dna("GGGG"))).unwrap();

        assert_eq!(genome.organism(), "Examplia demonstrans");
        assert_eq!(genome.taxonomy(), &["Bacteria".to_string(), "Demo".to_string()]);
        assert_eq!(genome.total_len(), 17);
        assert_eq!(genome.gene_count(), 1);
        assert!(genome.find_gene("g1").is_some());
        assert!(genome.find_gene("g2").is_none());
        assert_eq!(genome.genes().count(), 1);
        assert!(genome.chromosome("chr2").is_some());
    }

    #[test]
    fn duplicate_chromosome_rejected() {
        let mut genome = Genome::new("x");
        genome.add_chromosome(Chromosome::new("chr1", dna("AAAA"))).unwrap();
        assert!(genome.add_chromosome(Chromosome::new("chr1", dna("CCCC"))).is_err());
    }

    #[test]
    fn weighted_gc() {
        let mut genome = Genome::new("x");
        genome.add_chromosome(Chromosome::new("c1", dna("GGGG"))).unwrap(); // gc 1.0, len 4
        genome.add_chromosome(Chromosome::new("c2", dna("AAAAAAAAAAAA"))).unwrap(); // gc 0, len 12
        assert!((genome.gc_content() - 0.25).abs() < 1e-12);
        assert_eq!(Genome::new("empty").gc_content(), 0.0);
    }
}
