//! The `chromosome` genomic data type.

use crate::alphabet::Strand;
use crate::error::{GenAlgError, Result};
use crate::gdt::gene::Gene;
use crate::seq::DnaSeq;

/// A chromosome: a named DNA molecule carrying genes.
///
/// Genes are stored by value; each must carry a [`crate::gdt::GenomicLocus`]
/// naming this chromosome so coordinate mapping stays consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chromosome {
    name: String,
    seq: DnaSeq,
    genes: Vec<Gene>,
}

impl Chromosome {
    /// A chromosome with no genes yet.
    pub fn new(name: &str, seq: DnaSeq) -> Self {
        Chromosome { name: name.to_string(), seq, genes: Vec::new() }
    }

    /// Chromosome name (e.g. `"chr1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full chromosomal sequence (forward strand).
    pub fn sequence(&self) -> &DnaSeq {
        &self.seq
    }

    /// Length in nucleotides.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The genes annotated on this chromosome.
    pub fn genes(&self) -> &[Gene] {
        &self.genes
    }

    /// Attach a gene. The gene must have a locus naming this chromosome and
    /// lying within its bounds, and the gene's stored sequence must equal
    /// the locus-extracted sequence.
    pub fn add_gene(&mut self, gene: Gene) -> Result<()> {
        let locus = gene.locus().ok_or_else(|| {
            GenAlgError::InvalidStructure(format!("gene {} has no chromosomal locus", gene.id()))
        })?;
        if locus.chromosome != self.name {
            return Err(GenAlgError::InvalidStructure(format!(
                "gene {} is located on {}, not {}",
                gene.id(),
                locus.chromosome,
                self.name
            )));
        }
        if locus.interval.end > self.seq.len() {
            return Err(GenAlgError::OutOfBounds {
                index: locus.interval.end,
                len: self.seq.len(),
            });
        }
        let extracted =
            self.region_sequence(locus.interval.start, locus.interval.end, locus.strand)?;
        if &extracted != gene.sequence() {
            return Err(GenAlgError::InvalidStructure(format!(
                "gene {}'s sequence disagrees with chromosome {} at {}",
                gene.id(),
                self.name,
                locus.interval
            )));
        }
        self.genes.push(gene);
        Ok(())
    }

    /// Extract the coding-strand sequence of a region: the forward
    /// subsequence for [`Strand::Forward`], its reverse complement for
    /// [`Strand::Reverse`].
    pub fn region_sequence(&self, start: usize, end: usize, strand: Strand) -> Result<DnaSeq> {
        let sub = self.seq.subseq(start, end)?;
        Ok(match strand {
            Strand::Forward => sub,
            Strand::Reverse => sub.reverse_complement(),
        })
    }

    /// The gene-region sequence for an attached gene, re-derived from the
    /// chromosome (used to verify round-trips).
    pub fn gene_sequence(&self, gene_id: &str) -> Result<DnaSeq> {
        let gene = self
            .genes
            .iter()
            .find(|g| g.id() == gene_id)
            .ok_or_else(|| GenAlgError::Other(format!("no gene {gene_id} on {}", self.name)))?;
        let locus = gene.locus().expect("attached genes always have a locus");
        self.region_sequence(locus.interval.start, locus.interval.end, locus.strand)
    }

    /// Find a gene by id.
    pub fn find_gene(&self, gene_id: &str) -> Option<&Gene> {
        self.genes.iter().find(|g| g.id() == gene_id)
    }

    /// Genes whose loci overlap the interval `[start, end)`.
    pub fn genes_in_region(&self, start: usize, end: usize) -> Vec<&Gene> {
        self.genes
            .iter()
            .filter(|g| {
                let iv = g.locus().expect("attached genes always have a locus").interval;
                iv.start < end && start < iv.end
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdt::annotation::Interval;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    fn chr() -> Chromosome {
        //            0123456789012345678
        Chromosome::new("chr1", dna("CCATGAAATAACCGGTTAA"))
    }

    #[test]
    fn add_forward_gene() {
        let mut c = chr();
        let gene = Gene::builder("g1")
            .sequence(dna("ATGAAATAA"))
            .locus("chr1", Interval::new(2, 11).unwrap(), Strand::Forward)
            .build()
            .unwrap();
        c.add_gene(gene).unwrap();
        assert_eq!(c.genes().len(), 1);
        assert_eq!(c.gene_sequence("g1").unwrap().to_text(), "ATGAAATAA");
    }

    #[test]
    fn add_reverse_gene_uses_reverse_complement() {
        let mut c = chr();
        // chromosome[11..15] = "CCGG"; reverse complement = "CCGG".
        let gene = Gene::builder("g2")
            .sequence(dna("CCGG"))
            .locus("chr1", Interval::new(11, 15).unwrap(), Strand::Reverse)
            .build()
            .unwrap();
        c.add_gene(gene).unwrap();
        assert_eq!(c.gene_sequence("g2").unwrap().to_text(), "CCGG");
    }

    #[test]
    fn rejects_mismatched_gene() {
        let mut c = chr();
        let wrong_seq = Gene::builder("g3")
            .sequence(dna("TTTTTTTTT"))
            .locus("chr1", Interval::new(2, 11).unwrap(), Strand::Forward)
            .build()
            .unwrap();
        assert!(c.add_gene(wrong_seq).is_err());

        let wrong_chr = Gene::builder("g4")
            .sequence(dna("ATGAAATAA"))
            .locus("chr2", Interval::new(2, 11).unwrap(), Strand::Forward)
            .build()
            .unwrap();
        assert!(c.add_gene(wrong_chr).is_err());

        let no_locus = Gene::builder("g5").sequence(dna("ATG")).build().unwrap();
        assert!(c.add_gene(no_locus).is_err());

        let out_of_bounds = Gene::builder("g6")
            .sequence(dna("ATGAAATAA"))
            .locus("chr1", Interval::new(15, 24).unwrap(), Strand::Forward)
            .build()
            .unwrap();
        assert!(c.add_gene(out_of_bounds).is_err());
    }

    #[test]
    fn region_queries() {
        let mut c = chr();
        let gene = Gene::builder("g1")
            .sequence(dna("ATGAAATAA"))
            .locus("chr1", Interval::new(2, 11).unwrap(), Strand::Forward)
            .build()
            .unwrap();
        c.add_gene(gene).unwrap();
        assert_eq!(c.genes_in_region(0, 5).len(), 1);
        assert_eq!(c.genes_in_region(11, 19).len(), 0);
        assert!(c.find_gene("g1").is_some());
        assert!(c.find_gene("nope").is_none());
    }
}
