//! The `gene` genomic data type.

use crate::alphabet::Strand;
use crate::error::{GenAlgError, Result};
use crate::gdt::annotation::{Feature, Interval};
use crate::seq::DnaSeq;

/// Where a gene sits on a chromosome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenomicLocus {
    /// Name of the chromosome the gene lies on.
    pub chromosome: String,
    /// Interval in chromosome coordinates.
    pub interval: Interval,
    /// Strand the gene is read from.
    pub strand: Strand,
}

/// A gene: a named genomic region with exon structure.
///
/// The sequence stored here is the *coding-strand* genomic sequence of the
/// gene region, 5'→3', so `transcribe` can produce the primary transcript by
/// direct T→U substitution regardless of which chromosome strand the gene
/// came from (the extraction from a chromosome reverse-complements as
/// needed — see [`crate::gdt::Chromosome::gene_sequence`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gene {
    id: String,
    name: Option<String>,
    sequence: DnaSeq,
    exons: Vec<Interval>,
    locus: Option<GenomicLocus>,
    /// NCBI translation-table number used when translating this gene.
    code_table: u8,
    features: Vec<Feature>,
}

impl Gene {
    /// Start building a gene with the given stable identifier.
    pub fn builder(id: &str) -> GeneBuilder {
        GeneBuilder {
            id: id.to_string(),
            name: None,
            sequence: None,
            exons: Vec::new(),
            locus: None,
            code_table: 1,
            features: Vec::new(),
        }
    }

    /// Stable identifier (accession).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Human-readable gene symbol, if known.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Coding-strand genomic sequence of the gene region.
    pub fn sequence(&self) -> &DnaSeq {
        &self.sequence
    }

    /// Exon intervals in gene-local coordinates, sorted and disjoint.
    pub fn exons(&self) -> &[Interval] {
        &self.exons
    }

    /// Intron intervals (the gaps between consecutive exons).
    pub fn introns(&self) -> Vec<Interval> {
        self.exons
            .windows(2)
            .filter_map(|pair| Interval::new(pair[0].end, pair[1].start).ok())
            .collect()
    }

    /// Chromosomal placement, if known.
    pub fn locus(&self) -> Option<&GenomicLocus> {
        self.locus.as_ref()
    }

    /// NCBI translation-table number for this gene.
    pub fn code_table(&self) -> u8 {
        self.code_table
    }

    /// Attached annotation features.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Total exonic length — the length of the mature mRNA.
    pub fn exonic_len(&self) -> usize {
        self.exons.iter().map(Interval::len).sum()
    }

    /// Mutable access used by wrappers enriching a parsed gene.
    pub fn add_feature(&mut self, feature: Feature) {
        self.features.push(feature);
    }
}

/// Builder validating the structural invariants of [`Gene`].
#[derive(Debug, Clone)]
pub struct GeneBuilder {
    id: String,
    name: Option<String>,
    sequence: Option<DnaSeq>,
    exons: Vec<Interval>,
    locus: Option<GenomicLocus>,
    code_table: u8,
    features: Vec<Feature>,
}

impl GeneBuilder {
    /// Set the gene symbol.
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Set the coding-strand genomic sequence.
    pub fn sequence(mut self, seq: DnaSeq) -> Self {
        self.sequence = Some(seq);
        self
    }

    /// Add an exon `[start, end)` in gene-local coordinates.
    pub fn exon(mut self, start: usize, end: usize) -> Self {
        // Validation is deferred to `build` so the builder stays infallible.
        self.exons.push(Interval { start, end });
        self
    }

    /// Set the chromosomal placement.
    pub fn locus(mut self, chromosome: &str, interval: Interval, strand: Strand) -> Self {
        self.locus = Some(GenomicLocus { chromosome: chromosome.to_string(), interval, strand });
        self
    }

    /// Select an NCBI translation table (default 1, the standard code).
    pub fn code_table(mut self, id: u8) -> Self {
        self.code_table = id;
        self
    }

    /// Attach an annotation feature.
    pub fn feature(mut self, feature: Feature) -> Self {
        self.features.push(feature);
        self
    }

    /// Validate and produce the gene.
    ///
    /// Invariants enforced:
    /// * a sequence is present and non-empty;
    /// * at least one exon exists (a gene with no exons cannot be spliced);
    /// * exons are non-empty, sorted, mutually disjoint, and within the
    ///   sequence;
    /// * if a locus is given, its interval length equals the sequence length.
    pub fn build(mut self) -> Result<Gene> {
        let sequence = self.sequence.ok_or_else(|| {
            GenAlgError::InvalidStructure(format!("gene {} has no sequence", self.id))
        })?;
        if sequence.is_empty() {
            return Err(GenAlgError::InvalidStructure(format!(
                "gene {} has an empty sequence",
                self.id
            )));
        }
        if self.exons.is_empty() {
            // A gene specified without explicit exons is treated as a
            // single-exon (intron-less) gene, the common case for
            // bacterial data.
            self.exons.push(Interval { start: 0, end: sequence.len() });
        }
        self.exons.sort_by_key(|iv| (iv.start, iv.end));
        for iv in &self.exons {
            if iv.is_empty() {
                return Err(GenAlgError::EmptyInterval { start: iv.start, end: iv.end });
            }
            if iv.end > sequence.len() {
                return Err(GenAlgError::OutOfBounds { index: iv.end, len: sequence.len() });
            }
        }
        for pair in self.exons.windows(2) {
            if pair[0].end > pair[1].start {
                return Err(GenAlgError::InvalidStructure(format!(
                    "gene {}: exons {} and {} overlap",
                    self.id, pair[0], pair[1]
                )));
            }
        }
        if let Some(locus) = &self.locus {
            if locus.interval.len() != sequence.len() {
                return Err(GenAlgError::InvalidStructure(format!(
                    "gene {}: locus spans {} positions but sequence has {}",
                    self.id,
                    locus.interval.len(),
                    sequence.len()
                )));
            }
        }
        Ok(Gene {
            id: self.id,
            name: self.name,
            sequence,
            exons: self.exons,
            locus: self.locus,
            code_table: self.code_table,
            features: self.features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    #[test]
    fn builds_multi_exon_gene() {
        let g = Gene::builder("g1")
            .name("demo")
            .sequence(dna("ATGAAACCCGGGTTTTAA"))
            .exon(0, 6)
            .exon(12, 18)
            .build()
            .unwrap();
        assert_eq!(g.id(), "g1");
        assert_eq!(g.name(), Some("demo"));
        assert_eq!(g.exons().len(), 2);
        assert_eq!(g.exonic_len(), 12);
        assert_eq!(g.introns(), vec![Interval::new(6, 12).unwrap()]);
        assert_eq!(g.code_table(), 1);
    }

    #[test]
    fn default_single_exon() {
        let g = Gene::builder("g2").sequence(dna("ATGTAA")).build().unwrap();
        assert_eq!(g.exons(), &[Interval::new(0, 6).unwrap()]);
        assert!(g.introns().is_empty());
    }

    #[test]
    fn exons_are_sorted_on_build() {
        let g = Gene::builder("g3")
            .sequence(dna("ATGAAACCCGGG"))
            .exon(6, 9)
            .exon(0, 3)
            .build()
            .unwrap();
        assert_eq!(g.exons()[0].start, 0);
    }

    #[test]
    fn rejects_structural_errors() {
        assert!(Gene::builder("e1").build().is_err()); // no sequence
        assert!(Gene::builder("e2").sequence(DnaSeq::empty()).build().is_err());
        assert!(Gene::builder("e3").sequence(dna("ATG")).exon(0, 5).build().is_err()); // exon past end
        assert!(Gene::builder("e4").sequence(dna("ATGATG")).exon(0, 4).exon(3, 6).build().is_err()); // overlap
        assert!(Gene::builder("e5").sequence(dna("ATG")).exon(1, 1).build().is_err());
        // empty exon
    }

    #[test]
    fn locus_length_must_match() {
        let ok = Gene::builder("g4")
            .sequence(dna("ATGTAA"))
            .locus("chr1", Interval::new(100, 106).unwrap(), Strand::Reverse)
            .build();
        assert!(ok.is_ok());
        let bad = Gene::builder("g5")
            .sequence(dna("ATGTAA"))
            .locus("chr1", Interval::new(100, 110).unwrap(), Strand::Forward)
            .build();
        assert!(bad.is_err());
    }

    #[test]
    fn code_table_selectable() {
        let g = Gene::builder("g6").sequence(dna("ATGTAA")).code_table(11).build().unwrap();
        assert_eq!(g.code_table(), 11);
    }
}
