//! The central-dogma operations — the paper's "mini algebra" (§4.2):
//!
//! ```text
//! sorts gene, primaryTranscript, mRNA, protein
//! ops   transcribe: gene            -> primaryTranscript
//!       splice:     primaryTranscript -> mRNA
//!       translate:  mRNA            -> protein
//! ```
//!
//! plus the auxiliary `decode` and `reverse_transcribe` operations. The
//! paper notes (§4.3) that the *operational* semantics of splicing is
//! biologically unknown; following its suggestion we implement the
//! procedure biologists use in practice — splice boundaries come from the
//! annotated exon structure carried on the gene, not from a from-scratch
//! splice-site predictor.

use crate::alphabet::AminoAcid;
use crate::codon::GeneticCode;
use crate::error::{GenAlgError, Result};
use crate::gdt::{Gene, Interval, Mrna, PrimaryTranscript, Protein};
use crate::seq::{DnaSeq, RnaSeq};

/// `transcribe : gene → primaryTranscript`
///
/// Produces the full pre-mRNA copy of the gene region (T→U on the coding
/// strand), carrying the exon structure along for [`splice`]. Fails on
/// genes whose sequence contains ambiguity codes.
pub fn transcribe(gene: &Gene) -> Result<PrimaryTranscript> {
    let rna = gene.sequence().to_rna().map_err(|_| {
        GenAlgError::InvalidStructure(format!(
            "gene {} contains ambiguity codes and cannot be transcribed",
            gene.id()
        ))
    })?;
    PrimaryTranscript::new(gene.id(), rna, gene.exons().to_vec(), gene.code_table())
}

/// `splice : primaryTranscript → mRNA`
///
/// Concatenates the exons of the primary transcript and locates the coding
/// region: the first start codon (per the gene's translation table) scanned
/// across all three frames, extended to the first in-frame stop. If no
/// complete CDS exists the mRNA is still produced with `cds = None`.
pub fn splice(transcript: &PrimaryTranscript) -> Result<Mrna> {
    let mut mature = RnaSeq::empty();
    for exon in transcript.exons() {
        mature = mature.concat(&transcript.sequence().subseq(exon.start, exon.end)?);
    }
    let code = GeneticCode::by_id(transcript.code_table()).ok_or_else(|| {
        GenAlgError::Other(format!("unknown translation table {}", transcript.code_table()))
    })?;
    let cds = locate_cds(&mature, &code);
    Mrna::new(transcript.gene_id(), mature, cds, transcript.code_table())
}

/// Locate the first complete coding region: the earliest start codon (any
/// frame) followed by an in-frame stop.
pub fn locate_cds(rna: &RnaSeq, code: &GeneticCode) -> Option<Interval> {
    let n = rna.len();
    let mut best: Option<Interval> = None;
    for start in 0..n.saturating_sub(2) {
        let codon = [rna.get(start)?, rna.get(start + 1)?, rna.get(start + 2)?];
        if !code.is_start_rna(codon) {
            continue;
        }
        // Extend to the first in-frame stop.
        let mut i = start + 3;
        while i + 3 <= n {
            let c = [
                rna.get(i).expect("bounds checked"),
                rna.get(i + 1).expect("bounds checked"),
                rna.get(i + 2).expect("bounds checked"),
            ];
            if code.is_stop_rna(c) {
                let iv = Interval::new(start, i + 3).ok()?;
                match best {
                    Some(b) if b.start <= iv.start => {}
                    _ => best = Some(iv),
                }
                break;
            }
            i += 3;
        }
        if best.is_some() {
            break; // earliest start wins
        }
    }
    best
}

/// `translate : mRNA → protein`
///
/// Translates the located coding region (initiator codon always yields
/// Met), stopping before the stop codon. Fails if the mRNA has no CDS.
pub fn translate(mrna: &Mrna, code: &GeneticCode) -> Result<Protein> {
    let cds = mrna.cds().ok_or_else(|| {
        GenAlgError::InvalidStructure(format!(
            "mRNA of {} has no located coding region",
            mrna.gene_id()
        ))
    })?;
    let coding = mrna.sequence().subseq(cds.start, cds.end)?;
    let mut residues = code.translate_cds(&coding)?;
    // Initiator codon yields Met even for alternative starts.
    if !residues.is_empty() {
        let mut fixed = crate::seq::ProteinSeq::empty();
        fixed.push(AminoAcid::Met);
        for (i, aa) in residues.iter().enumerate() {
            if i > 0 {
                fixed.push(aa);
            }
        }
        residues = fixed;
    }
    let peptide = residues.until_stop();
    Ok(Protein::new(&format!("{}_protein", mrna.gene_id()), peptide))
}

/// `decode : dna × frame → protein sequence`
///
/// Direct conceptual translation of a DNA reading frame (no start-codon
/// scanning): the biologist's "six-frame translation" primitive.
pub fn decode(dna: &DnaSeq, frame: usize, code: &GeneticCode) -> Result<crate::seq::ProteinSeq> {
    if frame > 2 {
        return Err(GenAlgError::OutOfBounds { index: frame, len: 3 });
    }
    let rna = dna.to_rna()?;
    let mut out = crate::seq::ProteinSeq::empty();
    for codon in crate::codon::codons(&rna, frame) {
        out.push(code.decode_rna(codon));
    }
    Ok(out)
}

/// `reverse_transcribe : mRNA → dna`
///
/// The cDNA of a mature mRNA (U→T).
pub fn reverse_transcribe(mrna: &Mrna) -> DnaSeq {
    mrna.sequence().to_dna()
}

/// Convenience composition of the full pathway:
/// `translate(splice(transcribe(g)))` — the paper's flagship term.
pub fn express(gene: &Gene) -> Result<Protein> {
    let code = GeneticCode::by_id(gene.code_table()).ok_or_else(|| {
        GenAlgError::Other(format!("unknown translation table {}", gene.code_table()))
    })?;
    translate(&splice(&transcribe(gene)?)?, &code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    fn simple_gene() -> Gene {
        // Exon1: ATGGCCTTTAAG (M A F K), intron GTAACCGGG, exon2: TTTCACTGA (F H *).
        Gene::builder("g1")
            .sequence(dna("ATGGCCTTTAAGGTAACCGGGTTTCACTGA"))
            .exon(0, 12)
            .exon(21, 30)
            .build()
            .unwrap()
    }

    #[test]
    fn transcribe_copies_with_u() {
        let t = transcribe(&simple_gene()).unwrap();
        assert_eq!(t.sequence().to_text(), "AUGGCCUUUAAGGUAACCGGGUUUCACUGA");
        assert_eq!(t.exons().len(), 2);
        assert_eq!(t.gene_id(), "g1");
    }

    #[test]
    fn transcribe_rejects_ambiguity() {
        let g = Gene::builder("gn").sequence(dna("ATGNNTAA")).build().unwrap();
        assert!(transcribe(&g).is_err());
    }

    #[test]
    fn splice_concatenates_exons_and_finds_cds() {
        let m = splice(&transcribe(&simple_gene()).unwrap()).unwrap();
        assert_eq!(m.sequence().to_text(), "AUGGCCUUUAAGUUUCACUGA");
        assert_eq!(m.cds(), Some(Interval::new(0, 21).unwrap()));
    }

    #[test]
    fn translate_produces_peptide() {
        let m = splice(&transcribe(&simple_gene()).unwrap()).unwrap();
        let p = translate(&m, &GeneticCode::standard()).unwrap();
        assert_eq!(p.sequence().to_text(), "MAFKFH");
        assert_eq!(p.id(), "g1_protein");
    }

    #[test]
    fn express_composes_the_pipeline() {
        let p = express(&simple_gene()).unwrap();
        assert_eq!(p.sequence().to_text(), "MAFKFH");
    }

    #[test]
    fn cds_located_off_frame_zero() {
        // Two leading bases shift the CDS to offset 2.
        let rna = RnaSeq::from_text("CCAUGAAAUAG").unwrap();
        let cds = locate_cds(&rna, &GeneticCode::standard()).unwrap();
        assert_eq!((cds.start, cds.end), (2, 11));
    }

    #[test]
    fn no_cds_yields_none_and_translate_fails() {
        let g = Gene::builder("g2").sequence(dna("CCCCCCCCC")).build().unwrap();
        let m = splice(&transcribe(&g).unwrap()).unwrap();
        assert_eq!(m.cds(), None);
        assert!(translate(&m, &GeneticCode::standard()).is_err());
    }

    #[test]
    fn start_without_stop_is_not_a_cds() {
        let rna = RnaSeq::from_text("AUGAAAAAA").unwrap();
        assert_eq!(locate_cds(&rna, &GeneticCode::standard()), None);
    }

    #[test]
    fn decode_six_frame_primitive() {
        let code = GeneticCode::standard();
        let d = dna("ATGGCC");
        assert_eq!(decode(&d, 0, &code).unwrap().to_text(), "MA");
        assert_eq!(decode(&d, 1, &code).unwrap().to_text(), "W"); // UGG
        assert!(decode(&d, 3, &code).is_err());
        assert!(decode(&dna("ATGN"), 0, &code).is_err());
    }

    #[test]
    fn reverse_transcription_roundtrip() {
        let m = splice(&transcribe(&simple_gene()).unwrap()).unwrap();
        let cdna = reverse_transcribe(&m);
        assert_eq!(cdna.to_text(), "ATGGCCTTTAAGTTTCACTGA");
        assert_eq!(cdna.to_rna().unwrap(), *m.sequence());
    }

    #[test]
    fn alternative_start_yields_met() {
        // UUG start under the standard table.
        let g = Gene::builder("g3").sequence(dna("TTGGCCTAA")).build().unwrap();
        let p = express(&g).unwrap();
        assert_eq!(p.sequence().to_text(), "MA");
    }

    #[test]
    fn mitochondrial_table_respected() {
        // Under table 2, AGA is a stop; under table 1 it is Arg.
        let g_std = Gene::builder("g4").sequence(dna("ATGAGATAA")).build().unwrap();
        assert_eq!(express(&g_std).unwrap().sequence().to_text(), "MR");
        let g_mito = Gene::builder("g5").sequence(dna("ATGAGATAA")).code_table(2).build().unwrap();
        // CDS ends at the AGA stop.
        assert_eq!(express(&g_mito).unwrap().sequence().to_text(), "M");
    }
}
