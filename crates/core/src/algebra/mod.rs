//! The many-sorted Genomics Algebra (§4.2).
//!
//! A *signature* is a set of **sorts** (type names) and **operators**
//! annotated with argument and result sorts, e.g.
//!
//! ```text
//! sorts gene, primaryTranscript, mRNA, protein
//! ops   transcribe: gene → primaryTranscript
//!       splice:     primaryTranscript → mRNA
//!       translate:  mRNA → protein
//! ```
//!
//! A *many-sorted algebra* assigns a carrier set to each sort and a
//! function to each operator. Here:
//!
//! * [`SortId`] names a sort; [`Signature`] holds sorts and operator
//!   signatures and resolves overloads.
//! * [`Value`] is the union of all carrier sets — every genomic data type
//!   plus the base types, lists, uncertain values, and *custom* values so
//!   the algebra stays extensible at runtime.
//! * [`Term`] is the free term algebra over a signature
//!   (`translate(splice(transcribe(g)))` is a term).
//! * [`KernelAlgebra`] binds Rust functions to operators and evaluates
//!   terms. [`KernelAlgebra::standard`] ships the full built-in operation
//!   set; `register_sort`/`register_op` extend it (requirement C13/C14).

mod registry;
mod signature;
mod sort;
mod term;
mod value;

pub use registry::{Bindings, KernelAlgebra, OpImpl};
pub use signature::{OpSig, Signature};
pub use sort::SortId;
pub use term::Term;
pub use value::{CustomValue, Value};
