//! The executable algebra: operator implementations and term evaluation.

use crate::algebra::signature::{OpSig, Signature};
use crate::algebra::sort::SortId;
use crate::algebra::term::Term;
use crate::algebra::value::Value;
use crate::align;
use crate::codon::GeneticCode;
use crate::dogma;
use crate::error::{GenAlgError, Result};
use crate::seq::ops as seqops;
use crate::seq::{DnaSeq, ProteinSeq};
use std::collections::HashMap;
use std::sync::Arc;

/// The Rust implementation bound to one operator signature.
pub type OpImpl = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Variable bindings supplied at evaluation time.
pub type Bindings = HashMap<String, Value>;

/// An executable many-sorted algebra: a [`Signature`] plus a function per
/// operator signature.
///
/// The paper stresses extensibility: "if required, the Genomics Algebra can
/// be extended by new sorts and operations" (§4.2). [`KernelAlgebra::register_sort`]
/// and [`KernelAlgebra::register_op`] do exactly that at runtime, and newly
/// registered operations compose freely with built-in ones in terms.
pub struct KernelAlgebra {
    signature: Signature,
    impls: HashMap<(String, Vec<SortId>), OpImpl>,
}

impl KernelAlgebra {
    /// An algebra with the built-in sorts registered but no operations.
    pub fn empty() -> Self {
        let mut signature = Signature::new();
        for (sort, desc) in [
            (SortId::bool(), "truth value"),
            (SortId::int(), "integer"),
            (SortId::float(), "floating-point number"),
            (SortId::string(), "character string"),
            (SortId::dna(), "IUPAC DNA sequence"),
            (SortId::rna(), "RNA sequence"),
            (SortId::protein_seq(), "amino-acid sequence"),
            (SortId::gene(), "gene with exon structure"),
            (SortId::primary_transcript(), "pre-mRNA with exon structure"),
            (SortId::mrna(), "mature messenger RNA"),
            (SortId::protein(), "annotated protein"),
            (SortId::chromosome(), "chromosome with genes"),
            (SortId::genome(), "genome of an organism"),
            (SortId::list(), "list of values"),
            (SortId::uncertain(), "value with confidence and provenance"),
        ] {
            signature.add_sort(sort, desc);
        }
        KernelAlgebra { signature, impls: HashMap::new() }
    }

    /// The standard Genomics Algebra with the full built-in operation set.
    pub fn standard() -> Self {
        let mut alg = Self::empty();
        alg.install_standard_ops().expect("built-in operations are well-sorted");
        alg
    }

    /// The signature (for type checking and introspection).
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Register a new sort (C13: integrate self-generated data types).
    pub fn register_sort(&mut self, sort: SortId, description: &str) {
        self.signature.add_sort(sort, description);
    }

    /// Register a new operation with its implementation (C14: user-defined
    /// evaluation functions).
    pub fn register_op(
        &mut self,
        name: &str,
        args: Vec<SortId>,
        result: SortId,
        body: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> Result<()> {
        self.signature.add_op(OpSig { name: name.to_string(), args: args.clone(), result })?;
        self.impls.insert((name.to_string(), args), Arc::new(body));
        Ok(())
    }

    /// Evaluate a closed term.
    pub fn eval(&self, term: &Term) -> Result<Value> {
        self.eval_with(term, &Bindings::new())
    }

    /// Evaluate a term with variable bindings.
    pub fn eval_with(&self, term: &Term, bindings: &Bindings) -> Result<Value> {
        match term {
            Term::Const(v) => Ok(v.clone()),
            Term::Var(name, sort) => {
                let v =
                    bindings.get(name).ok_or_else(|| GenAlgError::UnboundVariable(name.clone()))?;
                if &v.sort() != sort {
                    return Err(GenAlgError::SortMismatch {
                        operation: format!("variable {name}"),
                        detail: format!("bound to {} but declared {}", v.sort(), sort),
                    });
                }
                Ok(v.clone())
            }
            Term::Apply(op, args) => {
                let values: Vec<Value> =
                    args.iter().map(|a| self.eval_with(a, bindings)).collect::<Result<_>>()?;
                self.apply(op, &values)
            }
        }
    }

    /// Apply an operator directly to values (the adapter's entry point).
    pub fn apply(&self, op: &str, args: &[Value]) -> Result<Value> {
        let arg_sorts: Vec<SortId> = args.iter().map(Value::sort).collect();
        // Resolve against the signature first for a precise error message.
        self.signature.resolve(op, &arg_sorts)?;
        let body = self.impls.get(&(op.to_string(), arg_sorts)).ok_or_else(|| {
            GenAlgError::UnknownOperation(format!("{op} (declared but not implemented)"))
        })?;
        body(args)
    }

    fn install_standard_ops(&mut self) -> Result<()> {
        use SortId as S;

        // --- Central dogma -------------------------------------------------
        self.register_op("transcribe", vec![S::gene()], S::primary_transcript(), |a| {
            Ok(Value::Transcript(Box::new(dogma::transcribe(need_gene(&a[0])?)?)))
        })?;
        self.register_op("splice", vec![S::primary_transcript()], S::mrna(), |a| {
            let t = a[0].as_transcript().ok_or_else(|| sort_err("splice"))?;
            Ok(Value::Mrna(Box::new(dogma::splice(t)?)))
        })?;
        self.register_op("translate", vec![S::mrna()], S::protein(), |a| {
            let m = a[0].as_mrna().ok_or_else(|| sort_err("translate"))?;
            let code = GeneticCode::by_id(m.code_table())
                .ok_or_else(|| GenAlgError::Other("unknown translation table".into()))?;
            Ok(Value::Protein(Box::new(dogma::translate(m, &code)?)))
        })?;
        self.register_op("express", vec![S::gene()], S::protein(), |a| {
            Ok(Value::Protein(Box::new(dogma::express(need_gene(&a[0])?)?)))
        })?;
        self.register_op("reverse_transcribe", vec![S::mrna()], S::dna(), |a| {
            let m = a[0].as_mrna().ok_or_else(|| sort_err("reverse_transcribe"))?;
            Ok(Value::Dna(dogma::reverse_transcribe(m)))
        })?;
        self.register_op("decode", vec![S::dna(), S::int()], S::protein_seq(), |a| {
            let d = need_dna(&a[0])?;
            let frame = need_int(&a[1])?;
            if !(0..=2).contains(&frame) {
                return Err(GenAlgError::OutOfBounds { index: frame.max(0) as usize, len: 3 });
            }
            Ok(Value::ProteinSeq(dogma::decode(d, frame as usize, &GeneticCode::standard())?))
        })?;

        // --- Sequence operations -------------------------------------------
        self.register_op("complement", vec![S::dna()], S::dna(), |a| {
            Ok(Value::Dna(need_dna(&a[0])?.complement()))
        })?;
        self.register_op("reverse_complement", vec![S::dna()], S::dna(), |a| {
            Ok(Value::Dna(need_dna(&a[0])?.reverse_complement()))
        })?;
        self.register_op("reverse", vec![S::dna()], S::dna(), |a| {
            Ok(Value::Dna(need_dna(&a[0])?.reversed()))
        })?;
        self.register_op("gc_content", vec![S::dna()], S::float(), |a| {
            Ok(Value::Float(need_dna(&a[0])?.gc_content()))
        })?;
        self.register_op("length", vec![S::dna()], S::int(), |a| {
            Ok(Value::Int(need_dna(&a[0])?.len() as i64))
        })?;
        self.register_op("length", vec![S::rna()], S::int(), |a| {
            let r = a[0].as_rna().ok_or_else(|| sort_err("length"))?;
            Ok(Value::Int(r.len() as i64))
        })?;
        self.register_op("length", vec![S::protein_seq()], S::int(), |a| {
            Ok(Value::Int(need_protein_seq(&a[0])?.len() as i64))
        })?;
        self.register_op("length", vec![S::string()], S::int(), |a| {
            Ok(Value::Int(need_str(&a[0])?.chars().count() as i64))
        })?;
        self.register_op("subsequence", vec![S::dna(), S::int(), S::int()], S::dna(), |a| {
            let d = need_dna(&a[0])?;
            let (s, e) = (need_int(&a[1])?, need_int(&a[2])?);
            if s < 0 || e < 0 {
                return Err(GenAlgError::OutOfBounds { index: 0, len: d.len() });
            }
            Ok(Value::Dna(d.subseq(s as usize, e as usize)?))
        })?;
        self.register_op("concat", vec![S::dna(), S::dna()], S::dna(), |a| {
            Ok(Value::Dna(need_dna(&a[0])?.concat(need_dna(&a[1])?)))
        })?;
        self.register_op("concat", vec![S::string(), S::string()], S::string(), |a| {
            Ok(Value::Str(format!("{}{}", need_str(&a[0])?, need_str(&a[1])?)))
        })?;
        self.register_op("getchar", vec![S::string(), S::int()], S::string(), |a| {
            let s = need_str(&a[0])?;
            let i = need_int(&a[1])?;
            let c = s.chars().nth(i.max(0) as usize).ok_or(GenAlgError::OutOfBounds {
                index: i.max(0) as usize,
                len: s.chars().count(),
            })?;
            Ok(Value::Str(c.to_string()))
        })?;

        // --- Search and similarity ------------------------------------------
        self.register_op("contains", vec![S::dna(), S::dna()], S::bool(), |a| {
            Ok(Value::Bool(need_dna(&a[0])?.contains(need_dna(&a[1])?)))
        })?;
        self.register_op("find", vec![S::dna(), S::dna()], S::int(), |a| {
            Ok(Value::Int(need_dna(&a[0])?.find(need_dna(&a[1])?).map_or(-1, |p| p as i64)))
        })?;
        self.register_op(
            "resembles",
            vec![S::dna(), S::dna(), S::float(), S::float()],
            S::bool(),
            |a| {
                Ok(Value::Bool(align::resembles(
                    need_dna(&a[0])?,
                    need_dna(&a[1])?,
                    need_float(&a[2])?,
                    need_float(&a[3])?,
                )))
            },
        )?;
        self.register_op("local_score", vec![S::dna(), S::dna()], S::int(), |a| {
            let aln = align::local_align_dna(
                need_dna(&a[0])?,
                need_dna(&a[1])?,
                &align::NucleotideScore::default(),
            );
            Ok(Value::Int(aln.score as i64))
        })?;
        self.register_op("identity", vec![S::dna(), S::dna()], S::float(), |a| {
            let aln = align::global_align_dna(
                need_dna(&a[0])?,
                need_dna(&a[1])?,
                &align::NucleotideScore::default(),
            );
            Ok(Value::Float(aln.identity()))
        })?;
        self.register_op("hamming", vec![S::dna(), S::dna()], S::int(), |a| {
            Ok(Value::Int(need_dna(&a[0])?.hamming_distance(need_dna(&a[1])?)? as i64))
        })?;

        // --- Analysis --------------------------------------------------------
        self.register_op("orf_count", vec![S::dna(), S::int()], S::int(), |a| {
            let min_len = need_int(&a[1])?.max(0) as usize;
            let orfs = seqops::find_orfs(need_dna(&a[0])?, &GeneticCode::standard(), min_len);
            Ok(Value::Int(orfs.len() as i64))
        })?;
        self.register_op("melting_temperature", vec![S::dna()], S::float(), |a| {
            Ok(Value::Float(seqops::melting_temperature(need_dna(&a[0])?)))
        })?;
        self.register_op("molecular_weight", vec![S::protein_seq()], S::float(), |a| {
            Ok(Value::Float(need_protein_seq(&a[0])?.molecular_weight()))
        })?;
        self.register_op("gravy", vec![S::protein_seq()], S::float(), |a| {
            Ok(Value::Float(need_protein_seq(&a[0])?.gravy()))
        })?;
        self.register_op("isoelectric_point", vec![S::protein_seq()], S::float(), |a| {
            Ok(Value::Float(need_protein_seq(&a[0])?.isoelectric_point()))
        })?;
        self.register_op("longest_orf", vec![S::dna()], S::int(), |a| {
            Ok(Value::Int(seqops::longest_orf(need_dna(&a[0])?, &GeneticCode::standard()) as i64))
        })?;

        // --- Accessors --------------------------------------------------------
        self.register_op("sequence_of", vec![S::gene()], S::dna(), |a| {
            Ok(Value::Dna(need_gene(&a[0])?.sequence().clone()))
        })?;
        self.register_op("gene_id", vec![S::gene()], S::string(), |a| {
            Ok(Value::Str(need_gene(&a[0])?.id().to_string()))
        })?;
        self.register_op("protein_sequence", vec![S::protein()], S::protein_seq(), |a| {
            let p = a[0].as_protein().ok_or_else(|| sort_err("protein_sequence"))?;
            Ok(Value::ProteinSeq(p.sequence().clone()))
        })?;
        self.register_op("mrna_sequence", vec![S::mrna()], S::rna(), |a| {
            let m = a[0].as_mrna().ok_or_else(|| sort_err("mrna_sequence"))?;
            Ok(Value::Rna(m.sequence().clone()))
        })?;
        self.register_op("parse_dna", vec![S::string()], S::dna(), |a| {
            Ok(Value::Dna(DnaSeq::from_text(need_str(&a[0])?)?))
        })?;
        self.register_op("parse_protein", vec![S::string()], S::protein_seq(), |a| {
            Ok(Value::ProteinSeq(ProteinSeq::from_text(need_str(&a[0])?)?))
        })?;
        Ok(())
    }
}

fn sort_err(op: &str) -> GenAlgError {
    GenAlgError::SortMismatch { operation: op.to_string(), detail: "unexpected value kind".into() }
}

fn need_dna(v: &Value) -> Result<&DnaSeq> {
    v.as_dna().ok_or_else(|| sort_err("dna argument"))
}

fn need_protein_seq(v: &Value) -> Result<&ProteinSeq> {
    v.as_protein_seq().ok_or_else(|| sort_err("protein_seq argument"))
}

fn need_gene(v: &Value) -> Result<&crate::gdt::Gene> {
    v.as_gene().ok_or_else(|| sort_err("gene argument"))
}

fn need_int(v: &Value) -> Result<i64> {
    v.as_int().ok_or_else(|| sort_err("int argument"))
}

fn need_float(v: &Value) -> Result<f64> {
    v.as_float().ok_or_else(|| sort_err("float argument"))
}

fn need_str(v: &Value) -> Result<&str> {
    v.as_str().ok_or_else(|| sort_err("string argument"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdt::Gene;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    fn gene() -> Gene {
        Gene::builder("g1")
            .sequence(dna("ATGGCCTTTAAGGTAACCGGGTTTCACTGA"))
            .exon(0, 12)
            .exon(21, 30)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_flagship_term_evaluates() {
        let alg = KernelAlgebra::standard();
        let term = Term::apply(
            "translate",
            vec![Term::apply(
                "splice",
                vec![Term::apply(
                    "transcribe",
                    vec![Term::constant(Value::Gene(Box::new(gene())))],
                )],
            )],
        );
        assert_eq!(term.sort(alg.signature()).unwrap(), SortId::protein());
        let result = alg.eval(&term).unwrap();
        let protein = result.as_protein().unwrap();
        assert_eq!(protein.sequence().to_text(), "MAFKFH");
    }

    #[test]
    fn getchar_concat_paper_example() {
        let alg = KernelAlgebra::standard();
        let term = Term::apply(
            "getchar",
            vec![
                Term::apply("concat", vec![Term::str("Genomics"), Term::str("Algebra")]),
                Term::int(10),
            ],
        );
        // "GenomicsAlgebra"[10] == 'g'.
        assert_eq!(alg.eval(&term).unwrap(), Value::Str("g".into()));
    }

    #[test]
    fn variables_bind_at_eval_time() {
        let alg = KernelAlgebra::standard();
        let term = Term::apply("gc_content", vec![Term::var("s", SortId::dna())]);
        let mut b = Bindings::new();
        b.insert("s".into(), Value::Dna(dna("GGCC")));
        assert_eq!(alg.eval_with(&term, &b).unwrap(), Value::Float(1.0));
        // Unbound.
        assert!(matches!(alg.eval(&term), Err(GenAlgError::UnboundVariable(_))));
        // Wrongly sorted binding.
        let mut wrong = Bindings::new();
        wrong.insert("s".into(), Value::Int(1));
        assert!(alg.eval_with(&term, &wrong).is_err());
    }

    #[test]
    fn overloaded_length() {
        let alg = KernelAlgebra::standard();
        assert_eq!(alg.apply("length", &[Value::Dna(dna("ATGC"))]).unwrap(), Value::Int(4));
        assert_eq!(alg.apply("length", &[Value::Str("hello".into())]).unwrap(), Value::Int(5));
        assert!(alg.apply("length", &[Value::Bool(true)]).is_err());
    }

    #[test]
    fn contains_and_find() {
        let alg = KernelAlgebra::standard();
        let frag = Value::Dna(dna("ATTGCCATAGG"));
        let pat = Value::Dna(dna("GCCATA"));
        assert_eq!(alg.apply("contains", &[frag.clone(), pat.clone()]).unwrap(), Value::Bool(true));
        assert_eq!(alg.apply("find", &[frag.clone(), pat]).unwrap(), Value::Int(3));
        assert_eq!(alg.apply("find", &[frag, Value::Dna(dna("TTTT"))]).unwrap(), Value::Int(-1));
    }

    #[test]
    fn extensibility_new_sort_and_op() {
        // Register a new sort plus an operation combining it with a
        // built-in sort — the paper's C13/C14 requirement.
        use crate::algebra::value::CustomValue;
        use std::any::Any;

        #[derive(Debug, PartialEq)]
        struct Motif(DnaSeq);
        impl CustomValue for Motif {
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn eq_dyn(&self, other: &dyn CustomValue) -> bool {
                other.as_any().downcast_ref::<Motif>() == Some(self)
            }
            fn render(&self) -> String {
                self.0.to_text()
            }
        }

        let mut alg = KernelAlgebra::standard();
        let motif_sort = SortId::new("motif");
        alg.register_sort(motif_sort.clone(), "a short regulatory motif");
        let ms = motif_sort.clone();
        alg.register_op(
            "motif_hits",
            vec![SortId::dna(), motif_sort.clone()],
            SortId::int(),
            move |args| {
                let seq = args[0].as_dna().expect("checked by signature");
                let motif = args[1].as_custom::<Motif>().expect("checked by signature");
                let _ = &ms;
                Ok(Value::Int(seq.find_all(&motif.0).len() as i64))
            },
        )
        .unwrap();

        let term = Term::apply(
            "motif_hits",
            vec![
                Term::constant(Value::Dna(dna("TATATATA"))),
                Term::constant(Value::Custom(motif_sort, Arc::new(Motif(dna("TATA"))))),
            ],
        );
        assert_eq!(alg.eval(&term).unwrap(), Value::Int(3));
    }

    #[test]
    fn standard_algebra_is_rich() {
        let alg = KernelAlgebra::standard();
        assert!(alg.signature().op_count() >= 25, "got {}", alg.signature().op_count());
        assert!(alg.signature().sorts().len() >= 15);
    }

    #[test]
    fn resembles_through_algebra() {
        let alg = KernelAlgebra::standard();
        let a = Value::Dna(dna("ATGGCCTTTAAGGGGCCCAAATTTGGGCCCATAT"));
        let res =
            alg.apply("resembles", &[a.clone(), a, Value::Float(0.9), Value::Float(0.9)]).unwrap();
        assert_eq!(res, Value::Bool(true));
    }

    #[test]
    fn decode_frames_checked() {
        let alg = KernelAlgebra::standard();
        let d = Value::Dna(dna("ATGGCC"));
        assert_eq!(
            alg.apply("decode", &[d.clone(), Value::Int(0)]).unwrap(),
            Value::ProteinSeq(ProteinSeq::from_text("MA").unwrap())
        );
        assert!(alg.apply("decode", &[d, Value::Int(7)]).is_err());
    }
}
