//! The universal carrier set of the algebra.

use crate::algebra::sort::SortId;
use crate::gdt::{Chromosome, Gene, Genome, Mrna, PrimaryTranscript, Protein};
use crate::seq::{DnaSeq, ProteinSeq, RnaSeq};
use crate::uncertainty::Uncertain;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A value of any registered sort, including user-defined ones.
///
/// This enum is the union of the carrier sets: base types, every genomic
/// data type, lists, uncertainty-wrapped values, and opaque custom values
/// for sorts registered at runtime.
#[derive(Debug, Clone)]
pub enum Value {
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Dna(DnaSeq),
    Rna(RnaSeq),
    ProteinSeq(ProteinSeq),
    Gene(Box<Gene>),
    Transcript(Box<PrimaryTranscript>),
    Mrna(Box<Mrna>),
    Protein(Box<Protein>),
    Chromosome(Box<Chromosome>),
    Genome(Box<Genome>),
    List(Vec<Value>),
    Uncertain(Box<Uncertain<Value>>),
    /// A value of a runtime-registered sort.
    Custom(SortId, Arc<dyn CustomValue>),
}

/// Object-safe trait for values of user-registered sorts.
pub trait CustomValue: fmt::Debug + Send + Sync {
    /// Downcasting support for operation implementations.
    fn as_any(&self) -> &dyn Any;
    /// Equality against another custom value.
    fn eq_dyn(&self, other: &dyn CustomValue) -> bool;
    /// Human-readable rendering.
    fn render(&self) -> String;
}

impl Value {
    /// The sort this value inhabits.
    pub fn sort(&self) -> SortId {
        match self {
            Value::Bool(_) => SortId::bool(),
            Value::Int(_) => SortId::int(),
            Value::Float(_) => SortId::float(),
            Value::Str(_) => SortId::string(),
            Value::Dna(_) => SortId::dna(),
            Value::Rna(_) => SortId::rna(),
            Value::ProteinSeq(_) => SortId::protein_seq(),
            Value::Gene(_) => SortId::gene(),
            Value::Transcript(_) => SortId::primary_transcript(),
            Value::Mrna(_) => SortId::mrna(),
            Value::Protein(_) => SortId::protein(),
            Value::Chromosome(_) => SortId::chromosome(),
            Value::Genome(_) => SortId::genome(),
            Value::List(_) => SortId::list(),
            Value::Uncertain(_) => SortId::uncertain(),
            Value::Custom(sort, _) => sort.clone(),
        }
    }

    /// Convenience accessors used by operation implementations.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_dna(&self) -> Option<&DnaSeq> {
        match self {
            Value::Dna(d) => Some(d),
            _ => None,
        }
    }

    pub fn as_rna(&self) -> Option<&RnaSeq> {
        match self {
            Value::Rna(r) => Some(r),
            _ => None,
        }
    }

    pub fn as_protein_seq(&self) -> Option<&ProteinSeq> {
        match self {
            Value::ProteinSeq(p) => Some(p),
            _ => None,
        }
    }

    pub fn as_gene(&self) -> Option<&Gene> {
        match self {
            Value::Gene(g) => Some(g),
            _ => None,
        }
    }

    pub fn as_transcript(&self) -> Option<&PrimaryTranscript> {
        match self {
            Value::Transcript(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_mrna(&self) -> Option<&Mrna> {
        match self {
            Value::Mrna(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_protein(&self) -> Option<&Protein> {
        match self {
            Value::Protein(p) => Some(p),
            _ => None,
        }
    }

    /// Downcast a custom value to a concrete type.
    pub fn as_custom<T: 'static>(&self) -> Option<&T> {
        match self {
            Value::Custom(_, v) => v.as_any().downcast_ref::<T>(),
            _ => None,
        }
    }

    /// Human-readable rendering used by result display and the BQL output
    /// language.
    pub fn render(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => s.clone(),
            Value::Dna(d) => d.to_text(),
            Value::Rna(r) => r.to_text(),
            Value::ProteinSeq(p) => p.to_text(),
            Value::Gene(g) => format!("gene:{}", g.id()),
            Value::Transcript(t) => format!("transcript:{}", t.gene_id()),
            Value::Mrna(m) => format!("mrna:{}", m.gene_id()),
            Value::Protein(p) => format!("protein:{}", p.id()),
            Value::Chromosome(c) => format!("chromosome:{}", c.name()),
            Value::Genome(g) => format!("genome:{}", g.organism()),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Uncertain(u) => {
                format!("{} ({})", u.value().render(), u.confidence())
            }
            Value::Custom(sort, v) => format!("{}:{}", sort, v.render()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Dna(a), Value::Dna(b)) => a == b,
            (Value::Rna(a), Value::Rna(b)) => a == b,
            (Value::ProteinSeq(a), Value::ProteinSeq(b)) => a == b,
            (Value::Gene(a), Value::Gene(b)) => a == b,
            (Value::Transcript(a), Value::Transcript(b)) => a == b,
            (Value::Mrna(a), Value::Mrna(b)) => a == b,
            (Value::Protein(a), Value::Protein(b)) => a == b,
            (Value::Chromosome(a), Value::Chromosome(b)) => a == b,
            (Value::Genome(a), Value::Genome(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Uncertain(a), Value::Uncertain(b)) => a == b,
            (Value::Custom(sa, va), Value::Custom(sb, vb)) => sa == sb && va.eq_dyn(vb.as_ref()),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_of_values() {
        assert_eq!(Value::Int(3).sort(), SortId::int());
        assert_eq!(Value::Dna(DnaSeq::empty()).sort(), SortId::dna());
        assert_eq!(Value::List(vec![]).sort(), SortId::list());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Bool(true).as_dna().is_none());
    }

    #[test]
    fn equality_and_render() {
        let a = Value::Dna(DnaSeq::from_text("ATG").unwrap());
        let b = Value::Dna(DnaSeq::from_text("ATG").unwrap());
        assert_eq!(a, b);
        assert_eq!(a.render(), "ATG");
        assert_ne!(a, Value::Str("ATG".into()));
        let list = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(list.render(), "[1, 2]");
    }

    #[derive(Debug, PartialEq)]
    struct Motif(String);

    impl CustomValue for Motif {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn eq_dyn(&self, other: &dyn CustomValue) -> bool {
            other.as_any().downcast_ref::<Motif>() == Some(self)
        }
        fn render(&self) -> String {
            self.0.clone()
        }
    }

    #[test]
    fn custom_values() {
        let sort = SortId::new("motif");
        let a = Value::Custom(sort.clone(), Arc::new(Motif("TATA".into())));
        let b = Value::Custom(sort.clone(), Arc::new(Motif("TATA".into())));
        let c = Value::Custom(sort.clone(), Arc::new(Motif("CAAT".into())));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.sort(), sort);
        assert_eq!(a.as_custom::<Motif>().unwrap().0, "TATA");
        assert_eq!(a.render(), "motif:TATA");
    }
}
