//! Sort identifiers.

use std::fmt;
use std::sync::Arc;

/// The name of a sort (type) in the many-sorted signature.
///
/// Cheap to clone (shared string) and compared by name. The built-in sorts
/// are exposed as constructors; user extensions make their own with
/// [`SortId::new`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SortId(Arc<str>);

impl SortId {
    /// A sort with the given name.
    pub fn new(name: &str) -> Self {
        SortId(Arc::from(name))
    }

    /// The sort's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    // Built-in base sorts.
    pub fn bool() -> Self {
        Self::new("bool")
    }
    pub fn int() -> Self {
        Self::new("int")
    }
    pub fn float() -> Self {
        Self::new("float")
    }
    pub fn string() -> Self {
        Self::new("string")
    }

    // Genomic sorts.
    pub fn dna() -> Self {
        Self::new("dna")
    }
    pub fn rna() -> Self {
        Self::new("rna")
    }
    pub fn protein_seq() -> Self {
        Self::new("protein_seq")
    }
    pub fn gene() -> Self {
        Self::new("gene")
    }
    pub fn primary_transcript() -> Self {
        Self::new("primary_transcript")
    }
    pub fn mrna() -> Self {
        Self::new("mrna")
    }
    pub fn protein() -> Self {
        Self::new("protein")
    }
    pub fn chromosome() -> Self {
        Self::new("chromosome")
    }
    pub fn genome() -> Self {
        Self::new("genome")
    }

    // Structural sorts.
    pub fn list() -> Self {
        Self::new("list")
    }
    pub fn uncertain() -> Self {
        Self::new("uncertain")
    }
}

impl fmt::Display for SortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_by_name() {
        assert_eq!(SortId::new("gene"), SortId::gene());
        assert_ne!(SortId::dna(), SortId::rna());
        assert_eq!(SortId::gene().to_string(), "gene");
    }

    #[test]
    fn usable_as_map_key() {
        let mut m = std::collections::HashMap::new();
        m.insert(SortId::dna(), 1);
        assert_eq!(m.get(&SortId::new("dna")), Some(&1));
    }
}
