//! Terms of the free algebra over a signature.

use crate::algebra::signature::Signature;
use crate::algebra::sort::SortId;
use crate::algebra::value::Value;
use crate::error::Result;
use std::fmt;

/// A term: a constant, a sorted variable, or an operator application.
///
/// The paper's example `getchar(concat("Genomics", "Algebra"), 10)` is
/// `Term::apply("getchar", [Term::apply("concat", [...]), Term::int(10)])`,
/// and its sort is the result sort of the outermost operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A literal value.
    Const(Value),
    /// A named variable of a known sort, bound at evaluation time.
    Var(String, SortId),
    /// An operator applied to argument terms.
    Apply(String, Vec<Term>),
}

impl Term {
    /// A constant term.
    pub fn constant(v: Value) -> Self {
        Term::Const(v)
    }

    /// Shorthand for an integer constant.
    pub fn int(i: i64) -> Self {
        Term::Const(Value::Int(i))
    }

    /// Shorthand for a string constant.
    pub fn str(s: &str) -> Self {
        Term::Const(Value::Str(s.to_string()))
    }

    /// Shorthand for a float constant.
    pub fn float(f: f64) -> Self {
        Term::Const(Value::Float(f))
    }

    /// A variable of the given sort.
    pub fn var(name: &str, sort: SortId) -> Self {
        Term::Var(name.to_string(), sort)
    }

    /// An operator application.
    pub fn apply(op: &str, args: Vec<Term>) -> Self {
        Term::Apply(op.to_string(), args)
    }

    /// Infer the sort of this term against a signature; also type-checks
    /// every application.
    pub fn sort(&self, signature: &Signature) -> Result<SortId> {
        match self {
            Term::Const(v) => Ok(v.sort()),
            Term::Var(_, sort) => Ok(sort.clone()),
            Term::Apply(op, args) => {
                let arg_sorts: Vec<SortId> =
                    args.iter().map(|t| t.sort(signature)).collect::<Result<_>>()?;
                Ok(signature.resolve(op, &arg_sorts)?.result.clone())
            }
        }
    }

    /// True if the term type-checks against the signature.
    pub fn well_formed(&self, signature: &Signature) -> bool {
        self.sort(signature).is_ok()
    }

    /// The free variables of the term, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<(&str, &SortId)> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<(&'a str, &'a SortId)>) {
        match self {
            Term::Const(_) => {}
            Term::Var(name, sort) => {
                if !out.iter().any(|(n, _)| *n == name) {
                    out.push((name, sort));
                }
            }
            Term::Apply(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Depth of the term tree (a constant has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Const(_) | Term::Var(_, _) => 1,
            Term::Apply(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => match v {
                Value::Str(s) => write!(f, "{s:?}"),
                other => write!(f, "{other}"),
            },
            Term::Var(name, sort) => write!(f, "{name}:{sort}"),
            Term::Apply(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::signature::OpSig;

    fn sig() -> Signature {
        let mut s = Signature::new();
        s.add_sort(SortId::string(), "text");
        s.add_sort(SortId::int(), "integer");
        s.add_op(OpSig {
            name: "concat".into(),
            args: vec![SortId::string(), SortId::string()],
            result: SortId::string(),
        })
        .unwrap();
        s.add_op(OpSig {
            name: "getchar".into(),
            args: vec![SortId::string(), SortId::int()],
            result: SortId::string(),
        })
        .unwrap();
        s
    }

    fn paper_term() -> Term {
        Term::apply(
            "getchar",
            vec![
                Term::apply("concat", vec![Term::str("Genomics"), Term::str("Algebra")]),
                Term::int(10),
            ],
        )
    }

    #[test]
    fn paper_example_type_checks() {
        let s = sig();
        let t = paper_term();
        assert_eq!(t.sort(&s).unwrap(), SortId::string());
        assert!(t.well_formed(&s));
        assert_eq!(t.depth(), 3);
        assert_eq!(t.to_string(), "getchar(concat(\"Genomics\", \"Algebra\"), 10)");
    }

    #[test]
    fn ill_sorted_terms_rejected() {
        let s = sig();
        let bad = Term::apply("getchar", vec![Term::int(1), Term::int(2)]);
        assert!(bad.sort(&s).is_err());
        assert!(!bad.well_formed(&s));
        let unknown = Term::apply("nonsense", vec![]);
        assert!(unknown.sort(&s).is_err());
    }

    #[test]
    fn variables_carry_their_sort() {
        let s = sig();
        let t = Term::apply("concat", vec![Term::var("x", SortId::string()), Term::str("suffix")]);
        assert_eq!(t.sort(&s).unwrap(), SortId::string());
        let vars = t.free_vars();
        assert_eq!(vars.len(), 1);
        assert_eq!(vars[0].0, "x");
    }

    #[test]
    fn free_vars_deduplicated_in_order() {
        let t = Term::apply(
            "concat",
            vec![
                Term::var("b", SortId::string()),
                Term::apply(
                    "concat",
                    vec![Term::var("a", SortId::string()), Term::var("b", SortId::string())],
                ),
            ],
        );
        let names: Vec<&str> = t.free_vars().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}
