//! Many-sorted signatures: sorts plus operator declarations.

use crate::algebra::sort::SortId;
use crate::error::{GenAlgError, Result};
use std::collections::HashMap;
use std::fmt;

/// An operator declaration: `name : arg₁ × … × argₙ → result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSig {
    pub name: String,
    pub args: Vec<SortId>,
    pub result: SortId,
}

impl fmt::Display for OpSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<&str> = self.args.iter().map(SortId::name).collect();
        write!(f, "{} : {} -> {}", self.name, args.join(" x "), self.result)
    }
}

/// The syntactic part of a many-sorted algebra: the registered sorts and
/// operator signatures, with overloading resolved by argument sorts.
#[derive(Debug, Clone, Default)]
pub struct Signature {
    sorts: HashMap<SortId, String>,
    ops: HashMap<String, Vec<OpSig>>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a sort with a human-readable description. Idempotent.
    pub fn add_sort(&mut self, sort: SortId, description: &str) {
        self.sorts.entry(sort).or_insert_with(|| description.to_string());
    }

    /// True if the sort is registered.
    pub fn has_sort(&self, sort: &SortId) -> bool {
        self.sorts.contains_key(sort)
    }

    /// Description of a registered sort.
    pub fn sort_description(&self, sort: &SortId) -> Option<&str> {
        self.sorts.get(sort).map(String::as_str)
    }

    /// All registered sorts, sorted by name.
    pub fn sorts(&self) -> Vec<&SortId> {
        let mut v: Vec<&SortId> = self.sorts.keys().collect();
        v.sort();
        v
    }

    /// Register an operator. Every sort it mentions must already be
    /// registered; duplicate signatures (same name and argument sorts) are
    /// rejected.
    pub fn add_op(&mut self, op: OpSig) -> Result<()> {
        for sort in op.args.iter().chain(std::iter::once(&op.result)) {
            if !self.has_sort(sort) {
                return Err(GenAlgError::UnknownSort(sort.name().to_string()));
            }
        }
        let overloads = self.ops.entry(op.name.clone()).or_default();
        if overloads.iter().any(|existing| existing.args == op.args) {
            return Err(GenAlgError::SortMismatch {
                operation: op.name.clone(),
                detail: "an overload with identical argument sorts already exists".into(),
            });
        }
        overloads.push(op);
        Ok(())
    }

    /// All overloads of an operator name.
    pub fn overloads(&self, name: &str) -> &[OpSig] {
        self.ops.get(name).map_or(&[], Vec::as_slice)
    }

    /// Resolve an application by name and argument sorts.
    pub fn resolve(&self, name: &str, arg_sorts: &[SortId]) -> Result<&OpSig> {
        let overloads =
            self.ops.get(name).ok_or_else(|| GenAlgError::UnknownOperation(name.to_string()))?;
        overloads.iter().find(|op| op.args.as_slice() == arg_sorts).ok_or_else(|| {
            GenAlgError::SortMismatch {
                operation: name.to_string(),
                detail: format!(
                    "no overload accepts ({})",
                    arg_sorts.iter().map(SortId::name).collect::<Vec<_>>().join(", ")
                ),
            }
        })
    }

    /// All operator names, sorted.
    pub fn op_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.ops.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    /// Total number of operator signatures (counting overloads).
    pub fn op_count(&self) -> usize {
        self.ops.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature {
        let mut s = Signature::new();
        s.add_sort(SortId::gene(), "a gene");
        s.add_sort(SortId::primary_transcript(), "a primary transcript");
        s.add_sort(SortId::string(), "text");
        s.add_sort(SortId::int(), "integer");
        s
    }

    #[test]
    fn add_and_resolve() {
        let mut s = sig();
        s.add_op(OpSig {
            name: "transcribe".into(),
            args: vec![SortId::gene()],
            result: SortId::primary_transcript(),
        })
        .unwrap();
        let op = s.resolve("transcribe", &[SortId::gene()]).unwrap();
        assert_eq!(op.result, SortId::primary_transcript());
        assert!(s.resolve("transcribe", &[SortId::string()]).is_err());
        assert!(s.resolve("nonsense", &[]).is_err());
    }

    #[test]
    fn overloading_by_argument_sorts() {
        let mut s = sig();
        s.add_op(OpSig {
            name: "length".into(),
            args: vec![SortId::string()],
            result: SortId::int(),
        })
        .unwrap();
        s.add_op(OpSig {
            name: "length".into(),
            args: vec![SortId::gene()],
            result: SortId::int(),
        })
        .unwrap();
        assert_eq!(s.overloads("length").len(), 2);
        assert!(s.resolve("length", &[SortId::gene()]).is_ok());
        // Duplicate overload rejected.
        assert!(s
            .add_op(OpSig {
                name: "length".into(),
                args: vec![SortId::gene()],
                result: SortId::int()
            })
            .is_err());
    }

    #[test]
    fn ops_require_registered_sorts() {
        let mut s = sig();
        let err = s.add_op(OpSig {
            name: "bad".into(),
            args: vec![SortId::new("nonexistent")],
            result: SortId::int(),
        });
        assert!(matches!(err, Err(GenAlgError::UnknownSort(_))));
    }

    #[test]
    fn sort_registration_idempotent() {
        let mut s = sig();
        s.add_sort(SortId::gene(), "different text");
        assert_eq!(s.sort_description(&SortId::gene()), Some("a gene"));
        assert!(s.sorts().len() >= 4);
    }

    #[test]
    fn display_of_signature_entries() {
        let op = OpSig {
            name: "concat".into(),
            args: vec![SortId::string(), SortId::string()],
            result: SortId::string(),
        };
        assert_eq!(op.to_string(), "concat : string x string -> string");
    }
}
